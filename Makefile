PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint sanitize

test:
	$(PYTHON) -m pytest -x -q

# Single lint entry point: the repo's own workload lint plus ruff/mypy
# when installed (they are optional; missing tools are reported and
# skipped so the target works in the bare test container).
lint:
	$(PYTHON) -m repro.sanitize --self

sanitize:
	$(PYTHON) -m repro.sanitize examples/quickstart.py
