PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint sanitize obs-demo bench bench-sim bench-check sweep-smoke serve-smoke faults crashcheck

test:
	$(PYTHON) -m pytest -x -q

# Single lint entry point: the repo's own workload lint plus ruff/mypy
# when installed (they are optional; missing tools are reported and
# skipped so the target works in the bare test container).
lint:
	$(PYTHON) -m repro.sanitize --self

sanitize:
	$(PYTHON) -m repro.sanitize examples/quickstart.py

# Runner benchmark: serial vs parallel (cold pool / warm pool), cold vs
# warm cache, on a 64-cell grid, plus a 2/4/8-worker scaling curve —
# with a byte-identity check between the serial and every pooled run.
# Writes BENCH_runner.json (uploaded as a CI artifact by the bench-smoke
# job) plus the SweepMonitor JSONL progress stream, and appends the run
# to the BENCH_history.jsonl trajectory (DESIGN.md §14).
bench:
	mkdir -p build
	$(PYTHON) -m repro.runner bench --workers 4 --cells 64 --workers-sweep 2,4,8 \
		--cache-dir build/runner-cache --out BENCH_runner.json \
		--monitor-jsonl build/sweep-monitor.jsonl
	$(PYTHON) -m repro.obs.regress append --bench runner BENCH_runner.json

# Simulator benchmark: events/sec for the reference (per-access event)
# vs. batched stream interpreter on every machine preset — warm/cold
# sequential plus the page-shuffled rand_write_cold / rand_read_cold /
# mixed_cold matrix (DESIGN.md §15) — with a bit-identity check between
# the two paths.  Writes BENCH_sim.json and appends the run to the
# BENCH_history.jsonl trajectory, where bench-check gates it.
bench-sim:
	$(PYTHON) -m repro.sim.bench --out BENCH_sim.json
	$(PYTHON) -m repro.obs.regress append --bench sim BENCH_sim.json

# Benchmark regression gate: run both harnesses at CI-smoke scale (the
# runner's reduced sweep; the simulator's two fastest presets), append
# the results to BENCH_history.jsonl, and compare the newest entries
# against their predecessors under the noise thresholds in
# repro.obs.regress — non-zero exit (and a trend report naming the
# regressed metric and both code fingerprints) on regression.
bench-check:
	mkdir -p build
	$(PYTHON) -m repro.runner bench --workers 4 --cells 64 --workers-sweep 2,4,8 \
		--cache-dir build/runner-cache --out BENCH_runner.json \
		--monitor-jsonl build/sweep-monitor.jsonl --no-sim
	$(PYTHON) -m repro.sim.bench --quick \
		--preset machine-A --preset machine-A-dram --out BENCH_sim.json
	$(PYTHON) -m repro.obs.regress append --bench runner BENCH_runner.json
	$(PYTHON) -m repro.obs.regress append --bench sim BENCH_sim.json
	$(PYTHON) -m repro.obs.regress check

# Sweep-scale smoke: run a 64-cell grid chunked at workers=2, stop it
# on purpose after 24 cells (exit 75 = resumable), then resume from the
# outcome journal and finish — the kill-and-resume path CI exercises.
# Artifacts: the journal plus the SweepMonitor JSONL progress stream.
sweep-smoke:
	mkdir -p build
	rm -f build/sweep-journal.jsonl build/sweep-smoke.jsonl
	$(PYTHON) -m repro.runner sweep --cells 64 --workers 2 --chunk-size 4 \
		--journal build/sweep-journal.jsonl --stop-after 24 \
		--monitor-jsonl build/sweep-smoke.jsonl; \
		status=$$?; \
		if [ $$status -ne 75 ]; then \
			echo "expected resumable exit 75, got $$status"; exit 1; fi
	$(PYTHON) -m repro.runner sweep --cells 64 --workers 2 --chunk-size 4 \
		--journal build/sweep-journal.jsonl \
		--monitor-jsonl build/sweep-smoke.jsonl

# Serving smoke: a small open-loop serving run with a crash at 60% of
# the arrival horizon, asserting the latency percentiles (p50/p99/p999),
# SLO, and durability fields are present and that the batched-stream
# RunResult JSON is byte-identical to the reference vocabulary's
# (CI's serve-smoke job).
serve-smoke:
	$(PYTHON) -m repro.traffic smoke --ops 800 --keys 512 --value-size 512

# Crash-consistency self-check: seeded crash/fault matrix on machine A
# and B-slow, asserting protocol durability, baseline vulnerability,
# determinism, and the empty-plan bit-identity (CI's faults job).
faults:
	$(PYTHON) -m repro.faults matrix

# Static crash-consistency verification self-check: protocol
# classification expectations plus the static<->dynamic differential
# matrix on machine A and B-slow, ADR and media-only, pre-store
# protocols off and on (CI's crashcheck job).
crashcheck:
	$(PYTHON) -m repro.crashcheck self

# Telemetry smoke: run one workload with obs attached, produce a
# Perfetto trace artifact under build/, validate it, then run the
# end-to-end pipeline self-check.  CI uploads build/obs/ as an artifact.
obs-demo:
	mkdir -p build/obs
	$(PYTHON) -m repro.obs run --workload listing1 --seed 7 \
		--trace build/obs/listing1.trace.json --json build/obs/listing1.result.json
	$(PYTHON) -c "import json; d = json.load(open('build/obs/listing1.trace.json')); \
		assert d['traceEvents'], 'empty trace'; \
		print('trace OK:', len(d['traceEvents']), 'events')"
	$(PYTHON) -m repro.obs --self-check
