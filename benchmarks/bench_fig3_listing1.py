"""Figure 3 - Listing 1 clean pre-store sweep on Machine A.

Regenerates the paper artifact's rows and verifies their shape; the
benchmark time is the cost of the full (fast-mode) sweep.
"""

from repro.experiments import get


def test_fig3(benchmark):
    experiment = get("fig3")
    result = benchmark.pedantic(
        lambda: experiment.run_checked(fast=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failures = [n for n in result.notes if n.startswith("SHAPE CHECK FAILED")]
    assert not failures, failures
