"""Ablation - device combiner capacity vs amplification.

Regenerates the ablation's rows and verifies their shape; the benchmark
time is the cost of the full (fast-mode) sweep.
"""

from repro.experiments import get


def test_abl_combiner(benchmark):
    experiment = get("abl-combiner")
    result = benchmark.pedantic(
        lambda: experiment.run_checked(fast=True), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failures = [n for n in result.notes if n.startswith("SHAPE CHECK FAILED")]
    assert not failures, failures
