"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure (fast mode) exactly once:
the interesting output is the printed rows and the shape checks, not
statistical timing stability, so rounds are pinned to 1 via
``benchmark.pedantic`` in the tests themselves.
"""
