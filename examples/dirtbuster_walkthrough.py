#!/usr/bin/env python3
"""DirtBuster end to end: analyse a key-value store, apply its advice.

Reproduces the paper's workflow on CLHT under YCSB-A (Section 7.2.3):

1. DirtBuster samples the run and finds the write-intensive functions;
2. it instruments them and measures sequentiality, fence proximity, and
   re-read/re-write distances;
3. it prints the paper-style report and recommends *skipping* the cache
   for the crafted values (with *clean* as the one-line fallback);
4. we apply both variants and measure what they buy.

Run:  python examples/dirtbuster_walkthrough.py
"""

from repro.core import PatchConfig, PrestoreMode
from repro.dirtbuster import DirtBuster, DirtBusterConfig
from repro.sim import machine_a
from repro.workloads.kv import CLHTWorkload, YCSBSpec


def make_workload() -> CLHTWorkload:
    return CLHTWorkload(
        spec=YCSBSpec(mix="A", num_keys=4096, operations=1000, value_size=1024),
        threads=4,
    )


def main() -> None:
    spec = machine_a()

    print("step 1-3: DirtBuster analysis")
    print("-" * 60)
    report = DirtBuster(DirtBusterConfig(sampling_period=101)).analyze(make_workload(), spec)
    print(report.render())
    print()
    print("Table 2 row:", report.classification.row())
    print()

    print("applying the advice")
    print("-" * 60)
    variants = {
        "baseline": PatchConfig.baseline(),
        "clean (one-line patch)": PatchConfig({"clht.craft_value": PrestoreMode.CLEAN}),
        "skip (rewrite craftValue)": PatchConfig({"clht.craft_value": PrestoreMode.SKIP}),
    }
    baseline_run = None
    for name, patches in variants.items():
        run = make_workload().run(spec, patches).run
        if baseline_run is None:
            baseline_run = run
        speedup = run.drained_speedup_over(baseline_run)
        print(
            f"{name:28s} throughput {run.throughput():7.3f} ops/kcycle   "
            f"WA {run.write_amplification:4.2f}x   speedup {speedup:4.2f}x"
        )


if __name__ == "__main__":
    main()
