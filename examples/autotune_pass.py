#!/usr/bin/env python3
"""An offline optimisation pass over a mixed batch of applications.

Section 6.1 describes DirtBuster's intended usage: run it before
releasing performance-critical applications.  :class:`AutoTuner` wraps
the whole loop — analyse, translate the advice into patch sites, measure
baseline vs. patched, keep only what verifies faster.

This drives it over a mixed batch: two genuine pre-store candidates, the
Listing 3 anti-pattern, and a read-mostly app — only the first two should
come out patched.

Run:  python examples/autotune_pass.py
"""

from repro.core.autotune import AutoTuner
from repro.dirtbuster import DirtBuster, DirtBusterConfig
from repro.sim import machine_a, machine_b_fast
from repro.workloads.microbench import Listing1, Listing3
from repro.workloads.nas import MGWorkload
from repro.workloads.phoronix import ReadMostlyWorkload
from repro.workloads.x9 import X9Workload

BATCH = [
    (
        "Machine A",
        machine_a(),
        lambda: Listing1(
            element_size=1024, num_elements=1024, iterations=1500, compute_per_iter=4096
        ),
    ),
    ("Machine A", machine_a(), lambda: MGWorkload(grid=32, iterations=2, threads=4)),
    ("Machine B", machine_b_fast(), lambda: X9Workload(messages=1500)),
    ("Machine A", machine_a(), lambda: Listing3(iterations=4000)),
    ("Machine A", machine_a(), lambda: ReadMostlyWorkload("pytorch", "stream", scale=300)),
]


def main() -> None:
    tuner = AutoTuner(DirtBuster(DirtBusterConfig(sampling_period=101)))
    print(f"{'machine':10s}  result")
    print("-" * 72)
    for machine_name, spec, factory in BATCH:
        result = tuner.tune(factory, spec)
        print(f"{machine_name:10s}  {result.summary()}")


if __name__ == "__main__":
    main()
