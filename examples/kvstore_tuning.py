#!/usr/bin/env python3
"""Figure-10-style sweep: CLHT throughput vs value size and pre-store mode.

Shows where pre-stores start paying on PMEM: nothing at 64B values (the
CPU line size), growing gains past the device's 256B internal line, with
skip > clean > baseline throughout (Section 7.2.3).

Run:  python examples/kvstore_tuning.py
"""

from repro.analysis.tables import format_table
from repro.core import PatchConfig, PrestoreMode
from repro.sim import machine_a
from repro.workloads.kv import CLHTWorkload, YCSBSpec

VALUE_SIZES = (64, 256, 1024, 4096)
MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.SKIP)


def run_one(value_size: int, mode: PrestoreMode):
    workload = CLHTWorkload(
        spec=YCSBSpec(mix="A", num_keys=8192, operations=1000, value_size=value_size),
        threads=4,
    )
    patches = PatchConfig({workload.SITE.name: mode})
    return workload.run(machine_a(), patches).run


def main() -> None:
    rows = []
    for value_size in VALUE_SIZES:
        runs = {mode: run_one(value_size, mode) for mode in MODES}
        base = runs[PrestoreMode.NONE]
        rows.append(
            [
                value_size,
                f"{base.throughput():.3f}",
                f"{runs[PrestoreMode.CLEAN].drained_speedup_over(base):.2f}x",
                f"{runs[PrestoreMode.SKIP].drained_speedup_over(base):.2f}x",
                f"{base.write_amplification:.2f}",
                f"{runs[PrestoreMode.CLEAN].write_amplification:.2f}",
            ]
        )
        print(f"value size {value_size}B done")
    print()
    print(
        format_table(
            ["value_size", "base ops/kcyc", "clean", "skip", "WA base", "WA clean"],
            rows,
        )
    )
    print()
    print("Expected shape (paper Figures 10 and 12): gains appear past 64B,")
    print("grow with value size, skip > clean > baseline, and cleaning")
    print("eliminates the ~3.8x write amplification.")


if __name__ == "__main__":
    main()
