#!/usr/bin/env python3
"""X9 message passing on Machine B: demote the message before the CAS.

Reproduces Section 7.3.2: a producer fills reusable message slots and
publishes them with a compare-and-swap; a consumer polls and replies.
Without a pre-store the message is made globally visible "at the last
minute" inside the CAS; a demote pre-store sends it to the shared L2 in
the background, cutting the message latency.

Run:  python examples/message_passing_latency.py
"""

from repro.core import PatchConfig, PrestoreMode
from repro.sim import machine_b_fast, machine_b_slow
from repro.workloads.x9 import X9Workload

MESSAGES = 2000


def main() -> None:
    for name, spec in (("Machine B-fast", machine_b_fast()), ("Machine B-slow", machine_b_slow())):
        runs = {}
        for mode in (PrestoreMode.NONE, PrestoreMode.DEMOTE):
            workload = X9Workload(messages=MESSAGES)
            patches = PatchConfig({workload.SITE.name: mode})
            runs[mode] = workload.run(spec, patches).run
        base = runs[PrestoreMode.NONE]
        demote = runs[PrestoreMode.DEMOTE]
        reduction = 100.0 * (1.0 - demote.cycles / base.cycles)
        print(f"{name}:")
        print(f"  baseline: {base.cycles / MESSAGES:8.0f} cycles/message")
        print(f"  demote:   {demote.cycles / MESSAGES:8.0f} cycles/message")
        print(f"  latency reduction: {reduction:.0f}%")
        print(
            f"  CAS stall cycles: {base.total_fence_stall_cycles:,.0f} -> "
            f"{demote.total_fence_stall_cycles:,.0f}"
        )
        print()


if __name__ == "__main__":
    main()
