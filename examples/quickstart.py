#!/usr/bin/env python3
"""Quickstart: see write amplification appear and a clean pre-store kill it.

Builds the paper's Machine A (Xeon-like CPU in front of Optane persistent
memory), runs a small random-element writer with and without a *clean*
pre-store, and prints the ipmctl-style media counters the paper's
methodology uses.

Run:  python examples/quickstart.py
"""

from repro.analysis.ipmctl import read_media_counters
from repro.core import PrestoreOp
from repro.sim import machine_a
from repro.workloads.memapi import Program


def make_body(clean: bool, element_size: int = 1024, iterations: int = 1500):
    """Listing 1 in miniature: write random elements, optionally clean them."""

    def body(t):
        elements = t.alloc(512 * element_size, label="elements")
        with t.function("quickstart_loop", file="quickstart.py", line=27):
            for _ in range(iterations):
                idx = t.rng.randrange(512)
                addr = elements.addr(idx * element_size)
                # Write one element (sequential stores within the element)...
                yield from t.write_block(addr, element_size)
                if clean:
                    # ...and ask the CPU to write it back, in order, right now.
                    yield t.prestore(addr, element_size, PrestoreOp.CLEAN)
                yield t.read(addr, 8)  # the re-read that keeps caching useful
                yield t.compute(2000)

    return body


def build_program(spec=None, clean: bool = True) -> Program:
    """An un-run Program — the hook ``python -m repro.sanitize`` looks for."""
    program = Program(spec if spec is not None else machine_a())
    program.spawn(make_body(clean))
    return program


def main() -> None:
    results = {}
    for clean in (False, True):
        program = Program(machine_a())
        program.spawn(make_body(clean))
        results[clean] = program.run()

    base, opt = results[False], results[True]
    print("=== baseline (no pre-store) ===")
    print(read_media_counters(base).render())
    print()
    print("=== with clean pre-store ===")
    print(read_media_counters(opt).render())
    print()
    speedup = base.cycles_with_drain / opt.cycles_with_drain
    print(f"speedup from one prestore() call: {speedup:.2f}x")
    print(
        f"write amplification: {base.write_amplification:.2f}x -> "
        f"{opt.write_amplification:.2f}x"
    )


if __name__ == "__main__":
    main()
