"""Section 7.4: the overhead of pre-stores where they do not help.

Two experiments:

* ``sec741`` — DirtBuster-suggested pre-stores on an architecture that
  does not benefit (NAS / TensorFlow on Machine B): the overhead should
  be negligible ("the maximum overhead was limited to 0.3%").
* ``sec742`` — incorrect *manual* pre-stores DirtBuster declined:
  cleaning FT's hot ``fftz2`` scratch (~3x slowdown in the paper) and
  cleaning IS's randomly-written ``rank`` buckets (no effect).
"""

from __future__ import annotations

import functools

from typing import List

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.experiments.common import run_variants, safe_ratio
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_a, machine_b_fast
from repro.workloads.nas import FTWorkload, ISWorkload, MGWorkload, SPWorkload
from repro.workloads.tensorflow_sim import TensorFlowWorkload

__all__ = ["Sec741SuggestedOverhead", "Sec742ManualMisuse"]


@register
class Sec741SuggestedOverhead(Experiment):
    id = "sec741"
    title = "DirtBuster-suggested pre-stores on Machine B: overhead only"
    paper_claim = (
        "NAS and TensorFlow gain nothing on Machine B (no granularity "
        "mismatch, no fences), but following DirtBuster's recommendations "
        "there costs at most ~0.3%: correctly placed pre-stores are "
        "essentially free."
    )

    CASES = (
        ("nas-mg", functools.partial(MGWorkload, grid=24, iterations=2, threads=4)),
        ("nas-sp", functools.partial(SPWorkload, grid=20, iterations=2, threads=4)),
        (
            "tensorflow",
            functools.partial(
                TensorFlowWorkload, batch_size=16, iterations=1, threads=4, large_tensor_kb=64
            ),
        ),
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for name, factory in self.CASES:
            results = run_variants(
                factory,
                machine_b_fast(),
                (PrestoreMode.NONE, PrestoreMode.CLEAN),
                seed=seed,
                endorsed_only=True,
            )
            base = results[PrestoreMode.NONE]
            clean = results[PrestoreMode.CLEAN]
            overhead = safe_ratio(clean.cycles_with_drain, base.cycles_with_drain) - 1.0
            rows.append(
                SeriesRow({"workload": name}, {"overhead_pct": 100.0 * overhead})
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        for row in result.rows:
            overhead = row.metric("overhead_pct")
            if overhead > 5.0:
                failures.append(
                    f"{row.config['workload']}: suggested pre-stores should be "
                    f"nearly free on Machine B, got +{overhead:.1f}%"
                )
        return failures


@register
class Sec742ManualMisuse(Experiment):
    id = "sec742"
    title = "Incorrect manual pre-stores DirtBuster declined (Machine A)"
    paper_claim = (
        "Cleaning FT's fftz2 scratch (small, constantly re-read/re-written) "
        "costs ~3x; cleaning IS's randomly-written rank buckets has no "
        "effect; DirtBuster recommends neither."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        # FT: clean the hot fftz2 scratch only (the manual mistake).
        ft_base = (
            FTWorkload(grid=24, iterations=1, threads=4)
            .run(machine_a(), PatchConfig.baseline(), seed=seed)
            .run
        )
        ft_bad = (
            FTWorkload(grid=24, iterations=1, threads=4)
            .run(
                machine_a(),
                PatchConfig({"ft.fftz2": PrestoreMode.CLEAN}),
                seed=seed,
            )
            .run
        )
        rows.append(
            SeriesRow(
                {"workload": "nas-ft", "patched_site": "ft.fftz2"},
                {"slowdown": safe_ratio(ft_bad.cycles_with_drain, ft_base.cycles_with_drain)},
            )
        )
        # IS: clean the randomly-written buckets.  One ranking pass, as in
        # the measured NPB iteration: each bucket line is written about
        # once, so the data is "neither re-read nor re-written" and the
        # pre-store can neither help nor hurt.
        is_base = (
            ISWorkload(grid=24, iterations=1, threads=4)
            .run(machine_a(), PatchConfig.baseline(), seed=seed)
            .run
        )
        is_bad = (
            ISWorkload(grid=24, iterations=1, threads=4)
            .run(machine_a(), PatchConfig({"is.rank": PrestoreMode.CLEAN}), seed=seed)
            .run
        )
        rows.append(
            SeriesRow(
                {"workload": "nas-is", "patched_site": "is.rank"},
                {"slowdown": safe_ratio(is_bad.cycles_with_drain, is_base.cycles_with_drain)},
            )
        )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        ft = result.rows_where(workload="nas-ft")
        if not ft or ft[0].metric("slowdown") < 1.5:
            got = ft[0].metric("slowdown") if ft else 0.0
            failures.append(f"cleaning fftz2 should cost >=1.5x (paper ~3x), got {got:.2f}x")
        is_rows = result.rows_where(workload="nas-is")
        if is_rows and not 0.8 <= is_rows[0].metric("slowdown") <= 1.3:
            failures.append(
                f"cleaning IS rank should have little effect, got "
                f"{is_rows[0].metric('slowdown'):.2f}x"
            )
        return failures
