"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Union

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.sim.machine import MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload

__all__ = [
    "run_variants",
    "patch_all_sites",
    "endorsed_patches",
    "safe_ratio",
    "MANUAL_MISUSE_SITES",
]


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, NaN when the denominator is zero.

    The §10 convention for measured denominators: NaN propagates through
    derived metrics and renders as a visible hole, where a fake 0.0 (or
    a ZeroDivisionError out of a whole experiment batch) would either
    lie or lose the other rows.
    """
    if denominator == 0:
        return float("nan")
    return numerator / denominator

#: Sites DirtBuster declines (Sections 5 and 7.4.2): patched only by the
#: "incorrect manual use" experiments.
MANUAL_MISUSE_SITES = ("ft.fftz2", "is.rank", "listing3.hot_line")


def patch_all_sites(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Apply ``mode`` at every declared patch site of ``workload``."""
    config = PatchConfig()
    for site in workload.patch_sites():
        config.set_mode(site.name, mode)
    return config


def endorsed_patches(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Apply ``mode`` at DirtBuster-endorsed sites only.

    The manual-misuse sites (the hot fftz2 scratch, IS's random buckets,
    Listing 3's hot line) stay unpatched, as DirtBuster recommends.
    """
    config = PatchConfig()
    for site in workload.patch_sites():
        if site.name not in MANUAL_MISUSE_SITES:
            config.set_mode(site.name, mode)
    return config


def run_variants(
    make_workload,
    spec: MachineSpec,
    modes: Iterable[PrestoreMode],
    seed: int = 1234,
    endorsed_only: bool = True,
    obs: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    chunk_size: Optional[int] = None,
) -> Dict[PrestoreMode, RunResult]:
    """Run one workload configuration under several pre-store modes.

    ``make_workload`` is a zero-argument factory (a fresh instance per
    run keeps the runs independent).

    Execution goes through :mod:`repro.runner`: each mode becomes one
    :class:`~repro.runner.Cell`, sharded across ``workers`` processes
    (``workers``/``cache_dir`` default to the ambient
    :func:`~repro.runner.runner_session`, serial and uncached when none
    is active).  Results are bit-identical whatever the worker count,
    and cache hits skip simulation entirely.  Progress and the
    :mod:`repro.obs` structured log get one worker-tagged line per
    completed variant.  ``obs=True`` additionally attaches a fresh
    :class:`~repro.obs.ObsCollector` per run, leaving each variant's
    sampled timeline on its ``RunResult.timeline``.
    """
    from repro.runner import Cell, execute_cells

    modes = list(modes)
    cells = [
        Cell(
            make_workload=make_workload,
            spec=spec,
            mode=mode,
            seed=seed,
            endorsed_only=endorsed_only,
            obs=obs,
        )
        for mode in modes
    ]
    # Experiments need every variant's numbers: a failed cell raises
    # CellExecutionError (with all other outcomes attached) rather than
    # silently feeding a None result into the figures.
    outcomes = execute_cells(
        cells,
        workers=workers,
        cache=cache_dir,
        chunk_size=chunk_size,
        progress=progress,
        on_error="raise",
    )
    return {mode: outcome.result for mode, outcome in zip(modes, outcomes)}
