"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.sim.machine import MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload

__all__ = [
    "run_variants",
    "patch_all_sites",
    "endorsed_patches",
    "MANUAL_MISUSE_SITES",
]

#: Sites DirtBuster declines (Sections 5 and 7.4.2): patched only by the
#: "incorrect manual use" experiments.
MANUAL_MISUSE_SITES = ("ft.fftz2", "is.rank", "listing3.hot_line")


def patch_all_sites(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Apply ``mode`` at every declared patch site of ``workload``."""
    config = PatchConfig()
    for site in workload.patch_sites():
        config.set_mode(site.name, mode)
    return config


def endorsed_patches(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Apply ``mode`` at DirtBuster-endorsed sites only.

    The manual-misuse sites (the hot fftz2 scratch, IS's random buckets,
    Listing 3's hot line) stay unpatched, as DirtBuster recommends.
    """
    config = PatchConfig()
    for site in workload.patch_sites():
        if site.name not in MANUAL_MISUSE_SITES:
            config.set_mode(site.name, mode)
    return config


def run_variants(
    make_workload,
    spec: MachineSpec,
    modes: Iterable[PrestoreMode],
    seed: int = 1234,
    endorsed_only: bool = True,
) -> Dict[PrestoreMode, RunResult]:
    """Run one workload configuration under several pre-store modes.

    ``make_workload`` is a zero-argument factory (a fresh instance per
    run keeps the runs independent).
    """
    results: Dict[PrestoreMode, RunResult] = {}
    for mode in modes:
        workload = make_workload()
        patch = endorsed_patches if endorsed_only else patch_all_sites
        config = PatchConfig.baseline() if mode is PrestoreMode.NONE else patch(workload, mode)
        results[mode] = workload.run(spec, config, seed=seed).run
    return results
