"""Shared plumbing for the experiment modules."""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Optional

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.obs.log import get_logger, run_context
from repro.sim.machine import MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload

__all__ = [
    "run_variants",
    "patch_all_sites",
    "endorsed_patches",
    "MANUAL_MISUSE_SITES",
]

_log = get_logger("experiments")

#: Sites DirtBuster declines (Sections 5 and 7.4.2): patched only by the
#: "incorrect manual use" experiments.
MANUAL_MISUSE_SITES = ("ft.fftz2", "is.rank", "listing3.hot_line")


def patch_all_sites(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Apply ``mode`` at every declared patch site of ``workload``."""
    config = PatchConfig()
    for site in workload.patch_sites():
        config.set_mode(site.name, mode)
    return config


def endorsed_patches(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Apply ``mode`` at DirtBuster-endorsed sites only.

    The manual-misuse sites (the hot fftz2 scratch, IS's random buckets,
    Listing 3's hot line) stay unpatched, as DirtBuster recommends.
    """
    config = PatchConfig()
    for site in workload.patch_sites():
        if site.name not in MANUAL_MISUSE_SITES:
            config.set_mode(site.name, mode)
    return config


def run_variants(
    make_workload,
    spec: MachineSpec,
    modes: Iterable[PrestoreMode],
    seed: int = 1234,
    endorsed_only: bool = True,
    obs: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[PrestoreMode, RunResult]:
    """Run one workload configuration under several pre-store modes.

    ``make_workload`` is a zero-argument factory (a fresh instance per
    run keeps the runs independent).

    Each variant run is timed and reported through the :mod:`repro.obs`
    structured log (and ``progress``, when given — a callable receiving
    one human-readable line per completed variant, which is how the
    experiment CLI shows sweep progress).  ``obs=True`` additionally
    attaches a fresh :class:`~repro.obs.ObsCollector` per run, leaving
    each variant's sampled timeline on its ``RunResult.timeline``.
    """
    results: Dict[PrestoreMode, RunResult] = {}
    modes = list(modes)
    for i, mode in enumerate(modes):
        workload = make_workload()
        patch = endorsed_patches if endorsed_only else patch_all_sites
        config = PatchConfig.baseline() if mode is PrestoreMode.NONE else patch(workload, mode)
        run_id = f"{workload.name}/{mode.value}/s{seed}"
        started = time.perf_counter()
        with run_context(run_id=run_id):
            result = workload.run(spec, config, seed=seed, obs=obs).run
        elapsed = time.perf_counter() - started
        results[mode] = result
        message = (
            f"[{i + 1}/{len(modes)}] {workload.name} {mode.value} on {spec.name}: "
            f"{result.cycles:,.0f} cycles, WA={result.write_amplification:.2f}x "
            f"({elapsed:.2f}s wall)"
        )
        _log.info("%s", message)
        if progress is not None:
            progress(message)
    return results
