"""Experiment framework: one registered experiment per paper table/figure.

Every experiment produces an :class:`ExperimentResult` — a list of
measured rows plus the paper's claim about their shape — and implements
:meth:`Experiment.check`, which verifies the *shape* (who wins, by
roughly what factor, where crossovers fall) rather than absolute cycle
counts (DESIGN.md §3 explains why absolute numbers are simulator
constants).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError

__all__ = ["SeriesRow", "ExperimentResult", "Experiment", "register", "get", "all_ids", "run_all"]


@dataclass
class SeriesRow:
    """One measured point: a figure's data point or a table's row."""

    #: The configuration that produced it, e.g. {"threads": 2, "size": 1024}.
    config: Dict[str, object]
    #: The measured values, e.g. {"speedup": 2.2, "wa_baseline": 3.3}.
    metrics: Dict[str, float]

    def metric(self, name: str) -> float:
        try:
            return float(self.metrics[name])
        except KeyError:
            raise ExperimentError(f"row {self.config} has no metric {name!r}") from None


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    #: The paper's claim this experiment reproduces, quoted or summarised.
    paper_claim: str
    rows: List[SeriesRow]
    #: Deviations or caveats discovered while reproducing.
    notes: List[str] = field(default_factory=list)

    def rows_where(self, **config) -> List[SeriesRow]:
        """Rows whose config matches all given key/values."""
        out = []
        for row in self.rows:
            if all(row.config.get(k) == v for k, v in config.items()):
                out.append(row)
        return out

    def table(self) -> str:
        """Render rows as an aligned text table."""
        if not self.rows:
            return f"{self.experiment_id}: (no rows)"
        config_keys = sorted({k for r in self.rows for k in r.config})
        metric_keys = sorted({k for r in self.rows for k in r.metrics})
        header = config_keys + metric_keys
        lines = ["  ".join(f"{h:>14s}" for h in header)]
        for row in self.rows:
            cells = [str(row.config.get(k, "")) for k in config_keys]
            for k in metric_keys:
                v = row.metrics.get(k)
                cells.append("" if v is None else f"{v:.3f}" if isinstance(v, float) else str(v))
            lines.append("  ".join(f"{c:>14s}" for c in cells))
        return "\n".join(lines)

    def render(self) -> str:
        head = [f"== {self.experiment_id}: {self.title} ==", f"paper claim: {self.paper_claim}"]
        body = [self.table()]
        tail = [f"note: {n}" for n in self.notes]
        return "\n".join(head + body + tail)


class Experiment(ABC):
    """One paper table or figure."""

    #: Stable id, e.g. ``"fig3"``; used by benches and the CLI.
    id: str = "abstract"
    title: str = ""
    paper_claim: str = ""

    @abstractmethod
    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        """Execute the experiment; ``fast`` uses scaled-down sweeps."""

    def check(self, result: ExperimentResult) -> List[str]:
        """Verify the reproduced shape; returns human-readable failures.

        An empty list means the paper's qualitative claims held.
        """
        return []

    def run_checked(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        """Run and append check failures to the result notes."""
        result = self.run(fast=fast, seed=seed)
        for failure in self.check(result):
            result.notes.append(f"SHAPE CHECK FAILED: {failure}")
        return result

    def _result(self, rows: List[SeriesRow], notes: Optional[List[str]] = None) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            rows=rows,
            notes=notes or [],
        )


_REGISTRY: Dict[str, Callable[[], Experiment]] = {}


def register(cls: type) -> type:
    """Class decorator registering an Experiment by its id."""
    if not issubclass(cls, Experiment):
        raise ExperimentError(f"{cls!r} is not an Experiment")
    if cls.id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def get(experiment_id: str) -> Experiment:
    """Instantiate a registered experiment."""
    try:
        return _REGISTRY[experiment_id]()
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_ids() -> List[str]:
    return sorted(_REGISTRY)


def run_all(
    fast: bool = True,
    seed: int = 1234,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run every registered experiment (the EXPERIMENTS.md generator).

    ``workers``/``cache_dir`` install a :func:`repro.runner.runner_session`
    around the whole batch, so every ``run_variants`` sweep underneath
    shards its cells across the same process pool and shares one result
    cache.
    """
    from repro.runner import runner_session

    with runner_session(workers=workers or 1, cache_dir=cache_dir):
        return {eid: get(eid).run_checked(fast=fast, seed=seed) for eid in all_ids()}
