"""Figure 5: Listing 2's demote pre-store before a fence on Machine B."""

from __future__ import annotations

import functools

from typing import List

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants, safe_ratio
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_b_fast, machine_b_slow
from repro.workloads.microbench import Listing2

__all__ = ["Fig5Listing2"]


@register
class Fig5Listing2(Experiment):
    id = "fig5"
    title = "Listing 2: demote before a fence vs interposed reads (Machine B)"
    paper_claim = (
        "Demotion gives no gain with zero reads before the fence, peaks in "
        "between (up to ~65% in the paper), and decays once reads dominate; "
        "the higher the FPGA latency, the larger the useful window (the "
        "peak sits at more reads on B-slow than on B-fast)."
    )

    READ_COUNTS_FAST_MODE = (0, 5, 20, 40, 80, 160)
    READ_COUNTS_FULL = (0, 2, 5, 10, 20, 40, 80, 160, 320)

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        counts = self.READ_COUNTS_FAST_MODE if fast else self.READ_COUNTS_FULL
        iterations = 1500 if fast else 3000
        rows: List[SeriesRow] = []
        for machine_name, spec in (("B-fast", machine_b_fast()), ("B-slow", machine_b_slow())):
            for nreads in counts:
                results = run_variants(
                    functools.partial(Listing2, reads_before_fence=nreads, iterations=iterations),
                    spec,
                    (PrestoreMode.NONE, PrestoreMode.DEMOTE),
                    seed=seed,
                )
                base = results[PrestoreMode.NONE]
                demote = results[PrestoreMode.DEMOTE]
                improvement = safe_ratio(base.cycles - demote.cycles, base.cycles)
                rows.append(
                    SeriesRow(
                        {"machine": machine_name, "reads_before_fence": nreads},
                        {"improvement_pct": 100.0 * improvement},
                    )
                )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        for machine in ("B-fast", "B-slow"):
            series = result.rows_where(machine=machine)
            series.sort(key=lambda r: r.config["reads_before_fence"])
            values = [r.metric("improvement_pct") for r in series]
            if abs(values[0]) > 8.0:
                failures.append(f"{machine}: ~0% improvement expected at 0 reads, got {values[0]:.0f}%")
            peak = max(values)
            if peak < 25.0:
                failures.append(f"{machine}: peak improvement should be substantial, got {peak:.0f}%")
            if values[-1] >= peak - 5.0:
                failures.append(f"{machine}: improvement should decay after the peak")
        fast_rows = result.rows_where(machine="B-fast")
        slow_rows = result.rows_where(machine="B-slow")
        if fast_rows and slow_rows:
            peak_at = lambda rows: max(rows, key=lambda r: r.metric("improvement_pct")).config[
                "reads_before_fence"
            ]
            if peak_at(slow_rows) < peak_at(fast_rows):
                failures.append("B-slow's peak should sit at more reads than B-fast's")
        return failures
