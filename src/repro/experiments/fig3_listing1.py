"""Figure 3: Listing 1's clean pre-store on Machine A.

(a) runtime improvement vs element size and thread count; (b) write
amplification with and without cleaning.
"""

from __future__ import annotations

import functools

from typing import List

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing1

__all__ = ["Fig3Listing1"]

#: CPU work per iteration (rand(), the copy loop, the summation),
#: calibrated so one thread does not saturate the PMEM device — the
#: paper's single-thread regime, where write amplification exists but
#: does not yet cost performance (Section 4.1).
COMPUTE_PER_BYTE = 8


@register
class Fig3Listing1(Experiment):
    id = "fig3"
    title = "Listing 1: clean pre-store vs element size and threads (Machine A)"
    paper_claim = (
        "Cleaning eliminates write amplification entirely; performance "
        "improves by ~2.2x at two threads and up to 3x at five threads for "
        "large elements, with no effect at 64B elements or a single "
        "unsaturated thread."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        sizes = (64, 1024, 4096) if fast else (64, 256, 512, 1024, 2048, 4096)
        threads = (1, 2, 5)
        # A smaller LLC keeps the steady state reachable for small
        # elements too: iterations are scaled so every configuration
        # dirties several LLCs' worth of data (otherwise the baseline
        # parks everything in the cache and the comparison degenerates).
        llc_kb = 128
        llc_bytes = llc_kb * 1024
        rows: List[SeriesRow] = []
        for size in sizes:
            iterations = max(1500 if fast else 3000, 3 * llc_bytes // size)
            for nthreads in threads:
                results = run_variants(
                    functools.partial(
                        Listing1,
                        element_size=size,
                        num_elements=max(64, 4 * llc_bytes // size),
                        iterations=iterations,
                        threads=nthreads,
                        compute_per_iter=COMPUTE_PER_BYTE * size,
                    ),
                    machine_a(llc_kb=llc_kb),
                    (PrestoreMode.NONE, PrestoreMode.CLEAN),
                    seed=seed,
                )
                base = results[PrestoreMode.NONE]
                clean = results[PrestoreMode.CLEAN]
                rows.append(
                    SeriesRow(
                        {"element_size": size, "threads": nthreads},
                        {
                            "speedup_clean": clean.drained_speedup_over(base),
                            "wa_baseline": base.write_amplification,
                            "wa_clean": clean.write_amplification,
                        },
                    )
                )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        # 64B elements: cleaning cannot help (already at the write unit).
        for row in result.rows_where(element_size=64):
            if not 0.8 <= row.metric("speedup_clean") <= 1.4:
                failures.append(f"64B elements should be ~1x, got {row.metrics}")
        # Large elements, many threads: the paper's 2-3x regime.
        for size in (1024, 4096):
            five = result.rows_where(element_size=size, threads=5)
            if five and five[0].metric("speedup_clean") < 1.8:
                failures.append(f"{size}B @5 threads should exceed 1.8x")
            one = result.rows_where(element_size=size, threads=1)
            five_val = five[0].metric("speedup_clean") if five else 0.0
            if one and one[0].metric("speedup_clean") > five_val:
                failures.append(f"{size}B: gains should grow with threads")
        # Cleaning eliminates write amplification for large elements.
        for row in result.rows_where(element_size=4096):
            if row.metric("wa_clean") > 1.2:
                failures.append(f"cleaning should eliminate WA, got {row.metrics}")
            if row.metric("wa_baseline") < 2.0:
                failures.append(f"baseline should amplify writes, got {row.metrics}")
        return failures
