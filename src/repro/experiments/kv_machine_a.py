"""Figures 10-12: CLHT and Masstree under YCSB-A on Machine A.

One sweep per store over value sizes feeds three figures: Figure 10
(CLHT throughput), Figure 11 (Masstree throughput) and Figure 12 (CLHT
write amplification).
"""

from __future__ import annotations

import functools

from typing import Dict, List, Tuple

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_a
from repro.sim.stats import RunResult
from repro.workloads.kv import CLHTWorkload, MasstreeWorkload, YCSBSpec

__all__ = ["Fig10CLHT", "Fig11Masstree", "Fig12CLHTWA", "kv_sweep"]

_VALUE_SIZES_FAST_MODE = (256, 1024, 4096)
_VALUE_SIZES_FULL = (64, 128, 256, 1024, 4096)
_MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.SKIP)
_SWEEP_CACHE: Dict[Tuple[str, bool, int], Dict[int, Dict[PrestoreMode, RunResult]]] = {}


def kv_sweep(store: str, fast: bool, seed: int) -> Dict[int, Dict[PrestoreMode, RunResult]]:
    """YCSB-A value-size sweep for one store on Machine A (memoised)."""
    key = (store, fast, seed)
    cached = _SWEEP_CACHE.get(key)
    if cached is not None:
        return cached
    cls = CLHTWorkload if store == "clht" else MasstreeWorkload
    sizes = _VALUE_SIZES_FAST_MODE if fast else _VALUE_SIZES_FULL
    operations = 1200 if fast else 2400
    sweep: Dict[int, Dict[PrestoreMode, RunResult]] = {}
    for value_size in sizes:
        sweep[value_size] = run_variants(
            functools.partial(
                cls,
                spec=YCSBSpec(mix="A", num_keys=8192, operations=operations, value_size=value_size),
                threads=4,
            ),
            machine_a(),
            _MODES,
            seed=seed,
        )
    _SWEEP_CACHE[key] = sweep
    return sweep


class _KVThroughput(Experiment):
    """Shared shape for Figures 10 and 11."""

    store = "clht"

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for value_size, results in kv_sweep(self.store, fast, seed).items():
            base = results[PrestoreMode.NONE]
            rows.append(
                SeriesRow(
                    {"value_size": value_size},
                    {
                        "throughput_baseline": base.throughput(),
                        "throughput_clean": results[PrestoreMode.CLEAN].throughput(),
                        "throughput_skip": results[PrestoreMode.SKIP].throughput(),
                        "speedup_clean": results[PrestoreMode.CLEAN].drained_speedup_over(base),
                        "speedup_skip": results[PrestoreMode.SKIP].drained_speedup_over(base),
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        rows = sorted(result.rows, key=lambda r: r.config["value_size"])
        for row in rows:
            size = row.config["value_size"]
            clean, skip = row.metric("speedup_clean"), row.metric("speedup_skip")
            if size >= 1024:
                if clean < 1.3:
                    failures.append(f"{size}B: cleaning should give a large gain, got {clean:.2f}x")
                if skip < clean:
                    failures.append(f"{size}B: skipping should beat cleaning, got {skip:.2f} vs {clean:.2f}")
        big = rows[-1]
        if big.metric("speedup_skip") < 1.8:
            failures.append("largest values should approach the paper's ~2.5-2.9x skip gain")
        return failures


@register
class Fig10CLHT(_KVThroughput):
    id = "fig10"
    store = "clht"
    title = "CLHT under YCSB-A: requests/s vs value size (Machine A)"
    paper_claim = (
        "Skipping the cache is up to 2.9x faster than baseline, cleaning up "
        "to 2.3x; gains appear once values exceed the CPU line size and "
        "grow with value size; skip > clean > baseline."
    )


@register
class Fig11Masstree(_KVThroughput):
    id = "fig11"
    store = "masstree"
    title = "Masstree under YCSB-A: requests/s vs value size (Machine A)"
    paper_claim = (
        "Skipping is up to 2.5x faster than baseline, cleaning up to 1.9x; "
        "ordering and growth with value size as for CLHT."
    )


@register
class Fig12CLHTWA(Experiment):
    id = "fig12"
    title = "CLHT under YCSB-A: write amplification (Machine A)"
    paper_claim = (
        "Baseline write amplification reaches ~3.8x once values exceed the "
        "PMEM internal line (256B); skipping and cleaning both eliminate it "
        "for large values; at 128B it is roughly halved."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for value_size, results in kv_sweep("clht", fast, seed).items():
            rows.append(
                SeriesRow(
                    {"value_size": value_size},
                    {
                        "wa_baseline": results[PrestoreMode.NONE].write_amplification,
                        "wa_clean": results[PrestoreMode.CLEAN].write_amplification,
                        "wa_skip": results[PrestoreMode.SKIP].write_amplification,
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        for row in result.rows:
            size = row.config["value_size"]
            if size >= 1024:
                if row.metric("wa_baseline") < 2.5:
                    failures.append(f"{size}B: baseline WA should be large, got {row.metrics}")
                if row.metric("wa_clean") > 1.3 or row.metric("wa_skip") > 1.3:
                    failures.append(f"{size}B: clean/skip should eliminate WA, got {row.metrics}")
        return failures
