"""Table 2: DirtBuster's classification of every evaluated application.

Runs DirtBuster end to end (sampling -> instrumentation -> analysis) on
scaled-down instances of each Table 2 application and reports the three
classification bits plus the per-function recommendations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dirtbuster.runner import DirtBuster, DirtBusterConfig
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import MachineSpec, machine_a, machine_b_fast
from repro.workloads.base import Workload
from repro.workloads.kv import CLHTWorkload, MasstreeWorkload, YCSBSpec
from repro.workloads.nas import (
    BTWorkload,
    CGWorkload,
    EPWorkload,
    FTWorkload,
    ISWorkload,
    LUWorkload,
    MGWorkload,
    SPWorkload,
    UAWorkload,
)
from repro.workloads.phoronix import PHORONIX_APPS, ReadMostlyWorkload
from repro.workloads.tensorflow_sim import TensorFlowWorkload
from repro.workloads.x9 import X9Workload

__all__ = ["Table2Classification", "EXPECTED_TABLE2", "EXPECTED_RECOMMENDATIONS"]

#: name -> (write-intensive, sequential writes, writes before fence),
#: straight from the paper's Table 2.
EXPECTED_TABLE2: Dict[str, Tuple[bool, bool, bool]] = {
    "pytorch": (False, False, False),
    "numpy": (False, False, False),
    "lzma": (False, False, False),
    "c-ray": (False, False, False),
    "arrayfire": (False, False, False),
    "build-kernel": (False, False, False),
    "build-gcc": (False, False, False),
    "gzip": (False, False, False),
    "go-bench": (False, False, False),
    "rust-prime": (False, False, False),
    "tensorflow": (True, True, False),
    "x9": (True, True, True),
    "masstree": (True, True, True),
    "clht": (True, True, True),
    "nas-ua": (True, True, False),
    "nas-lu": (False, False, False),
    "nas-ep": (False, False, False),
    "nas-is": (True, False, False),
    "nas-ft": (True, True, False),
    "nas-cg": (False, False, False),
    "nas-bt": (True, True, False),
    "nas-mg": (True, True, False),
    "nas-sp": (True, True, False),
}


#: The per-function advice reported in the paper's Section 7 analyses.
EXPECTED_RECOMMENDATIONS: Dict[str, str] = {
    "Eigen::TensorEvaluator::run": "clean",   # §7.2.1
    "resid": "clean",                          # §7.2.2 (MG)
    "psinv": "skip",                           # §7.2.2 (MG, Listing 5)
    "fftz2": "none",                           # §7.4.2 (declined)
    "craft_value": "skip",                     # §7.2.3 (KV stores)
    "fill_msg": "demote",                      # §7.3.2 (X9)
    "rank": "none",                            # §7.4.2 (declined)
}


def _small_workloads() -> List[Tuple[Workload, MachineSpec]]:
    """Scaled-down instances fast enough for a full-suite DirtBuster pass."""
    a = machine_a()
    b = machine_b_fast()
    kv_spec = YCSBSpec(mix="A", num_keys=1024, operations=500, value_size=512)
    # Working sets must exceed the (scaled) LLC, as the real benchmarks'
    # do, or the write-intensive kernels never stall on writebacks and
    # the store-time filter cannot see them.
    cases: List[Tuple[Workload, MachineSpec]] = [
        (TensorFlowWorkload(batch_size=16, iterations=1, threads=2, large_tensor_kb=160), a),
        (X9Workload(messages=800), b),
        (CLHTWorkload(kv_spec, threads=2), a),
        (MasstreeWorkload(kv_spec, threads=2), a),
        (MGWorkload(grid=32, iterations=2, threads=4), a),
        (FTWorkload(grid=32, iterations=1, threads=4), a),
        (SPWorkload(grid=24, iterations=1, threads=4), a),
        (UAWorkload(grid=24, iterations=1, threads=4), a),
        (BTWorkload(grid=24, iterations=1, threads=4), a),
        (ISWorkload(grid=20, iterations=2, threads=4), a),
        (LUWorkload(grid=16, iterations=1, threads=2), a),
        (EPWorkload(grid=16, iterations=2, threads=2), a),
        (CGWorkload(grid=20, iterations=2, threads=2), a),
    ]
    for name, flavour in PHORONIX_APPS:
        cases.append((ReadMostlyWorkload(name, flavour, scale=300), a))
    return cases


@register
class Table2Classification(Experiment):
    id = "table2"
    title = "DirtBuster classification of all evaluated applications (Table 2)"
    paper_claim = (
        "DirtBuster classifies each application as write-intensive or not, "
        "and detects sequential writes and writes-before-fence exactly as "
        "Table 2 reports (Phoronix apps, LU, EP, CG not write-intensive; "
        "IS write-intensive but not sequential; KV stores and X9 also show "
        "writes before fences)."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        # A short sampling period so even the scaled-down compute-bound
        # applications (EP and friends) yield enough samples.
        dirtbuster = DirtBuster(DirtBusterConfig(sampling_period=53))
        rows: List[SeriesRow] = []
        for workload, spec in _small_workloads():
            report = dirtbuster.analyze(workload, spec, seed=seed)
            c = report.classification
            expected = EXPECTED_TABLE2.get(workload.name)
            match = expected == (
                c.write_intensive,
                c.sequential_writes,
                c.writes_before_fence,
            )
            rows.append(
                SeriesRow(
                    {
                        "workload": workload.name,
                        "recommendations": ", ".join(
                            f"{r.function}->{r.choice}" for r in report.recommendations
                        ) or "-",
                    },
                    {
                        "write_intensive": float(c.write_intensive),
                        "sequential_writes": float(c.sequential_writes),
                        "writes_before_fence": float(c.writes_before_fence),
                        "matches_paper": float(match),
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        seen_recs: Dict[str, str] = {}
        for row in result.rows:
            if not row.metric("matches_paper"):
                name = row.config["workload"]
                expected = EXPECTED_TABLE2.get(name)
                failures.append(f"{name}: classification differs from Table 2 ({expected})")
            for item in str(row.config["recommendations"]).split(", "):
                if "->" in item:
                    function, choice = item.split("->")
                    seen_recs[function] = choice
        for function, choice in EXPECTED_RECOMMENDATIONS.items():
            if function in seen_recs and seen_recs[function] != choice:
                failures.append(
                    f"{function}: paper recommends {choice}, got {seen_recs[function]}"
                )
        return failures
