"""Per-table/figure experiment modules.

Importing this package registers every experiment; use
:func:`repro.experiments.get`/:func:`run_all` or the
``prestores-experiments`` CLI to run them.
"""

from repro.experiments import (  # noqa: F401  (imports register experiments)
    ablations,
    fault_window,
    fig3_listing1,
    fig5_listing2,
    fig7_tensorflow,
    fig9_nas,
    kv_machine_a,
    kv_machine_b,
    listing3_overhead,
    sec74_overheads,
    serve,
    table1_devices,
    table2_classification,
    x9_latency,
)
from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    SeriesRow,
    all_ids,
    get,
    run_all,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "SeriesRow",
    "all_ids",
    "get",
    "run_all",
]
