"""Figures 13-14: CLHT and Masstree on Machine B (delayed visibility).

On Machine B there is no granularity mismatch (the FPGA writes at the
CPU line size), so sequentiality buys nothing; pre-storing still helps
because crafted values are published before the index's atomic
instructions instead of "at the last minute" inside them (§7.3.1).
"""

from __future__ import annotations

import functools

from typing import List

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_b_fast, machine_b_slow
from repro.workloads.kv import CLHTWorkload, MasstreeWorkload, YCSBSpec

__all__ = ["Fig13CLHTMachineB", "Fig14MasstreeMachineB"]

#: Client-side work per request, calibrated so the FPGA is latency- not
#: bandwidth-bound (the regime of the paper's Enzian runs).
_OP_OVERHEAD = 2400
_THREADS = 8


class _KVMachineB(Experiment):
    store_cls = CLHTWorkload

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        operations = 1000 if fast else 2000
        rows: List[SeriesRow] = []
        for machine_name, spec in (("B-fast", machine_b_fast()), ("B-slow", machine_b_slow())):
            results = run_variants(
                functools.partial(
                    self.store_cls,
                    spec=YCSBSpec(mix="A", num_keys=4096, operations=operations, value_size=1024),
                    threads=_THREADS,
                    op_overhead_instructions=_OP_OVERHEAD,
                ),
                spec,
                (PrestoreMode.NONE, PrestoreMode.CLEAN),
                seed=seed,
            )
            base = results[PrestoreMode.NONE]
            clean = results[PrestoreMode.CLEAN]
            rows.append(
                SeriesRow(
                    {"machine": machine_name},
                    {
                        "throughput_baseline": base.throughput(),
                        "throughput_clean": clean.throughput(),
                        "speedup_clean": clean.drained_speedup_over(base),
                        "fence_stall_baseline": base.total_fence_stall_cycles,
                        "fence_stall_clean": clean.total_fence_stall_cycles,
                    },
                )
            )
        notes = [
            "skip (non-temporal) variant omitted, as in the paper: 'Arm CPUs "
            "do not offer standard libraries to implement non-temporal "
            "operations'.",
        ]
        return self._result(rows, notes)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        fast_rows = result.rows_where(machine="B-fast")
        slow_rows = result.rows_where(machine="B-slow")
        if not fast_rows or not slow_rows:
            return ["missing machine rows"]
        fast, slow = fast_rows[0], slow_rows[0]
        if fast.metric("speedup_clean") < 1.1:
            failures.append(f"B-fast: cleaning should clearly help, got {fast.metrics}")
        if fast.metric("speedup_clean") < slow.metric("speedup_clean") - 0.02:
            failures.append("pre-storing should be most useful on the fast FPGA (paper §7.3.1)")
        for row in (fast, slow):
            if row.metric("fence_stall_clean") >= row.metric("fence_stall_baseline"):
                failures.append(f"{row.config['machine']}: cleaning should cut fence stalls")
        return failures


@register
class Fig13CLHTMachineB(_KVMachineB):
    id = "fig13"
    store_cls = CLHTWorkload
    title = "CLHT on Machine B-fast / B-slow, 1KB values"
    paper_claim = (
        "Pre-storing (clean) is ~52% faster on B-fast; gains are largest "
        "on the fast FPGA because the memory ordering instructions happen "
        "soon after writing; profiling shows the time in the lock's atomics "
        "drops sharply."
    )


@register
class Fig14MasstreeMachineB(_KVMachineB):
    id = "fig14"
    store_cls = MasstreeWorkload
    title = "Masstree on Machine B-fast / B-slow, 1KB values"
    paper_claim = (
        "Pre-storing is ~25% faster on B-fast; the version-validation "
        "fences (Listing 7) stop stalling on the crafted values."
    )
