"""The crash-vulnerable dirty window: what a mid-run power failure costs.

The paper's mechanism moves dirty data down the hierarchy *proactively*;
the flip side is durability: between an acknowledged operation and its
bytes reaching the persistence domain there is a window in which a crash
loses acked work.  This experiment measures that window directly with
:mod:`repro.faults` — a KV store is crashed part-way through its op
stream under each pre-store mode, and recovery counts what an
acknowledged-persisted client would have lost.

``clean`` (clwb + sfence before the ack) and ``skip`` (NT stores +
sfence) must lose *nothing* acked at any crash point; the unprotected
baseline loses whatever the caches still held, which is exactly the
window pre-stores shrink.

Cells carry a :class:`~repro.faults.plan.FaultPlan` and execute through
the ordinary runner pool — the crash report rides inside
``RunResult.extra["fault_report"]``, so this sweep caches and shards
like any other.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Tuple

from repro.core.prestore import PrestoreMode
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.faults.plan import CrashPoint, FaultPlan
from repro.faults.workloads import KVPersistWorkload
from repro.sim.machine import machine_a

__all__ = ["FaultsWindow"]

_MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.SKIP)


@register
class FaultsWindow(Experiment):
    id = "faults-window"
    title = "Crash-vulnerable window: acked KV data lost at a power failure (Machine A)"
    paper_claim = (
        "Pre-stores shrink the crash-vulnerable dirty window: with clean "
        "(clwb+sfence) or skip (NT stores) before the ack no acknowledged "
        "operation is lost at any crash point, while the unprotected "
        "baseline loses acked work and leaves dirty bytes stranded in the "
        "cache hierarchy."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        from repro.runner import Cell, execute_cells

        fractions = (0.5,) if fast else (0.25, 0.5, 0.75)
        operations = 160 if fast else 320
        spec = machine_a()
        cells: List[Cell] = []
        configs: List[Tuple[float, PrestoreMode]] = []
        for fraction in fractions:
            for mode in _MODES:
                probe = KVPersistWorkload(operations=operations)
                at = max(
                    1,
                    int(
                        probe.operations
                        * probe.events_per_op(spec.line_size, mode)
                        * fraction
                    ),
                )
                cells.append(
                    Cell(
                        make_workload=functools.partial(
                            KVPersistWorkload, operations=operations
                        ),
                        spec=spec,
                        mode=mode,
                        seed=seed,
                        experiment=self.id,
                        fault_plan=FaultPlan(crash=CrashPoint(at_instruction=at)),
                    )
                )
                configs.append((fraction, mode))
        outcomes = execute_cells(cells, on_error="raise")
        rows: List[SeriesRow] = []
        for (fraction, mode), outcome in zip(configs, outcomes):
            report: Dict[str, object] = outcome.result.extra["fault_report"]  # type: ignore[assignment]
            recovery: Dict[str, object] = report["recovery"]  # type: ignore[assignment]
            image: Dict[str, object] = report["image_summary"]  # type: ignore[assignment]
            rows.append(
                SeriesRow(
                    {"crash_frac": fraction, "mode": mode.value},
                    {
                        "acked": float(recovery["acked"]),  # type: ignore[arg-type]
                        "lost_acked": float(recovery["lost_count"]),  # type: ignore[arg-type]
                        "vulnerable_lines": float(image["lost_lines"]),  # type: ignore[arg-type]
                        "vulnerable_bytes": float(image["vulnerable_bytes"]),  # type: ignore[arg-type]
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        for row in result.rows:
            mode = row.config["mode"]
            frac = row.config["crash_frac"]
            if mode in ("clean", "skip"):
                if row.metric("lost_acked") > 0:
                    failures.append(
                        f"frac {frac}, {mode}: persist protocol lost "
                        f"{row.metric('lost_acked'):.0f} acked ops"
                    )
            elif row.metric("lost_acked") <= 0:
                failures.append(
                    f"frac {frac}: baseline crash should lose acked work, lost none"
                )
        for frac in sorted({row.config["crash_frac"] for row in result.rows}):
            base = result.rows_where(crash_frac=frac, mode="none")[0]
            clean = result.rows_where(crash_frac=frac, mode="clean")[0]
            if base.metric("vulnerable_bytes") <= clean.metric("vulnerable_bytes"):
                failures.append(
                    f"frac {frac}: baseline window "
                    f"({base.metric('vulnerable_bytes'):.0f}B) should exceed "
                    f"clean's ({clean.metric('vulnerable_bytes'):.0f}B)"
                )
        return failures
