"""Section 7.3.2: X9 message-passing latency with a demote pre-store."""

from __future__ import annotations

import functools

from typing import List

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants, safe_ratio
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_b_fast, machine_b_slow
from repro.workloads.x9 import X9Workload

__all__ = ["X9Latency"]


@register
class X9Latency(Experiment):
    id = "x9"
    title = "X9: message latency with demoted messages (Machine B)"
    paper_claim = (
        "Demoting the filled message before the CAS cuts message latency by "
        "62% on B-fast and 40% on B-slow: the message reaches the shared L2 "
        "in the background instead of at the last minute inside the CAS."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        messages = 1500 if fast else 4000
        rows: List[SeriesRow] = []
        for machine_name, spec in (("B-fast", machine_b_fast()), ("B-slow", machine_b_slow())):
            results = run_variants(
                functools.partial(X9Workload, messages=messages),
                spec,
                (PrestoreMode.NONE, PrestoreMode.DEMOTE),
                seed=seed,
            )
            base = results[PrestoreMode.NONE]
            demote = results[PrestoreMode.DEMOTE]
            rows.append(
                SeriesRow(
                    {"machine": machine_name},
                    {
                        "cycles_per_message_baseline": safe_ratio(base.cycles, messages),
                        "cycles_per_message_demote": safe_ratio(demote.cycles, messages),
                        "latency_reduction_pct": 100.0
                        * (1.0 - safe_ratio(demote.cycles, base.cycles)),
                        "fence_stall_baseline": base.total_fence_stall_cycles,
                        "fence_stall_demote": demote.total_fence_stall_cycles,
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        for row in result.rows:
            reduction = row.metric("latency_reduction_pct")
            if reduction < 15.0:
                failures.append(
                    f"{row.config['machine']}: demote should cut latency "
                    f"substantially, got {reduction:.0f}%"
                )
            if row.metric("fence_stall_demote") >= row.metric("fence_stall_baseline"):
                failures.append(f"{row.config['machine']}: demote should cut CAS stalls")
        return failures
