"""Figures 7 and 8: TensorFlow training with pre-stored tensor writes.

One sweep feeds both figures: Figure 7 plots the performance improvement
of cleaning vs skipping over batch size; Figure 8 plots the write
amplification with and without cleaning.
"""

from __future__ import annotations

import functools

from typing import Dict, List, Tuple

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_a
from repro.sim.stats import RunResult
from repro.workloads.tensorflow_sim import TensorFlowWorkload

__all__ = ["Fig7TensorFlow", "Fig8TensorFlowWA", "tensorflow_sweep"]

_BATCHES_FAST_MODE = (1, 64, 250)
_BATCHES_FULL = (1, 16, 32, 64, 128, 250)
_SWEEP_CACHE: Dict[Tuple[bool, int], Dict[int, Dict[PrestoreMode, RunResult]]] = {}


def tensorflow_sweep(fast: bool, seed: int) -> Dict[int, Dict[PrestoreMode, RunResult]]:
    """Run (and memoise) the TensorFlow batch-size sweep.

    Figures 7 and 8 come from the same runs in the paper, so the two
    experiment objects share them here too.
    """
    key = (fast, seed)
    cached = _SWEEP_CACHE.get(key)
    if cached is not None:
        return cached
    batches = _BATCHES_FAST_MODE if fast else _BATCHES_FULL
    sweep: Dict[int, Dict[PrestoreMode, RunResult]] = {}
    for batch in batches:
        sweep[batch] = run_variants(
            functools.partial(
                TensorFlowWorkload, batch_size=batch, iterations=2, threads=4, large_tensor_kb=96
            ),
            machine_a(),
            (PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.SKIP),
            seed=seed,
        )
    _SWEEP_CACHE[key] = sweep
    return sweep


@register
class Fig7TensorFlow(Experiment):
    id = "fig7"
    title = "TensorFlow: clean vs skip over batch size (Machine A)"
    paper_claim = (
        "Cleaning improves training by up to 47% at batch size 1, dropping "
        "to ~20% at large batches; skipping the cache is the wrong choice "
        "(the evaluator re-reads freshly written packets), as DirtBuster "
        "predicted."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for batch, results in tensorflow_sweep(fast, seed).items():
            base = results[PrestoreMode.NONE]
            rows.append(
                SeriesRow(
                    {"batch_size": batch},
                    {
                        "improvement_clean_pct": 100.0
                        * (results[PrestoreMode.CLEAN].drained_speedup_over(base) - 1.0),
                        "improvement_skip_pct": 100.0
                        * (results[PrestoreMode.SKIP].drained_speedup_over(base) - 1.0),
                    },
                )
            )
        notes = [
            "deviation: in the paper skipping loses ~20% vs the unmodified "
            "baseline; here it stays above baseline (our simulator credits "
            "NT stores with the avoided read-for-ownership traffic) but "
            "remains below cleaning, preserving DirtBuster's ranking."
        ]
        return self._result(rows, notes)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        rows = sorted(result.rows, key=lambda r: r.config["batch_size"])
        first, last = rows[0], rows[-1]
        if first.metric("improvement_clean_pct") < 25.0:
            failures.append("cleaning should help substantially at batch 1")
        if first.metric("improvement_clean_pct") <= last.metric("improvement_clean_pct"):
            failures.append("cleaning gains should shrink as batch size grows")
        for row in rows:
            if row.metric("improvement_skip_pct") > row.metric("improvement_clean_pct"):
                failures.append(
                    f"clean should beat skip (DirtBuster's advice) at batch "
                    f"{row.config['batch_size']}"
                )
        return failures


@register
class Fig8TensorFlowWA(Experiment):
    id = "fig8"
    title = "TensorFlow: write amplification with and without cleaning"
    paper_claim = (
        "Without cleaning, write amplification is ~3.7x; cleaning the one "
        "patched evaluator function drops it to ~2.7x (other writers remain "
        "non-sequential, so it does not reach 1x)."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for batch, results in tensorflow_sweep(fast, seed).items():
            rows.append(
                SeriesRow(
                    {"batch_size": batch},
                    {
                        "wa_baseline": results[PrestoreMode.NONE].write_amplification,
                        "wa_clean": results[PrestoreMode.CLEAN].write_amplification,
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        for row in result.rows:
            base, clean = row.metric("wa_baseline"), row.metric("wa_clean")
            if base < 3.0:
                failures.append(f"baseline WA should be ~3.7x, got {base:.2f}")
            if clean >= base:
                failures.append("cleaning should reduce WA")
            if clean < 1.5:
                failures.append(
                    "cleaning one function should NOT eliminate WA entirely "
                    f"(other writers remain), got {clean:.2f}"
                )
        return failures
