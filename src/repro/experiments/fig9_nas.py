"""Figure 9: normalized runtime of the NAS benchmarks with pre-stores."""

from __future__ import annotations

import functools
from typing import List

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants, safe_ratio
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_a
from repro.workloads.nas import BTWorkload, FTWorkload, MGWorkload, SPWorkload, UAWorkload

__all__ = ["Fig9NAS"]


@register
class Fig9NAS(Experiment):
    id = "fig9"
    title = "NAS benchmarks: normalized runtime with clean pre-stores (Machine A)"
    paper_claim = (
        "Pre-storing the DirtBuster-endorsed matrices (MG, FT, SP, UA, BT) "
        "is up to 40% faster; normalized runtime (prestore/baseline) drops "
        "below 1.0 for every patched kernel."
    )

    KERNELS = (MGWorkload, FTWorkload, SPWorkload, UAWorkload, BTWorkload)

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        grid = 32 if fast else 48
        iterations = 2
        rows: List[SeriesRow] = []
        for kernel_cls in self.KERNELS:
            results = run_variants(
                functools.partial(kernel_cls, grid=grid, iterations=iterations, threads=4),
                machine_a(),
                (PrestoreMode.NONE, PrestoreMode.CLEAN),
                seed=seed,
                endorsed_only=True,  # fftz2 and friends stay unpatched
            )
            base = results[PrestoreMode.NONE]
            clean = results[PrestoreMode.CLEAN]
            rows.append(
                SeriesRow(
                    {"benchmark": kernel_cls.name},
                    {
                        "normalized_runtime": safe_ratio(
                            clean.cycles_with_drain, base.cycles_with_drain
                        ),
                        "wa_baseline": base.write_amplification,
                        "wa_clean": clean.write_amplification,
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []
        for row in result.rows:
            norm = row.metric("normalized_runtime")
            if norm >= 1.0:
                failures.append(f"{row.config['benchmark']}: pre-store should help, got {norm:.2f}")
            if norm < 0.3:
                failures.append(
                    f"{row.config['benchmark']}: gain implausibly large ({norm:.2f})"
                )
            if row.metric("wa_clean") > row.metric("wa_baseline"):
                failures.append(f"{row.config['benchmark']}: cleaning should reduce WA")
        return failures
