"""``prestores-experiments``: run paper experiments from the command line.

Examples::

    prestores-experiments --list
    prestores-experiments fig3 fig5
    prestores-experiments --all --full --markdown experiments.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import all_ids, get
from repro.experiments.registry import ExperimentResult


def _markdown(results: List[ExperimentResult]) -> str:
    lines = ["# Experiment results", ""]
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append(f"*Paper claim:* {result.paper_claim}")
        lines.append("")
        lines.append("```")
        lines.append(result.table())
        lines.append("```")
        for note in result.notes:
            lines.append(f"- {note}")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="prestores-experiments",
        description="Reproduce the tables and figures of the Pre-Stores paper.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig3 table2)")
    parser.add_argument("--list", action="store_true", help="list known experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--full", action="store_true", help="full-size sweeps (slower; default is fast mode)"
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--markdown", metavar="PATH", help="also write results as markdown")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard sweep cells across N worker processes (repro.runner)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed result cache; repeat runs skip simulation",
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid in all_ids():
            exp = get(eid)
            print(f"{eid:10s} {exp.title}")
        return 0

    ids = all_ids() if args.all else args.experiments
    if not ids:
        parser.error("give experiment ids, --all, or --list")

    from repro.runner import runner_session

    results: List[ExperimentResult] = []
    failed = False
    with runner_session(workers=args.workers, cache_dir=args.cache_dir):
        for eid in ids:
            result = get(eid).run_checked(fast=not args.full, seed=args.seed)
            results.append(result)
            print(result.render())
            print()
            if any(n.startswith("SHAPE CHECK FAILED") for n in result.notes):
                failed = True

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(_markdown(results))
        print(f"wrote {args.markdown}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
