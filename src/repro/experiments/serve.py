"""Serve: KV serving under live traffic — tail latency and durability.

The serving composition the traffic layer exists for: an open-loop
YCSB-A client fleet against the CLHT store on Machine A, swept over
pre-store modes × fault scenarios through the runner's
:class:`~repro.runner.grid.Grid` ``fault_plans`` axis.

Three scenarios per mode:

* ``steady`` — undisturbed traffic; the baseline tail.
* ``degraded`` — a mid-run degraded-bandwidth window (media work ×8
  for the middle half of the arrival horizon): requests that hit the
  device inside the window pay the stretched media occupancy, so p999
  blows out while p50 (combiner hits) barely moves.
* ``crash`` — power fails at 60% of the horizon; recovery replays the
  durability log against the persistent image and counts acked writes
  whose lines never reached the media (the acked-but-lost window).

The serving tradeoff this reproduces: ``none`` acks straight after the
store writes — fast, but a crash loses acked data; ``clean`` pre-stores
the value lines before the ack, paying tail latency through the
degraded medium but losing nothing on crash.
"""

from __future__ import annotations

import functools
import itertools
from typing import List, Optional

from repro.core.prestore import PrestoreMode
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.faults.plan import FaultPlan
from repro.sim.machine import machine_a
from repro.traffic.arrivals import ArrivalSpec
from repro.traffic.serving import ServingWorkload
from repro.workloads.kv.ycsb import YCSBSpec

__all__ = ["ServeTraffic"]

#: Working set (num_keys × value_size = 1 MiB) deliberately exceeds
#: Machine A's 512 KiB LLC: mid-run demand misses and combiner closes
#: keep media traffic live, so the degraded window has something to
#: slow down *during* the run, not just at drain time.
_NUM_KEYS = 1024
_VALUE_SIZE = 1024
_RATE_PER_KCYCLE = 0.25  # un-overloaded steady state at 4 clients
_SLO_CYCLES = 10_000.0

_MODES = (PrestoreMode.NONE, PrestoreMode.CLEAN)


def _metric(value: Optional[float]) -> float:
    """None (a JSON-null serving field) renders as NaN, per §10."""
    return float("nan") if value is None else float(value)


@register
class ServeTraffic(Experiment):
    id = "serve"
    title = "KV serving under live traffic: tail latency vs. durability (Machine A)"
    paper_claim = (
        "Pre-storing the value lines before the ack closes the "
        "acked-but-lost window entirely: under a crash the none baseline "
        "loses acked writes while clean loses zero, and the price is "
        "paid only in tail latency when the medium itself degrades."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        from repro.runner import execute_cells
        from repro.runner.grid import Grid

        operations = 2000 if fast else 4000
        arrival = ArrivalSpec(kind="poisson", rate_per_kcycle=_RATE_PER_KCYCLE)
        horizon = arrival.expected_horizon_cycles(operations)
        factory = functools.partial(
            ServingWorkload,
            spec=YCSBSpec(
                mix="A",
                num_keys=_NUM_KEYS,
                operations=operations,
                value_size=_VALUE_SIZE,
            ),
            clients=4,
            arrival=arrival,
            slo_cycles=_SLO_CYCLES,
        )
        scenarios = (
            ("steady", None),
            (
                "degraded",
                FaultPlan.degraded_window(0.25 * horizon, 0.5 * horizon, slowdown=8.0),
            ),
            ("crash", FaultPlan.crash_at_cycle(0.6 * horizon)),
        )
        grid = Grid(
            factories=[factory],
            machines=[machine_a()],
            modes=_MODES,
            fault_plans=[plan for _, plan in scenarios],
            seeds=[seed],
            experiment=self.id,
        )
        outcomes = execute_cells(grid.cells(), on_error="raise")

        rows: List[SeriesRow] = []
        # Grid expansion is row-major (modes before fault_plans), so the
        # outcome order is exactly this product.
        for (mode, (scenario, _plan)), outcome in zip(
            itertools.product(_MODES, scenarios), outcomes
        ):
            extra = outcome.result.extra
            serving = extra["serving"]
            report = extra.get("fault_report") or {}
            recovery = report.get("recovery") or {}
            lost = recovery.get("lost_count", 0) if report.get("crashed") else 0
            rows.append(
                SeriesRow(
                    {"mode": mode.value, "scenario": scenario},
                    {
                        "latency_p50": _metric(serving["latency_p50"]),
                        "latency_p99": _metric(serving["latency_p99"]),
                        "latency_p999": _metric(serving["latency_p999"]),
                        "slo_violation_rate": _metric(serving["slo_violation_rate"]),
                        "ops_completed": float(serving["ops_completed"]),
                        "acked_writes": float(serving["acked_writes"]),
                        "lost_acked": float(lost),
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures: List[str] = []

        def one(mode: str, scenario: str) -> Optional[SeriesRow]:
            rows = result.rows_where(mode=mode, scenario=scenario)
            if not rows:
                failures.append(f"missing row mode={mode} scenario={scenario}")
                return None
            return rows[0]

        none_crash = one("none", "crash")
        clean_crash = one("clean", "crash")
        if none_crash is not None and none_crash.metric("lost_acked") <= 0:
            failures.append(
                "crash under none should lose acked writes (the unsafe ack), lost 0"
            )
        if clean_crash is not None and clean_crash.metric("lost_acked") != 0:
            failures.append(
                f"crash under clean must lose nothing, lost "
                f"{clean_crash.metric('lost_acked'):.0f} acked writes"
            )
        for mode in ("none", "clean"):
            steady = one(mode, "steady")
            degraded = one(mode, "degraded")
            if steady is None or degraded is None:
                continue
            if degraded.metric("latency_p999") < steady.metric("latency_p999"):
                failures.append(
                    f"{mode}: degraded bandwidth should inflate the tail, p999 "
                    f"{degraded.metric('latency_p999'):.0f} < steady "
                    f"{steady.metric('latency_p999'):.0f}"
                )
            if steady.metric("slo_violation_rate") > 0.05:
                failures.append(
                    f"{mode}: steady state should be un-overloaded, violation "
                    f"rate {steady.metric('slo_violation_rate'):.3f}"
                )
        return failures
