"""Table 1: internal read/write granularities of the modelled devices."""

from __future__ import annotations

from typing import List

from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.memory import cxl_ssd_spec, dram_spec, fpga_spec, optane_pmem_spec

__all__ = ["Table1Devices"]


@register
class Table1Devices(Experiment):
    id = "table1"
    title = "Device internal granularities (Table 1)"
    paper_claim = (
        "Devices internally read and write at different granularities: "
        "Intel CPU 64B, ThunderX ARM CPU 128B, Optane PMEM 256B, CXL SSD "
        "256B/512B."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows = [
            SeriesRow({"device": "Intel CPU cache line"}, {"granularity_bytes": 64}),
            SeriesRow({"device": "ThunderX ARM cache line"}, {"granularity_bytes": 128}),
            SeriesRow(
                {"device": dram_spec().name},
                {"granularity_bytes": dram_spec().internal_granularity},
            ),
            SeriesRow(
                {"device": optane_pmem_spec().name},
                {"granularity_bytes": optane_pmem_spec().internal_granularity},
            ),
            SeriesRow(
                {"device": cxl_ssd_spec(256).name},
                {"granularity_bytes": cxl_ssd_spec(256).internal_granularity},
            ),
            SeriesRow(
                {"device": cxl_ssd_spec(512).name},
                {"granularity_bytes": cxl_ssd_spec(512).internal_granularity},
            ),
            SeriesRow(
                {"device": fpga_spec(60, 5.0).name},
                {"granularity_bytes": fpga_spec(60, 5.0).internal_granularity},
            ),
        ]
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        expected = {"Optane-PMEM": 256, "CXL-SSD-256B": 256, "CXL-SSD-512B": 512, "DRAM": 64}
        for name, gran in expected.items():
            rows = result.rows_where(device=name)
            if not rows or rows[0].metric("granularity_bytes") != gran:
                failures.append(f"{name} should have {gran}B internal granularity")
        return failures
