"""Section 5: the pre-store anti-pattern (Listing 3).

Cleaning a constantly rewritten cache line forces every rewrite out to
memory: "pre-stores result in a 75x slowdown — an unsurprising result,
equivalent to the ratio between the latency of writing to memory vs.
writing to the cache."
"""

from __future__ import annotations

import functools

from typing import List

from repro.core.prestore import PrestoreMode
from repro.experiments.common import run_variants, safe_ratio
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.machine import machine_a
from repro.workloads.microbench import Listing3

__all__ = ["Listing3Overhead"]


@register
class Listing3Overhead(Experiment):
    id = "listing3"
    title = "Listing 3: cleaning a hot line (the anti-pattern, Machine A)"
    paper_claim = (
        "Cleaning a frequently-rewritten line causes an order(s)-of-"
        "magnitude slowdown (75x in the paper) — the ratio between memory "
        "and cache write latency.  DirtBuster does not recommend it."
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        iterations = 3000 if fast else 10000
        results = run_variants(
            functools.partial(Listing3, iterations=iterations),
            machine_a(),
            (PrestoreMode.NONE, PrestoreMode.CLEAN),
            seed=seed,
            endorsed_only=False,  # this is deliberate misuse
        )
        base = results[PrestoreMode.NONE]
        clean = results[PrestoreMode.CLEAN]
        rows = [
            SeriesRow(
                {"variant": "baseline"},
                {"cycles_per_iteration": safe_ratio(base.cycles, iterations)},
            ),
            SeriesRow(
                {"variant": "clean"},
                {
                    "cycles_per_iteration": safe_ratio(clean.cycles, iterations),
                    "slowdown": safe_ratio(clean.cycles, base.cycles),
                },
            ),
        ]
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        clean_rows = result.rows_where(variant="clean")
        if not clean_rows:
            return ["missing clean row"]
        slowdown = clean_rows[0].metric("slowdown")
        if slowdown < 20.0:
            return [f"hot-line cleaning should slow down by >=20x, got {slowdown:.0f}x"]
        return []
