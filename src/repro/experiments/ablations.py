"""Ablation studies for the simulator's design choices (DESIGN.md §5).

These are not paper artifacts; they isolate the mechanisms the
reproduction's claims rest on:

* ``abl-replacement`` — Figure 2's premise: strict LRU would evict in
  written order (no write amplification); the pseudo-random policies of
  real CPUs are what scramble it.
* ``abl-combiner`` — the device write-combining window: sequential
  streams merge at any size, scrambled streams need an implausibly large
  buffer.
* ``abl-ycsb-mixes`` — Section 7.2.3's negative result: "read-only or
  read-mostly workloads (YCSB B-D) do not benefit from pre-storing".
* ``abl-granularity`` — WA requires a granularity mismatch: sweeping the
  device's internal write unit from 64B (DRAM-like) to 512B (CXL-SSD).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.experiments.registry import Experiment, ExperimentResult, SeriesRow, register
from repro.sim.cache import CacheLevelSpec
from repro.sim.machine import machine_a
from repro.sim.memory import optane_pmem_spec
from repro.workloads.kv import CLHTWorkload, YCSBSpec
from repro.workloads.microbench import Listing1

__all__ = [
    "AblReplacement",
    "AblCombiner",
    "AblYCSBMixes",
    "AblGranularity",
]


def _listing1(threads: int = 2) -> Listing1:
    # Working set of 2x the LLC and enough iterations that steady-state
    # evictions dominate the end-of-run drain.
    return Listing1(
        element_size=1024,
        num_elements=1024,
        iterations=2400,
        threads=threads,
        compute_per_iter=4096,
    )


def _plain_indexed(spec):
    """Drop slice hashing so replacement is the only scrambler."""
    levels = tuple(
        CacheLevelSpec(
            name=l.name,
            size_bytes=l.size_bytes,
            ways=l.ways,
            hit_latency=l.hit_latency,
            hashed_index=False,
        )
        for l in spec.cache_levels
    )
    return replace(spec, cache_levels=levels)


@register
class AblReplacement(Experiment):
    id = "abl-replacement"
    title = "Ablation: replacement policy vs write amplification"
    paper_claim = (
        "Figure 2's premise: under strict LRU the cache would evict data "
        "in written order (no amplification); pseudo-LRU/random policies "
        "scramble evictions and create it."
    )

    POLICIES = ("lru", "tree-plru", "intel-like", "arm-like", "fifo", "random")

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for policy in self.POLICIES:
            spec = _plain_indexed(replace(machine_a(), replacement_policy=policy))
            run = _listing1(threads=1).run(spec, PatchConfig.baseline(), seed=seed).run
            rows.append(
                SeriesRow({"policy": policy}, {"wa_baseline": run.write_amplification})
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        by_policy = {r.config["policy"]: r.metric("wa_baseline") for r in result.rows}
        if by_policy["lru"] > 1.4:
            failures.append(f"strict LRU should not amplify, got {by_policy['lru']:.2f}")
        for noisy in ("intel-like", "arm-like", "random"):
            if by_policy[noisy] < by_policy["lru"] + 0.3:
                failures.append(f"{noisy} should amplify more than LRU")
        return failures


@register
class AblCombiner(Experiment):
    id = "abl-combiner"
    title = "Ablation: device write-combiner capacity vs amplification"
    paper_claim = (
        "Write amplification is an interaction between eviction order and "
        "the device's bounded combining window: no realistic window size "
        "absorbs a scrambled stream, while an in-order (pre-stored) stream "
        "merges with just a handful of entries."
    )

    ENTRIES = (4, 16, 64, 256)

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for entries in self.ENTRIES:
            device = optane_pmem_spec(combiner_entries=entries)
            spec = replace(machine_a(), device=device)
            for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
                w = _listing1(threads=2)
                run = w.run(spec, PatchConfig({w.SITE.name: mode}), seed=seed).run
                rows.append(
                    SeriesRow(
                        {"combiner_entries": entries, "mode": str(mode)},
                        {"write_amplification": run.write_amplification},
                    )
                )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        for entries in self.ENTRIES:
            clean = result.rows_where(combiner_entries=entries, mode="clean")[0]
            base = result.rows_where(combiner_entries=entries, mode="none")[0]
            if clean.metric("write_amplification") > 1.3:
                failures.append(
                    f"{entries} entries: an in-order clean stream should merge"
                )
            if entries <= 64 and base.metric("write_amplification") < 1.8:
                failures.append(
                    f"{entries} entries: a scrambled stream should still amplify"
                )
        return failures


@register
class AblYCSBMixes(Experiment):
    id = "abl-ycsb-mixes"
    title = "Ablation: pre-stores across YCSB mixes A-D (Machine A)"
    paper_claim = (
        "Section 7.2.3: 'read-only or read-mostly workloads (YCSB B-D) do "
        "not benefit from pre-storing data'; the update-heavy mix A does. "
        "(In our model B/D retain a residual gain because the few updates' "
        "amplified writebacks contend with reads on the PMEM media.)"
    )

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for mix in ("A", "B", "C", "D"):
            runs = {}
            for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
                w = CLHTWorkload(
                    spec=YCSBSpec(mix=mix, num_keys=8192, operations=1000, value_size=1024),
                    threads=4,
                )
                runs[mode] = w.run(machine_a(), PatchConfig({w.SITE.name: mode}), seed=seed).run
            rows.append(
                SeriesRow(
                    {"mix": mix},
                    {
                        "speedup_clean": runs[PrestoreMode.CLEAN].drained_speedup_over(
                            runs[PrestoreMode.NONE]
                        )
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        speedups = {r.config["mix"]: r.metric("speedup_clean") for r in result.rows}
        if speedups["A"] < 1.3:
            failures.append(f"mix A should benefit clearly, got {speedups['A']:.2f}x")
        if not 0.9 <= speedups["C"] <= 1.1:
            failures.append(
                f"mix C is read-only: cleaning can do nothing, got {speedups['C']:.2f}x"
            )
        for mix in ("B", "C", "D"):
            if speedups[mix] >= speedups["A"]:
                failures.append(f"mix {mix} should benefit less than mix A")
        return failures


@register
class AblGranularity(Experiment):
    id = "abl-granularity"
    title = "Ablation: device internal granularity vs the value of cleaning"
    paper_claim = (
        "Sequentiality only matters when the device's internal write unit "
        "exceeds the CPU line: at 64B granularity (DRAM) cleaning buys "
        "nothing; the gain grows through 256B (PMEM) to 512B (CXL SSD)."
    )

    GRANULARITIES = (64, 128, 256, 512)

    def run(self, fast: bool = True, seed: int = 1234) -> ExperimentResult:
        rows: List[SeriesRow] = []
        for gran in self.GRANULARITIES:
            device = replace(optane_pmem_spec(), internal_granularity=gran, name=f"gran{gran}")
            spec = replace(machine_a(), device=device)
            runs = {}
            for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN):
                w = _listing1(threads=4)
                runs[mode] = w.run(spec, PatchConfig({w.SITE.name: mode}), seed=seed).run
            rows.append(
                SeriesRow(
                    {"granularity": gran},
                    {
                        "wa_baseline": runs[PrestoreMode.NONE].write_amplification,
                        "speedup_clean": runs[PrestoreMode.CLEAN].drained_speedup_over(
                            runs[PrestoreMode.NONE]
                        ),
                    },
                )
            )
        return self._result(rows)

    def check(self, result: ExperimentResult) -> List[str]:
        failures = []
        rows = sorted(result.rows, key=lambda r: r.config["granularity"])
        if rows[0].metric("wa_baseline") > 1.1:
            failures.append("64B granularity cannot amplify 64B writebacks")
        if rows[-1].metric("wa_baseline") < rows[0].metric("wa_baseline") + 1.0:
            failures.append("amplification should grow with granularity")
        if rows[-1].metric("speedup_clean") < rows[0].metric("speedup_clean"):
            failures.append("cleaning should pay more at larger granularities")
        return failures
