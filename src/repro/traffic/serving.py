"""ServingWorkload: a KV store under open-loop traffic.

Each client thread WAITs on its next request's pre-posted arrival
timestamp (the simulator's mailbox semantics advance the core clock to
``max(now, arrival)`` — exact open-loop pacing with queueing delay when
the client is backlogged), executes the operation against a shared CLHT
or Masstree store, persists-and-acks writes through a
:class:`~repro.faults.recovery.DurabilityLog` (the pre-store mode *is*
the persist protocol, as in :mod:`repro.faults.workloads`), and records
the completion timestamp via :meth:`ThreadCtx.now`.

Latency is ``completion - arrival`` — queueing included — and the
aggregates (exact nearest-rank p50/p99/p999, SLO-violation counts, a
fixed-bucket histogram scaled to the SLO) land in
``RunResult.extra["serving"]`` through the
:meth:`~repro.workloads.base.Workload.result_extras` hook, on clean
completion *and* after an injected crash.  Everything is a
deterministic function of (spec, machine, mode, seed): sorted-latency
statistics make the numbers independent of scheduler interleaving
order, so fast-path and reference runs stay bit-identical.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.faults.recovery import DurabilityLog
from repro.faults.workloads import _lines_of
from repro.obs.metrics import Histogram
from repro.sim.event import Event, Mailbox
from repro.traffic.arrivals import ArrivalSpec
from repro.traffic.interleave import ServingOp, compile_schedule
from repro.workloads.base import Workload
from repro.workloads.kv.ycsb import OP_READ, YCSBSpec
from repro.workloads.memapi import Program, ThreadCtx

__all__ = ["ServingWorkload", "latency_bounds"]

_STORES = ("clht", "masstree")

#: Histogram bucket edges as multiples of the SLO: sub-SLO resolution
#: below 1.0, tail resolution above.
_SLO_FRACTIONS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def latency_bounds(slo_cycles: float) -> Tuple[float, ...]:
    """Histogram bucket bounds scaled to an SLO (cycles)."""
    if slo_cycles <= 0:
        raise WorkloadError(f"SLO must be positive, got {slo_cycles}")
    return tuple(round(slo_cycles * f, 3) for f in _SLO_FRACTIONS)


class ServingWorkload(Workload):
    """YCSB-over-KV serving under an open-loop arrival schedule."""

    name = "serving"
    default_threads = 4
    recovery_kind = "kv"

    SITE = PatchSite(
        name="serving.craft_value",
        function="craft_value",
        file="ycsb.c",
        line=12,
        description="the crafted PUT value, persisted before the serving ack",
    )

    def __init__(
        self,
        spec: Optional[YCSBSpec] = None,
        clients: int = 4,
        arrival: Optional[ArrivalSpec] = None,
        slo_cycles: float = 50_000.0,
        store: str = "clht",
        op_overhead_instructions: int = 600,
        load_factor: float = 0.66,
    ) -> None:
        self.spec = spec or YCSBSpec()
        if clients <= 0:
            raise WorkloadError(f"need at least one client, got {clients}")
        if store not in _STORES:
            raise WorkloadError(f"unknown store {store!r}; choose from {_STORES}")
        if slo_cycles <= 0:
            raise WorkloadError(f"SLO must be positive, got {slo_cycles}")
        self.clients = clients
        self.arrival = arrival or ArrivalSpec()
        self.slo_cycles = float(slo_cycles)
        self.store_kind = store
        self.op_overhead_instructions = op_overhead_instructions
        self.load_factor = load_factor
        self.durability_log = DurabilityLog()
        #: (arrival, completion, op) per finished request, appended in
        #: scheduler order; every aggregate sorts first, so the stats are
        #: independent of interleaving order.
        self._records: List[Tuple[float, float, str]] = []

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    # -- store construction --------------------------------------------------

    def _build_store(self, program: Program):
        spec = self.spec
        if self.store_kind == "clht":
            from repro.workloads.kv.clht import SLOTS_PER_BUCKET, CLHTStore
            from repro.workloads.kv.values import ValuePool

            pool = ValuePool(
                program.allocator,
                slots=spec.num_keys + spec.operations + 8,
                value_size=spec.value_size,
            )
            store = CLHTStore(
                program.allocator,
                num_buckets=max(16, int(spec.num_keys / (SLOTS_PER_BUCKET * self.load_factor))),
                value_pool=pool,
                line_size=program.machine.line_size,
                max_overflow=max(64, spec.num_keys // 4),
            )
        else:
            from repro.workloads.kv.masstree import FANOUT, MasstreeStore
            from repro.workloads.kv.values import ValuePool

            max_keys = spec.num_keys + spec.operations + 8
            pool = ValuePool(
                program.allocator, slots=max_keys, value_size=spec.value_size
            )
            store = MasstreeStore(
                program.allocator,
                value_pool=pool,
                capacity_nodes=max(64, 4 * max_keys // FANOUT + 16),
            )
        for key in range(spec.num_keys):
            store.preload(key, store.values.alloc())
        return store

    # -- spawning ------------------------------------------------------------

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        if self.clients > program.machine.spec.num_cores:
            raise WorkloadError(
                f"{self.clients} serving clients need {self.clients} cores; "
                f"machine {program.machine.spec.name!r} has "
                f"{program.machine.spec.num_cores}"
            )
        mode = patches.mode(self.SITE.name)
        store = self._build_store(program)
        schedule = compile_schedule(
            self.spec, self.arrival, self.clients, self.spec.operations, program.seed
        )
        # Pre-posting every arrival makes each WAIT satisfied on first
        # execution: the waiting core's clock jumps to max(now, arrival).
        # No POST events are ever simulated, so pacing costs nothing.
        mailbox = Mailbox()
        for ops in schedule:
            for op in ops:
                mailbox.post(("arrive", op.client, op.seq), op.arrival)
        self.durability_log = DurabilityLog()
        self._records = []
        for client_id, ops in enumerate(schedule):
            program.spawn(self._client, program, store, mode, mailbox, ops, client_id)

    def _client(
        self,
        t: ThreadCtx,
        program: Program,
        store,
        mode: PrestoreMode,
        mailbox: Mailbox,
        ops: List[ServingOp],
        client_id: int,
    ) -> Iterator[Event]:
        log = self.durability_log
        device = program.machine.device
        line_size = t.line_size
        value_size = self.spec.value_size
        records = self._records
        for op in ops:
            yield t.wait(mailbox, ("arrive", op.client, op.seq))
            if op.op == OP_READ:
                yield from store.get(t, op.key)
            else:
                # update and insert both go through put; the persist
                # protocol is the pre-store mode (faults/workloads.py):
                # NONE acks straight after the stores — the unsafe
                # baseline whose acked-but-lost window the crash
                # scenarios measure.
                yield from store.put(t, op.key, mode)
                if mode is not PrestoreMode.NONE:
                    yield t.fence()
                slot = store.shadow[op.key]
                log.ack(
                    f"c{client_id}/k{op.key}",
                    _lines_of(store.values.addr(slot), value_size, line_size),
                    device,
                )
            if self.op_overhead_instructions:
                yield t.compute(self.op_overhead_instructions)
            records.append((op.arrival, t.now(), op.op))
            program.add_work(1)

    # -- reporting -----------------------------------------------------------

    def result_extras(self) -> dict:
        """Latency/SLO aggregates for ``RunResult.extra["serving"]``.

        Exact nearest-rank quantiles over sorted latencies (not the
        bucket estimates) — plus the histogram itself, which the sweep
        monitor folds fleet-wide.  Empty-denominator fields are None
        (JSON null), per the §10 convention.
        """
        lats = sorted(round(done - arrived, 3) for arrived, done, _ in self._records)
        n = len(lats)

        def rank(q: float) -> Optional[float]:
            if n == 0:
                return None
            return lats[min(n - 1, max(0, math.ceil(q * n) - 1))]

        hist = Histogram("serving.latency_cycles", bounds=latency_bounds(self.slo_cycles))
        violations = 0
        for v in lats:
            hist.observe(v)
            if v > self.slo_cycles:
                violations += 1
        serving = {
            "ops_scheduled": self.spec.operations,
            "ops_completed": n,
            "clients": self.clients,
            "store": self.store_kind,
            "arrival": {
                "kind": self.arrival.kind,
                "rate_per_kcycle": self.arrival.rate_per_kcycle,
                "bursty": self.arrival.bursty,
            },
            "latency_p50": rank(0.50),
            "latency_p99": rank(0.99),
            "latency_p999": rank(0.999),
            "latency_mean": round(sum(lats) / n, 3) if n else None,
            "latency_max": lats[-1] if n else None,
            "slo_cycles": self.slo_cycles,
            "slo_violations": violations,
            "slo_violation_rate": round(violations / n, 6) if n else None,
            "acked_writes": len(self.durability_log),
            "histogram": {
                "bounds": list(hist.bounds),
                "counts": list(hist.bucket_counts),
            },
        }
        return {"serving": serving}
