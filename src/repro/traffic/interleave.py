"""The deterministic multi-client interleaver.

:func:`compile_schedule` fuses an arrival process with per-client YCSB
operation streams into per-client schedules of :class:`ServingOp`:
arrival *i* goes to client ``i % clients`` (round-robin load balancing,
as a front-end dispatcher would), and each client's operation contents
are drawn from its own seeded ``operation_stream`` with the disjoint
``insert_start``/``insert_stride`` convention the KV workloads already
use.  By construction each client's (op, key) sequence is exactly a
prefix of its YCSB stream — the subsequence property the hypothesis
suite checks — and the whole schedule is a pure function of
(spec, arrival, clients, operations, seed).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List

from repro.errors import WorkloadError
from repro.traffic.arrivals import ArrivalSpec
from repro.workloads.kv.ycsb import YCSBSpec

__all__ = ["ServingOp", "compile_schedule"]


@dataclass(frozen=True)
class ServingOp:
    """One scheduled request: who runs what, on which key, and when."""

    client: int
    #: Per-client sequence number (position in this client's schedule).
    seq: int
    #: Global arrival index (position in the merged arrival order).
    index: int
    op: str
    key: int
    #: Arrival time in simulated cycles.
    arrival: float


def compile_schedule(
    spec: YCSBSpec,
    arrival: ArrivalSpec,
    clients: int,
    operations: int,
    seed: int,
) -> List[List[ServingOp]]:
    """Compile per-client schedules for ``operations`` total requests.

    Returns one list per client, each sorted by arrival time (a client
    serves its own requests in order).  Client ``c`` inserts keys
    ``spec.num_keys + c, spec.num_keys + c + clients, ...`` so inserted
    keys never collide across clients.
    """
    if clients <= 0:
        raise WorkloadError(f"need at least one client, got {clients}")
    if operations < 0:
        raise WorkloadError(f"operation count cannot be negative, got {operations}")
    times = arrival.times(operations, seed=seed)
    counts = [len(range(c, operations, clients)) for c in range(clients)]
    contents = [
        list(
            itertools.islice(
                spec.operation_stream(
                    random.Random(seed + 7919 * c),
                    operations=counts[c],
                    insert_start=spec.num_keys + c,
                    insert_stride=clients,
                ),
                counts[c],
            )
        )
        for c in range(clients)
    ]
    schedule: List[List[ServingOp]] = [[] for _ in range(clients)]
    for index, when in enumerate(times):
        client = index % clients
        seq = len(schedule[client])
        op, key = contents[client][seq]
        schedule[client].append(
            ServingOp(client=client, seq=seq, index=index, op=op, key=key, arrival=when)
        )
    return schedule
