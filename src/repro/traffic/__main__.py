"""Entry point for ``python -m repro.traffic``."""

import sys

from repro.traffic.cli import main

sys.exit(main())
