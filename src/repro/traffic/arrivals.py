"""Seeded open-loop arrival processes.

An :class:`ArrivalSpec` describes *offered load*: when requests arrive,
independent of when the server finishes them.  That open-loop property
is the whole point — closed-loop microbenches let a slow server throttle
its own load, hiding the queueing delay that dominates tail latency
under real traffic (the MigrantStore / hybrid-memory emulation
observation in PAPERS.md).  Arrival times are generated up front from
the spec and a run seed, so the same (spec, seed) yields the same
schedule in every process — the serving layer pre-posts them as mailbox
timestamps and the simulator's WAIT semantics do the pacing.

Two base processes, plus an on/off burst modulator stacked on either:

* ``poisson`` — exponential gaps (memoryless, the standard open-loop
  model);
* ``constant`` — fixed gaps (isolates queueing from arrival variance);
* bursty — while the modulator is in its *off* phase every gap is
  multiplied by ``burst_slowdown``, producing alternating windows of
  full-rate and trickle traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import WorkloadError

__all__ = ["ArrivalSpec"]

_KINDS = ("poisson", "constant")


@dataclass(frozen=True)
class ArrivalSpec:
    """One open-loop arrival process, as frozen (picklable) data.

    Rates are expressed per kilocycle of simulated time so specs read
    naturally at simulator scale (``rate_per_kcycle=2.0`` means a mean
    gap of 500 cycles).
    """

    kind: str = "poisson"
    rate_per_kcycle: float = 1.0
    #: Folded into the arrival RNG alongside the run seed, so two
    #: processes in one run can differ while both follow the run seed.
    seed: int = 0
    #: On/off burst modulation: full-rate for ``burst_on_kcycles``, then
    #: gaps stretched by ``burst_slowdown`` for ``burst_off_kcycles``,
    #: repeating.  Both zero (the default) disables modulation.
    burst_on_kcycles: float = 0.0
    burst_off_kcycles: float = 0.0
    burst_slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(f"unknown arrival kind {self.kind!r}; choose from {_KINDS}")
        if self.rate_per_kcycle <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {self.rate_per_kcycle}")
        if self.burst_on_kcycles < 0 or self.burst_off_kcycles < 0:
            raise WorkloadError("burst phase lengths cannot be negative")
        if (self.burst_on_kcycles > 0) != (self.burst_off_kcycles > 0):
            raise WorkloadError("burst modulation needs both on and off phase lengths")
        if self.burst_slowdown < 1.0:
            raise WorkloadError(f"burst slowdown must be >= 1, got {self.burst_slowdown}")

    @property
    def mean_gap_cycles(self) -> float:
        """Mean inter-arrival gap of the unmodulated process, in cycles."""
        return 1000.0 / self.rate_per_kcycle

    @property
    def bursty(self) -> bool:
        return self.burst_on_kcycles > 0 and self.burst_off_kcycles > 0

    def times(self, count: int, seed: int = 0) -> List[float]:
        """The first ``count`` arrival times (cycles, ascending).

        Deterministic in (spec, seed): the derivation never touches
        global RNG state, and times are rounded to millicycles so the
        floats serialise stably.
        """
        if count < 0:
            raise WorkloadError(f"arrival count cannot be negative, got {count}")
        rng = random.Random(seed * 1_000_003 + self.seed)
        mean = self.mean_gap_cycles
        on = self.burst_on_kcycles * 1000.0
        period = on + self.burst_off_kcycles * 1000.0
        bursty = self.bursty
        constant = self.kind == "constant"
        now = 0.0
        out: List[float] = []
        for _ in range(count):
            gap = mean if constant else rng.expovariate(1.0 / mean)
            if bursty and (now % period) >= on:
                gap *= self.burst_slowdown
            now += gap
            out.append(round(now, 3))
        return out

    def expected_horizon_cycles(self, count: int) -> float:
        """Rough end time of a ``count``-arrival schedule (for placing
        fault phases relative to the offered load)."""
        stretch = 1.0
        if self.bursty:
            on, off = self.burst_on_kcycles, self.burst_off_kcycles
            stretch = (on + off * self.burst_slowdown) / (on + off)
        return count * self.mean_gap_cycles * stretch
