"""``python -m repro.traffic`` — serving runs and the CI smoke check.

``run`` executes one open-loop serving scenario (store, mix, arrival
process, pre-store mode, optional crash / degraded-bandwidth fault
phase) and prints the latency/SLO/durability summary; ``--json`` writes
the full ``RunResult`` JSON.  ``smoke`` is the CI gate: a small run with
a crash phase that asserts the p999 and durability fields are present
and that the fast path and reference vocabulary agree byte for byte.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.core.prestore import PrestoreMode
from repro.errors import ReproError
from repro.experiments.common import endorsed_patches
from repro.faults.harness import run_with_faults
from repro.faults.plan import FaultPlan
from repro.sim.bench import PRESETS
from repro.traffic.arrivals import ArrivalSpec
from repro.traffic.serving import ServingWorkload
from repro.workloads.kv.ycsb import YCSBSpec

__all__ = ["main"]


def _build(args: argparse.Namespace) -> ServingWorkload:
    spec = YCSBSpec(
        mix=args.mix,
        num_keys=args.keys,
        operations=args.ops,
        value_size=args.value_size,
    )
    arrival = ArrivalSpec(
        kind=args.kind,
        rate_per_kcycle=args.rate,
        burst_on_kcycles=args.burst_on,
        burst_off_kcycles=args.burst_off,
        burst_slowdown=args.burst_slowdown,
    )
    return ServingWorkload(
        spec=spec,
        clients=args.clients,
        arrival=arrival,
        slo_cycles=args.slo,
        store=args.store,
    )


def _plan(args: argparse.Namespace, workload: ServingWorkload) -> FaultPlan:
    horizon = workload.arrival.expected_horizon_cycles(workload.spec.operations)
    if args.crash_at is not None:
        return FaultPlan.crash_at_cycle(args.crash_at * horizon)
    if args.degraded is not None:
        start, length = args.degraded
        return FaultPlan.degraded_window(
            start * horizon, length * horizon, slowdown=args.degraded_slowdown
        )
    return FaultPlan()


def _run_one(args: argparse.Namespace, streams: Optional[bool] = None) -> dict:
    workload = _build(args)
    mode = PrestoreMode(args.mode)
    report = run_with_faults(
        workload,
        PRESETS[args.machine](),
        _plan(args, workload),
        patches=endorsed_patches(workload, mode),
        seed=args.seed,
        streams=streams,
    )
    return {
        "serving": report.result.extra["serving"],
        "crashed": report.crashed,
        "recovery": report.recovery,
        "degraded_accesses": report.degraded_accesses,
        "result_json": report.result.to_json(),
    }


def _print_summary(doc: dict) -> None:
    s = doc["serving"]

    def fmt(v: object) -> str:
        return f"{v:,.1f}" if isinstance(v, (int, float)) else "-"

    print(
        f"serving: {s['ops_completed']}/{s['ops_scheduled']} ops, "
        f"{s['clients']} clients, store={s['store']}, "
        f"arrival={s['arrival']['kind']}@{s['arrival']['rate_per_kcycle']}/kcycle"
    )
    print(
        f"latency cycles: p50={fmt(s['latency_p50'])} p99={fmt(s['latency_p99'])} "
        f"p999={fmt(s['latency_p999'])} max={fmt(s['latency_max'])}"
    )
    print(
        f"SLO {s['slo_cycles']:g}: {s['slo_violations']} violations "
        f"(rate {s['slo_violation_rate'] if s['slo_violation_rate'] is not None else '-'})"
    )
    print(f"durability: {s['acked_writes']} acked writes", end="")
    if doc["crashed"]:
        rec = doc["recovery"] or {}
        print(f"; CRASHED, lost {rec.get('lost_count', '?')} acked", end="")
    if doc["degraded_accesses"]:
        print(f"; {doc['degraded_accesses']} degraded media accesses", end="")
    print()


def _cmd_run(args: argparse.Namespace) -> int:
    doc = _run_one(args)
    _print_summary(doc)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(doc["result_json"] + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """CI smoke: crash phase under live traffic, field + identity checks."""
    args.crash_at = 0.6
    failures = []
    fast = _run_one(args, streams=True)
    reference = _run_one(args, streams=False)
    _print_summary(fast)
    if fast["result_json"] != reference["result_json"]:
        failures.append("fast-path RunResult JSON differs from reference")
    s = fast["serving"]
    for field in (
        "latency_p50",
        "latency_p99",
        "latency_p999",
        "slo_violations",
        "slo_violation_rate",
        "acked_writes",
    ):
        if s.get(field) is None:
            failures.append(f"serving field {field!r} missing or null")
    if not fast["crashed"]:
        failures.append("crash phase did not fire")
    rec = fast["recovery"] or {}
    for field in ("ok", "acked", "lost_count"):
        if field not in rec:
            failures.append(f"recovery field {field!r} missing")
    if failures:
        for message in failures:
            print(f"SMOKE FAIL: {message}", file=sys.stderr)
        return 1
    print("serve smoke OK: p999 + durability fields present, fast == reference")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", choices=("clht", "masstree"), default="clht")
    parser.add_argument("--mix", default="A", help="YCSB mix (A-D)")
    parser.add_argument("--keys", type=int, default=1024)
    parser.add_argument("--ops", type=int, default=2000)
    parser.add_argument("--value-size", type=int, default=1024)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--kind", choices=("poisson", "constant"), default="poisson")
    parser.add_argument(
        "--rate", type=float, default=0.25, help="arrivals per kilocycle (all clients)"
    )
    parser.add_argument("--burst-on", type=float, default=0.0, metavar="KCYCLES")
    parser.add_argument("--burst-off", type=float, default=0.0, metavar="KCYCLES")
    parser.add_argument("--burst-slowdown", type=float, default=4.0)
    parser.add_argument("--slo", type=float, default=10_000.0, help="SLO in cycles")
    parser.add_argument(
        "--mode", choices=[m.value for m in PrestoreMode], default="clean"
    )
    parser.add_argument("--machine", choices=sorted(PRESETS), default="machine-A")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--crash-at",
        type=float,
        default=None,
        metavar="FRACTION",
        help="crash at this fraction of the expected arrival horizon",
    )
    parser.add_argument(
        "--degraded",
        type=float,
        nargs=2,
        default=None,
        metavar=("START", "LENGTH"),
        help="degraded-bandwidth window as fractions of the horizon",
    )
    parser.add_argument("--degraded-slowdown", type=float, default=4.0)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_p = sub.add_parser("run", help="one serving scenario")
    _add_common(run_p)
    run_p.add_argument("--json", default=None, help="write RunResult JSON here")
    run_p.set_defaults(func=_cmd_run)
    smoke_p = sub.add_parser("smoke", help="CI smoke: crash under traffic")
    _add_common(smoke_p)
    smoke_p.set_defaults(func=_cmd_smoke)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
