"""Traffic generation and serving: open-loop load for the KV stores.

The layer that turns the paper-shaped KV microbenches into a serving
scenario (ROADMAP item 3): seeded open-loop arrival processes
(:class:`ArrivalSpec`), a deterministic multi-client interleaver
compiling per-client YCSB operation streams into arrival-stamped
schedules (:func:`compile_schedule`), and :class:`ServingWorkload`,
which drives a CLHT or Masstree store under that schedule and reports
p50/p99/p999 latency plus SLO-violation accounting through
``RunResult.extra["serving"]`` — composing unchanged with the runner
pool/cache, the stream fast path, and :mod:`repro.faults`
(DESIGN.md §17).
"""

from repro.traffic.arrivals import ArrivalSpec
from repro.traffic.interleave import ServingOp, compile_schedule
from repro.traffic.serving import ServingWorkload, latency_bounds

__all__ = [
    "ArrivalSpec",
    "ServingOp",
    "compile_schedule",
    "ServingWorkload",
    "latency_bounds",
]
