"""repro — reproduction of "Pre-Stores: Proactive Software-guided Movement
of Data Down the Memory Hierarchy" (Wu, Lepers, Zwaenepoel; EuroSys '25).

Public API tour:

* :mod:`repro.core` — the pre-store primitive (``PrestoreOp``,
  ``PrestoreMode``, ``PatchConfig``).
* :mod:`repro.sim` — the memory-hierarchy simulator standing in for the
  paper's Machines A (Xeon + Optane PMEM) and B (Enzian CPU + FPGA).
* :mod:`repro.dirtbuster` — the DirtBuster dynamic-analysis tool
  (sampling, instrumentation, recommendations).
* :mod:`repro.workloads` — the evaluated applications: microbenchmarks,
  a TensorFlow/Eigen-like tensor evaluator, NAS kernels, CLHT and
  Masstree key-value stores under YCSB, and the X9 message-passing
  library.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.core import PrestoreOp
    from repro.sim import machine_a
    from repro.workloads.memapi import Program

    def body(t):
        buf = t.alloc(1 << 16, label="buf")
        yield from t.write_block(buf.base, buf.size)
        yield t.prestore(buf.base, buf.size, PrestoreOp.CLEAN)

    program = Program(machine_a())
    program.spawn(body)
    print(program.run().summary())
"""

from repro._version import __version__
from repro.core import PatchConfig, PatchSite, PrestoreMode, PrestoreOp
from repro.errors import Diagnostic, ReproError, SanitizerError
from repro.sim import machine_a, machine_b_fast, machine_b_slow, machine_dram

__all__ = [
    "Diagnostic",
    "PatchConfig",
    "PatchSite",
    "PrestoreMode",
    "PrestoreOp",
    "ReproError",
    "Sanitizer",
    "SanitizerError",
    "__version__",
    "machine_a",
    "machine_b_fast",
    "machine_b_slow",
    "machine_dram",
    "sanitize",
]


def __getattr__(name: str):
    # ``sanitize`` pulls in the workload layer (which imports this
    # package), so it is resolved lazily — same pattern repro.core uses
    # for AutoTuner.
    if name == "sanitize":
        from repro.sanitize import sanitize

        return sanitize
    if name == "Sanitizer":
        from repro.sanitize import Sanitizer

        return Sanitizer
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
