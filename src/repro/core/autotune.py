"""Automatic pre-store tuning: DirtBuster's "intended usage" as one call.

Section 6.1: "DirtBuster is meant to be executed offline, as an
optimization pass before releasing performance-critical applications."
:class:`AutoTuner` packages that pass: analyse a workload, translate the
per-function advice into the workload's patch sites, measure baseline vs.
patched, and keep the patches only if they actually helped — with the
skip→clean fallback the paper's Fortran ports needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.dirtbuster.runner import DirtBuster, DirtBusterConfig, DirtBusterReport
from repro.errors import AnalysisError
from repro.sim.machine import MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload

__all__ = ["AutoTuneResult", "AutoTuner"]


@dataclass
class AutoTuneResult:
    """Outcome of one optimisation pass."""

    workload: str
    report: DirtBusterReport
    #: The patch configuration that was finally adopted.
    patches: PatchConfig
    #: site name -> adopted mode (empty when nothing was patched).
    adopted: Dict[str, PrestoreMode]
    baseline: RunResult
    #: The patched run (None when nothing was recommended).
    patched: Optional[RunResult]
    #: True when the patches were kept (they helped).
    kept: bool

    @property
    def speedup(self) -> float:
        if self.patched is None:
            return 1.0
        return self.patched.drained_speedup_over(self.baseline)

    def summary(self) -> str:
        if not self.adopted:
            return f"{self.workload}: no pre-store opportunities found"
        sites = ", ".join(f"{s}={m}" for s, m in sorted(self.adopted.items()))
        verdict = "kept" if self.kept else "reverted (no gain)"
        return f"{self.workload}: {sites} -> {self.speedup:.2f}x ({verdict})"


class AutoTuner:
    """Analyse, patch, verify — keep only what measures faster.

    ``allow_skip=False`` applies the paper's Fortran situation: wherever
    DirtBuster says *skip* but non-temporal stores are impractical, the
    recommended fallback (*clean*) is used instead.
    """

    def __init__(
        self,
        dirtbuster: Optional[DirtBuster] = None,
        allow_skip: bool = True,
        min_speedup: float = 1.01,
    ) -> None:
        if min_speedup <= 0:
            raise AnalysisError(f"min_speedup must be positive, got {min_speedup}")
        self.dirtbuster = dirtbuster or DirtBuster()
        self.allow_skip = allow_skip
        self.min_speedup = min_speedup

    # -- advice translation -----------------------------------------------

    def patches_for(self, workload: Workload, report: DirtBusterReport) -> PatchConfig:
        """Map per-function recommendations onto the workload's sites.

        A recommendation applies to a patch site when the site's declared
        function matches the recommendation's function — exactly how a
        developer maps DirtBuster's "function + line" output onto the
        source location to edit.
        """
        config = PatchConfig()
        for site in workload.patch_sites():
            recommendation = report.recommendation_for(site.function)
            if recommendation is None or not recommendation.wants_prestore:
                continue
            mode = recommendation.choice
            if mode is PrestoreMode.SKIP and not self.allow_skip:
                mode = recommendation.fallback or PrestoreMode.CLEAN
            config.set_mode(site.name, mode)
        return config

    # -- the pass -----------------------------------------------------------

    def tune(
        self,
        workload_factory,
        spec: MachineSpec,
        seed: int = 1234,
    ) -> AutoTuneResult:
        """Run the full optimisation pass.

        ``workload_factory`` is a zero-argument callable returning a fresh
        workload instance (runs must not share state).
        """
        probe = workload_factory()
        report = self.dirtbuster.analyze(probe, spec, seed=seed)
        patches = self.patches_for(probe, report)
        adopted = dict(patches.enabled_sites())
        baseline = workload_factory().run(spec, PatchConfig.baseline(), seed=seed).run
        if not adopted:
            return AutoTuneResult(
                workload=probe.name,
                report=report,
                patches=PatchConfig.baseline(),
                adopted={},
                baseline=baseline,
                patched=None,
                kept=False,
            )
        patched = workload_factory().run(spec, patches, seed=seed).run
        kept = patched.drained_speedup_over(baseline) >= self.min_speedup
        return AutoTuneResult(
            workload=probe.name,
            report=report,
            patches=patches if kept else PatchConfig.baseline(),
            adopted=adopted if kept else {},
            baseline=baseline,
            patched=patched,
            kept=kept,
        )
