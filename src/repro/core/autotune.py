"""Automatic pre-store tuning: DirtBuster's "intended usage" as one call.

Section 6.1: "DirtBuster is meant to be executed offline, as an
optimization pass before releasing performance-critical applications."
:class:`AutoTuner` packages that pass: analyse a workload, translate the
per-function advice into the workload's patch sites, measure baseline vs.
patched, and keep the patches only if they actually helped — with the
skip→clean fallback the paper's Fortran ports needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.dirtbuster.runner import DirtBuster, DirtBusterReport
from repro.errors import AnalysisError, Diagnostic
from repro.sim.machine import MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload

__all__ = ["AutoTuneResult", "AutoTuner"]


@dataclass
class AutoTuneResult:
    """Outcome of one optimisation pass."""

    workload: str
    report: DirtBusterReport
    #: The patch configuration that was finally adopted.
    patches: PatchConfig
    #: site name -> adopted mode (empty when nothing was patched).
    adopted: Dict[str, PrestoreMode]
    baseline: RunResult
    #: The patched run (None when nothing was recommended).
    patched: Optional[RunResult]
    #: True when the patches were kept (they helped).
    kept: bool
    #: Findings that vetoed the patches regardless of speedup: sanitizer
    #: diagnostics the patched run added over the baseline (with
    #: ``AutoTuner(sanitize=True)``), or static crash-consistency errors
    #: the candidate configuration added (with ``AutoTuner(crashcheck=True)``
    #: — those reject the patches before the patched run is even spent).
    new_diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Per-candidate timeline aggregates keyed "baseline"/"patched"
    #: (only populated with ``AutoTuner(obs=True)``): mean/peak write
    #: bandwidth, store-buffer occupancy, hit rate, stall totals — the
    #: *why* behind the speedup verdict (see ``Timeline.summary``).
    candidate_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.patched is None:
            return 1.0
        return self.patched.drained_speedup_over(self.baseline)

    def summary(self) -> str:
        if not self.adopted and not self.new_diagnostics:
            return f"{self.workload}: no pre-store opportunities found"
        sites = ", ".join(f"{s}={m}" for s, m in sorted(self.adopted.items()))
        if self.kept:
            verdict = "kept"
        elif self.new_diagnostics:
            verdict = f"reverted ({len(self.new_diagnostics)} new sanitizer finding(s))"
            sites = sites or "candidate patches"
        else:
            verdict = "reverted (no gain)"
        return f"{self.workload}: {sites} -> {self.speedup:.2f}x ({verdict})"


class AutoTuner:
    """Analyse, patch, verify — keep only what measures faster.

    ``allow_skip=False`` applies the paper's Fortran situation: wherever
    DirtBuster says *skip* but non-temporal stores are impractical, the
    recommended fallback (*clean*) is used instead.
    """

    def __init__(
        self,
        dirtbuster: Optional[DirtBuster] = None,
        allow_skip: bool = True,
        min_speedup: float = 1.01,
        sanitize: bool = False,
        obs: bool = False,
        workers: Optional[int] = None,
        crashcheck: bool = False,
    ) -> None:
        if min_speedup <= 0:
            raise AnalysisError(f"min_speedup must be positive, got {min_speedup}")
        self.dirtbuster = dirtbuster or DirtBuster()
        self.allow_skip = allow_skip
        self.min_speedup = min_speedup
        #: Candidate measurement runs (baseline + patched) go through the
        #: :mod:`repro.runner` pool; None inherits the ambient
        #: :func:`~repro.runner.runner_session` (serial without one).
        self.workers = workers
        #: Run both measurement runs under :mod:`repro.sanitize`; candidate
        #: patches introducing diagnostics absent from the baseline are
        #: rejected even when they measure faster (a pre-store that breaks
        #: consistency or recreates the Listing 3 pathology is not a win).
        self.sanitize = sanitize
        #: Run both measurement runs under :mod:`repro.obs`; each
        #: candidate's timeline summary lands in
        #: :attr:`AutoTuneResult.candidate_metrics` and the timelines on
        #: the ``RunResult``\ s, so a rejected patch can be diagnosed.
        self.obs = obs
        #: Statically verify crash consistency (:mod:`repro.crashcheck`)
        #: before measuring: candidate patches whose static report carries
        #: error-severity diagnostics absent from the baseline's are
        #: rejected without spending the patched measurement run at all —
        #: a ``demote`` that drops durability loses before it races.
        self.crashcheck = crashcheck

    # -- advice translation -----------------------------------------------

    def patches_for(self, workload: Workload, report: DirtBusterReport) -> PatchConfig:
        """Map per-function recommendations onto the workload's sites.

        A recommendation applies to a patch site when the site's declared
        function matches the recommendation's function — exactly how a
        developer maps DirtBuster's "function + line" output onto the
        source location to edit.
        """
        config = PatchConfig()
        for site in workload.patch_sites():
            recommendation = report.recommendation_for(site.function)
            if recommendation is None or not recommendation.wants_prestore:
                continue
            mode = recommendation.choice
            if mode is PrestoreMode.SKIP and not self.allow_skip:
                mode = recommendation.fallback or PrestoreMode.CLEAN
            config.set_mode(site.name, mode)
        return config

    # -- the pass -----------------------------------------------------------

    def tune(
        self,
        workload_factory,
        spec: MachineSpec,
        seed: int = 1234,
    ) -> AutoTuneResult:
        """Run the full optimisation pass.

        ``workload_factory`` is a zero-argument callable returning a fresh
        workload instance (runs must not share state).
        """
        from repro.runner import Cell, execute_cells

        probe = workload_factory()
        report = self.dirtbuster.analyze(probe, spec, seed=seed)
        patches = self.patches_for(probe, report)
        adopted = dict(patches.enabled_sites())

        def cell(config: PatchConfig) -> Cell:
            return Cell(
                make_workload=workload_factory,
                spec=spec,
                mode=None,
                seed=seed,
                sanitize=self.sanitize,
                obs=self.obs,
                patches=config,
            )

        gate: List[Diagnostic] = []
        if adopted and self.crashcheck:
            gate = self.crashcheck_gate(workload_factory, spec, patches, seed=seed)

        if not adopted or gate:
            (outcome,) = execute_cells(
                [cell(PatchConfig.baseline())], workers=self.workers, on_error="raise"
            )
            baseline = outcome.result
            return AutoTuneResult(
                workload=probe.name,
                report=report,
                patches=PatchConfig.baseline(),
                adopted={},
                baseline=baseline,
                patched=None,
                kept=False,
                new_diagnostics=gate,
                candidate_metrics=self._candidate_metrics(baseline, None),
            )
        # Baseline and candidate are independent runs: one pool round trip.
        base_out, patched_out = execute_cells(
            [cell(PatchConfig.baseline()), cell(patches)],
            workers=self.workers,
            on_error="raise",
        )
        baseline, patched = base_out.result, patched_out.result
        new_diagnostics = self._new_diagnostics(baseline, patched) if self.sanitize else []
        kept = (
            not new_diagnostics
            and patched.drained_speedup_over(baseline) >= self.min_speedup
        )
        return AutoTuneResult(
            workload=probe.name,
            report=report,
            patches=patches if kept else PatchConfig.baseline(),
            adopted=adopted if kept else {},
            baseline=baseline,
            patched=patched,
            kept=kept,
            new_diagnostics=new_diagnostics,
            candidate_metrics=self._candidate_metrics(baseline, patched),
        )

    def crashcheck_gate(
        self,
        workload_factory,
        spec: MachineSpec,
        patches: PatchConfig,
        seed: int = 1234,
    ) -> List[Diagnostic]:
        """Error-severity crashcheck findings the candidate patches add.

        Statically verifies fresh workload instances under the baseline
        and the candidate configuration; returns the candidate's
        error-severity diagnostics whose (rule, site) key the baseline
        does not already carry.  Any entry vetoes the patches before the
        patched measurement run is spent.
        """
        from repro.crashcheck import check_workload

        base = check_workload(
            workload_factory(), spec, patches=PatchConfig.baseline(), seed=seed
        )
        candidate = check_workload(workload_factory(), spec, patches=patches, seed=seed)
        known = {d.key for d in base.diagnostics}
        return [
            d for d in candidate.diagnostics if d.severity == "error" and d.key not in known
        ]

    @staticmethod
    def _candidate_metrics(
        baseline: RunResult, patched: Optional[RunResult]
    ) -> Dict[str, Dict[str, float]]:
        """Timeline summaries per candidate (empty without ``obs=True``)."""
        metrics: Dict[str, Dict[str, float]] = {}
        if baseline.timeline is not None:
            metrics["baseline"] = baseline.timeline.summary()
        if patched is not None and patched.timeline is not None:
            metrics["patched"] = patched.timeline.summary()
        return metrics

    @staticmethod
    def _new_diagnostics(baseline: RunResult, patched: RunResult) -> List[Diagnostic]:
        """Findings of the patched run whose (rule, site) key is new."""
        known = {d.key for d in baseline.diagnostics}
        return [d for d in patched.diagnostics if d.key not in known]
