"""The paper's primary contribution: the pre-store primitive.

See :mod:`repro.core.prestore` for the operation vocabulary and the
patch-site configuration used to toggle pre-stores per code location.
"""

from repro.core.prestore import (
    CYCLES_PER_PRESTORE,
    PatchConfig,
    PatchSite,
    PrestoreMode,
    PrestoreOp,
)

__all__ = [
    "CYCLES_PER_PRESTORE",
    "AutoTuneResult",
    "AutoTuner",
    "PatchConfig",
    "PatchSite",
    "PrestoreMode",
    "PrestoreOp",
]


def __getattr__(name):
    # AutoTuner pulls in dirtbuster (and transitively workloads); import
    # it lazily to keep `repro.core` free of cycles.
    if name in ("AutoTuner", "AutoTuneResult"):
        from repro.core import autotune

        return getattr(autotune, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
