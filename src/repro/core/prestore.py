"""The pre-store primitive (Section 2 of the paper).

A *pre-store* is the converse of a pre-fetch: an asynchronous,
non-blocking request that the CPU move data *down* the memory hierarchy.
The paper exposes a single function::

    prestore(void *location, size_t size, op_t op)

with two operations:

``demote``
    Move the data down the cache hierarchy (from private CPU buffers or
    the L1 towards a globally visible cache level).  Implemented on x86 by
    ``cldemote`` and on ARM by ``dc cvau``-style instructions.

``clean``
    Write dirty data back from the cache to memory *without* invalidating
    the cached copy.  Implemented on x86 by ``clwb``.

A third strategy, *skipping* the cache with non-temporal stores, is not an
``op`` of the ``prestore`` call: as the paper notes it requires rewriting
the stores themselves.  In this library skipping is represented by
:class:`PrestoreMode` (the per-patch-site configuration knob) and by
non-temporal write events in the simulator.

This module defines the operation vocabulary shared by the simulator, the
workloads, and DirtBuster, plus :class:`PatchSite`/:class:`PatchConfig`:
the software analogue of the paper's "add one pre-store line at this
location" patches, which lets every workload be run unmodified, cleaned,
demoted, or skipped from configuration alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError

__all__ = [
    "PrestoreOp",
    "PrestoreMode",
    "PatchSite",
    "PatchConfig",
    "CYCLES_PER_PRESTORE",
]

#: Cost of issuing one pre-store, in CPU cycles.  Section 5: "cleaning a
#: cache line simply enqueues a cache line in the write combining buffers
#: of the CPU, which takes on average 1 cycle on our machines".
CYCLES_PER_PRESTORE = 1


class PrestoreOp(enum.Enum):
    """Operation argument of ``prestore()`` (paper Section 2)."""

    #: Move data down the cache hierarchy; data stays cached and dirty.
    DEMOTE = "demote"
    #: Write dirty data back to memory; data stays cached, now clean.
    CLEAN = "clean"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PrestoreMode(enum.Enum):
    """How a patch site is compiled: the four variants the paper evaluates.

    ``NONE`` is the unmodified baseline.  ``CLEAN`` and ``DEMOTE`` insert a
    one-line ``prestore`` call.  ``SKIP`` rewrites the stores at the site
    as non-temporal stores that bypass the cache entirely.
    """

    NONE = "none"
    CLEAN = "clean"
    DEMOTE = "demote"
    SKIP = "skip"

    @property
    def op(self) -> Optional[PrestoreOp]:
        """The ``prestore`` op this mode issues, if any.

        ``NONE`` and ``SKIP`` issue no ``prestore`` call (skipping changes
        the stores themselves), so they map to ``None``.
        """
        if self is PrestoreMode.CLEAN:
            return PrestoreOp.CLEAN
        if self is PrestoreMode.DEMOTE:
            return PrestoreOp.DEMOTE
        return None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PatchSite:
    """A named program location where a pre-store can be inserted.

    Mirrors the way the paper patches applications: DirtBuster reports a
    function and line, and the developer toggles a pre-store there.  Each
    workload declares its patchable sites so experiments can enumerate
    them.
    """

    #: Stable identifier, e.g. ``"clht.craft_value"``.
    name: str
    #: Function containing the site, e.g. ``"psinv"``.
    function: str
    #: Source file of the site (as reported in DirtBuster output).
    file: str = "<unknown>"
    #: Source line of the site.
    line: int = 0
    #: Free-form description of what is pre-stored at this site.
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name} ({self.file}:{self.line} in {self.function})"


class PatchConfig:
    """Maps patch sites to :class:`PrestoreMode`.

    A workload consults its :class:`PatchConfig` at each declared
    :class:`PatchSite`; experiments construct one config per evaluated
    variant (baseline / clean / demote / skip).

    >>> cfg = PatchConfig({"clht.craft_value": PrestoreMode.CLEAN})
    >>> cfg.mode("clht.craft_value")
    <PrestoreMode.CLEAN: 'clean'>
    >>> cfg.mode("unpatched.site")
    <PrestoreMode.NONE: 'none'>
    """

    def __init__(
        self,
        modes: Optional[Dict[str, PrestoreMode]] = None,
        default: PrestoreMode = PrestoreMode.NONE,
    ) -> None:
        if not isinstance(default, PrestoreMode):
            raise ConfigurationError(f"default must be a PrestoreMode, got {default!r}")
        self._default = default
        self._modes: Dict[str, PrestoreMode] = {}
        for name, mode in (modes or {}).items():
            self.set_mode(name, mode)

    @classmethod
    def baseline(cls) -> "PatchConfig":
        """The unmodified application: every site compiled as ``NONE``."""
        return cls()

    @classmethod
    def uniform(cls, mode: PrestoreMode) -> "PatchConfig":
        """Apply ``mode`` at every patch site (the common one-knob case)."""
        return cls(default=mode)

    def set_mode(self, site: str, mode: PrestoreMode) -> None:
        """Set the mode for one site (by :attr:`PatchSite.name`)."""
        if not isinstance(mode, PrestoreMode):
            raise ConfigurationError(f"{site}: mode must be a PrestoreMode, got {mode!r}")
        self._modes[site] = mode

    def mode(self, site: str) -> PrestoreMode:
        """The mode configured for ``site`` (default if unset)."""
        return self._modes.get(site, self._default)

    def enabled_sites(self) -> Dict[str, PrestoreMode]:
        """All explicitly configured sites that are not ``NONE``."""
        return {s: m for s, m in self._modes.items() if m is not PrestoreMode.NONE}

    def describe(self, sites: Iterable[PatchSite] = ()) -> str:
        """Human-readable summary, optionally resolving known sites."""
        known = {s.name: s for s in sites}
        lines = [f"default: {self._default}"]
        for name, mode in sorted(self._modes.items()):
            where = f" @ {known[name]}" if name in known else ""
            lines.append(f"{name}: {mode}{where}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatchConfig(default={self._default}, modes={self._modes!r})"
