"""Step 3 output: choosing between demote, clean, skip, or nothing.

Section 6.2.3, "Guiding developers":

* data frequently **rewritten** at very short distance → *no* pre-store:
  "cleaning or skipping the cache would result in unnecessary writes to
  memory (instead of simply being overwritten in the cache, the data
  would be pushed to memory every time)" — the Listing 3 / ``fftz2``
  pathology;
* data re-written (but not that hot) → **demote**: make it visible before
  the fence but keep it cached for the coming rewrite (the X9 case);
* data just re-read → **clean**: start the writeback but keep the cached
  copy for the coming re-read (the TensorFlow / MG ``resid`` case);
* data neither re-read nor re-written → **skip** the cache with
  non-temporal stores, falling back to clean where NT stores are
  impractical (the MG ``psinv`` / key-value-store case).

A function is a candidate at all only if it writes sequentially or its
writes are shortly followed by fences; otherwise DirtBuster stays silent
(the IS ``rank`` case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.prestore import PrestoreMode
from repro.dirtbuster.instrument import FunctionPatterns

__all__ = ["Thresholds", "Recommendation", "Recommender"]


@dataclass(frozen=True)
class Thresholds:
    """Tunable decision thresholds (instruction counts unless noted)."""

    #: Minimum fraction of a function's writes in sequential contexts for
    #: the sequential-writes pattern to fire.
    sequential_share: float = 0.25
    #: A write this close (instructions) to a following fence counts as
    #: "written before a fence".
    fence_distance: float = 300.0
    #: Minimum fraction of writes that must be fence-covered.
    fence_coverage: float = 0.25
    #: Mean rewrite distance below which the data is "frequently
    #: rewritten" and any pre-store would cause needless memory traffic.
    hot_rewrite: float = 1000.0
    #: Mean re-read / rewrite distance below which the data plausibly
    #: still sits in the cache when reused — reuse beyond this horizon is
    #: treated as no reuse.
    reuse_horizon: float = 100_000.0
    #: Ignore functions with fewer writes than this (noise floor).
    min_writes: int = 32


@dataclass
class Recommendation:
    """DirtBuster's verdict for one function."""

    patterns: FunctionPatterns
    choice: PrestoreMode
    rationale: str
    #: For SKIP: note that clean is the fallback when NT stores are
    #: impractical (the paper's Fortran situation).
    fallback: Optional[PrestoreMode] = None

    @property
    def function(self) -> str:
        return self.patterns.function

    @property
    def wants_prestore(self) -> bool:
        return self.choice is not PrestoreMode.NONE


class Recommender:
    """Applies the Section 6.2.3 decision procedure."""

    def __init__(self, thresholds: Optional[Thresholds] = None) -> None:
        self.thresholds = thresholds or Thresholds()

    # -- pattern predicates --------------------------------------------------

    def writes_sequentially(self, p: FunctionPatterns) -> bool:
        return (
            p.total_writes >= self.thresholds.min_writes
            and p.pct_sequential >= self.thresholds.sequential_share
        )

    def writes_before_fence(self, p: FunctionPatterns) -> bool:
        return (
            p.total_writes >= self.thresholds.min_writes
            and p.fences.min_distance <= self.thresholds.fence_distance
            and p.fences.fence_coverage >= self.thresholds.fence_coverage
        )

    # -- the decision ----------------------------------------------------------

    def recommend(self, p: FunctionPatterns) -> Recommendation:
        t = self.thresholds
        sequential = self.writes_sequentially(p)
        fenced = self.writes_before_fence(p)
        if not sequential and not fenced:
            return Recommendation(
                patterns=p,
                choice=PrestoreMode.NONE,
                rationale=(
                    "writes are neither sequential nor shortly followed by a "
                    "fence; a pre-store would have no effect"
                ),
            )
        rewrite = p.mean_rewrite
        reread = p.mean_reread
        if rewrite <= t.hot_rewrite:
            return Recommendation(
                patterns=p,
                choice=PrestoreMode.NONE,
                rationale=(
                    f"data is rewritten every ~{rewrite:.0f} instructions; "
                    "cleaning or skipping would push it to memory on every "
                    "rewrite instead of overwriting it in the cache"
                ),
            )
        if fenced and rewrite <= t.reuse_horizon:
            # Demote only pays off against a fence: it publicises the
            # write early.  Rewritten data with no ordering constraint is
            # served best by leaving the cache alone (the re-read rule
            # below may still fire).
            return Recommendation(
                patterns=p,
                choice=PrestoreMode.DEMOTE,
                rationale=(
                    f"data is re-written (~{rewrite:.0f} instructions apart) "
                    "and written shortly before fences: demote makes it "
                    "visible before the fence while keeping it cached for "
                    "the rewrite"
                ),
            )
        if reread <= t.reuse_horizon:
            return Recommendation(
                patterns=p,
                choice=PrestoreMode.CLEAN,
                rationale=(
                    f"data is re-read (~{reread:.0f} instructions after the "
                    "write): clean starts the writeback but keeps the cached "
                    "copy for the re-read"
                ),
            )
        return Recommendation(
            patterns=p,
            choice=PrestoreMode.SKIP,
            rationale=(
                "data is neither re-read nor re-written: skip the cache with "
                "non-temporal stores (clean if NT stores are impractical)"
            ),
            fallback=PrestoreMode.CLEAN,
        )

    def recommend_all(self, patterns: Sequence[FunctionPatterns]) -> List[Recommendation]:
        return [self.recommend(p) for p in patterns]
