"""Step 1: finding write-intensive functions from access samples.

Section 6.2.1: "DirtBuster relies on perf to sample the loads and stores
performed by an application.  DirtBuster gathers the time of all loads
and stores, their instruction pointer (IP), and a callchain.  The IPs are
then grouped by functions to infer the most write-intensive functions.
DirtBuster also groups the IPs of the callchains, to infer the most
common paths that lead to these functions."

The evaluation additionally filters whole applications: "Some
applications spend less than 10% of their time issuing store
instructions [...] We did not instrument these applications further"
(Section 7.1) — :meth:`SampleProfile.application_write_intensive`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import AnalysisError
from repro.dirtbuster.trace import AccessRecord, SamplingTracer

__all__ = ["FunctionProfile", "SampleProfile", "WRITE_INTENSIVE_APP_THRESHOLD"]

#: Fraction of sampled time that must land on stores for an application
#: to be considered write-intensive (the Section 7.1 filter).  The paper
#: uses 10% on perf profiles of full-scale runs; our scaled simulator
#: compresses store time (much of the writeback cost shifts into the
#: end-of-run drain), and 3% is the calibrated equivalent — it separates
#: the same two groups of applications as the paper's Table 2.
WRITE_INTENSIVE_APP_THRESHOLD = 0.03


@dataclass
class FunctionProfile:
    """Sampled behaviour of one function."""

    function: str
    file: str
    line: int
    loads: int = 0
    stores: int = 0
    #: Atomic RMW samples: counted as store *time* at the application
    #: level, but kept out of :attr:`stores` — the patchable writes live
    #: in the callers, not inside the lock's cmpxchg (Section 6.1).
    atomics: int = 0
    #: Most common callchains leading here (chain of function names -> count).
    callchains: Counter = field(default_factory=Counter)

    @property
    def samples(self) -> int:
        return self.loads + self.stores + self.atomics

    @property
    def store_fraction(self) -> float:
        """Stores as a fraction of this function's samples."""
        return self.stores / self.samples if self.samples else 0.0

    def top_callchains(self, n: int = 3) -> List[Tuple[Tuple[str, ...], int]]:
        """The ``n`` most common call paths into this function."""
        return self.callchains.most_common(n)


class SampleProfile:
    """Aggregated view over one sampling run.

    ``other_samples`` counts timer samples that landed on non-memory work
    (arithmetic, fences): they dilute the store-time share exactly as
    compute-bound phases dilute it under real ``perf`` sampling.
    """

    def __init__(self, samples: Sequence[AccessRecord], other_samples: int = 0) -> None:
        if not samples and not other_samples:
            raise AnalysisError(
                "no samples collected — run longer or lower the sampling period"
            )
        from repro.sim.event import EventKind

        self.other_samples = other_samples
        self.total_samples = len(samples) + other_samples
        self.total_stores = sum(1 for s in samples if s.is_store)
        self._functions: Dict[str, FunctionProfile] = {}
        for sample in samples:
            prof = self._functions.get(sample.function)
            if prof is None:
                prof = FunctionProfile(
                    function=sample.function, file=sample.site.file, line=sample.site.line
                )
                self._functions[sample.function] = prof
            if sample.kind is EventKind.ATOMIC:
                prof.atomics += 1
            elif sample.is_store:
                prof.stores += 1
            else:
                prof.loads += 1
            chain = tuple(site.function for site in sample.callchain)
            prof.callchains[chain] += 1

    @classmethod
    def from_tracer(cls, tracer: SamplingTracer) -> "SampleProfile":
        return cls(tracer.samples, other_samples=tracer.other_samples)

    # -- application-level classification ----------------------------------------

    @property
    def application_store_fraction(self) -> float:
        """Stores as a fraction of all timer samples.

        With cycle-weighted sampling this IS the paper's "% of their time
        issuing store instructions" (Section 7.1): a store that stalls on
        device backpressure accumulates samples, a cheap cached store
        does not.
        """
        return self.total_stores / self.total_samples

    def application_write_intensive(
        self, threshold: float = WRITE_INTENSIVE_APP_THRESHOLD
    ) -> bool:
        """The Section 7.1 filter deciding whether to instrument at all."""
        return self.application_store_fraction >= threshold

    # -- function ranking -------------------------------------------------------

    def functions(self) -> List[FunctionProfile]:
        """All profiled functions, most store samples first."""
        return sorted(self._functions.values(), key=lambda p: p.stores, reverse=True)

    def function(self, name: str) -> FunctionProfile:
        try:
            return self._functions[name]
        except KeyError:
            raise AnalysisError(f"function {name!r} never appeared in the samples") from None

    def write_intensive_functions(
        self, share_of_stores: float = 0.05, top: int = 10
    ) -> List[FunctionProfile]:
        """Functions worth instrumenting in step 2.

        A function qualifies if it contributes at least
        ``share_of_stores`` of the sampled *plain* stores; at most
        ``top`` functions are returned (most stores first).  Atomics are
        excluded from the ranking: their time belongs to lock internals,
        and the patchable writes live in the callers.
        """
        plain_stores = sum(p.stores for p in self._functions.values())
        if plain_stores == 0:
            return []
        chosen = [
            p
            for p in self.functions()
            if p.stores / plain_stores >= share_of_stores and p.stores > 0
        ]
        return chosen[:top]

    def summary(self) -> str:
        """perf-report-style text table."""
        lines = [
            f"{'function':40s} {'stores%':>8s} {'loads':>8s} {'stores':>8s}",
        ]
        for p in self.functions():
            pct = 100.0 * p.stores / self.total_stores if self.total_stores else 0.0
            lines.append(f"{p.function:40s} {pct:7.1f}% {p.loads:8d} {p.stores:8d}")
        return "\n".join(lines)
