"""``dirtbuster``: run the analysis tool on a named workload.

Examples::

    dirtbuster clht --machine a
    dirtbuster nas-mg --machine a --sampling-period 101
    dirtbuster x9 --machine b-fast
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dirtbuster.runner import DirtBuster, DirtBusterConfig
from repro.sim.machine import (
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)
from repro.workloads.registry import WORKLOAD_FACTORIES, make_workload
from repro.workloads.phoronix import PHORONIX_APPS

_MACHINES = {
    "a": machine_a,
    "a-dram": machine_dram,
    "a-cxl": machine_a_cxl,
    "b-fast": machine_b_fast,
    "b-slow": machine_b_slow,
}


def main(argv: Optional[List[str]] = None) -> int:
    known = sorted(WORKLOAD_FACTORIES) + sorted(name for name, _ in PHORONIX_APPS)
    parser = argparse.ArgumentParser(
        prog="dirtbuster",
        description="Find code locations that would benefit from pre-stores.",
    )
    parser.add_argument("workload", nargs="?", help=f"one of: {', '.join(known)}")
    parser.add_argument("--list", action="store_true", help="list known workloads")
    parser.add_argument("--machine", choices=sorted(_MACHINES), default="a")
    parser.add_argument("--sampling-period", type=int, default=229)
    parser.add_argument("--seed", type=int, default=1234)
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(known))
        return 0
    if not args.workload:
        parser.error("give a workload name or --list")

    workload = make_workload(args.workload)
    spec = _MACHINES[args.machine]()
    config = DirtBusterConfig(sampling_period=args.sampling_period)
    report = DirtBuster(config).analyze(workload, spec, seed=args.seed)
    print(report.render())
    print()
    print("Table 2 row:")
    print(f"{'':20s} {'write':>6s} {'seq':>6s} {'fence':>6s}")
    print(report.classification.row())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
