"""Paper-style rendering of DirtBuster's findings.

The target format is the output blocks shown in Section 7, e.g.::

    Eigen::TensorEvaluator<...<op>...>::run()
    Location: <...>/TensorExecutor.h line 272
    Perc. Seq. Writes: 50%
    Size: 16.2MB - 10% - re-read inf - re-write inf
    Size: 240B - 60% - re-read 2 - re-write inf
    Pre-store choice: clean
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.dirtbuster.recommend import Recommendation

__all__ = ["format_size", "format_distance", "render_recommendation", "render_report"]


def format_size(nbytes: int) -> str:
    """1234 -> '1.2KB', 16986931 -> '16.2MB' (paper-style sizes)."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1000 or unit == "GB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")  # pragma: no cover


def format_distance(instructions: float) -> str:
    """2.0 -> '2', 23800.0 -> '23.8K', inf -> 'inf'."""
    if math.isinf(instructions):
        return "inf"
    if instructions >= 1_000_000:
        return f"{instructions / 1_000_000:.1f}M"
    if instructions >= 1_000:
        return f"{instructions / 1_000:.1f}K"
    return f"{instructions:.0f}"


def render_recommendation(rec: Recommendation) -> str:
    """One paper-style output block for one function."""
    p = rec.patterns
    lines = [
        f"{p.function}()",
        f"Location: {p.file} line {p.line}",
        f"Perc. Seq. Writes: {100.0 * p.pct_sequential:.0f}%",
    ]
    for bucket in p.buckets:
        lines.append(
            f"Size: {format_size(bucket.size)} - {100.0 * bucket.share:.0f}% - "
            f"re-read {format_distance(bucket.reread)} - "
            f"re-write {format_distance(bucket.rewrite)}"
        )
    if p.fences.writes_before_fence:
        lines.append(
            f"Writes before fence: min {format_distance(p.fences.min_distance)} instrs "
            f"({100.0 * p.fences.fence_coverage:.0f}% of writes)"
        )
    lines.append(f"Pre-store choice: {rec.choice}")
    if rec.fallback is not None:
        lines.append(f"Fallback: {rec.fallback} (if non-temporal stores are impractical)")
    lines.append(f"Rationale: {rec.rationale}")
    return "\n".join(lines)


def render_report(recommendations: Iterable[Recommendation]) -> str:
    """Concatenated blocks, largest writers first."""
    blocks: List[str] = [render_recommendation(rec) for rec in recommendations]
    return "\n\n".join(blocks)
