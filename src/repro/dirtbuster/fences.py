"""Step 2b: memory-ordering constraint detection.

Section 6.2.2: "To detect memory ordering constraints, DirtBuster
computes the minimum number of instructions between the writes performed
by the write-intensive functions and the next instruction with fence
semantics.  Instructions with fence semantics comprise memory fence
instructions (e.g., mfence, sfence, ...) and the atomic instructions
that force the CPU to order memory accesses (e.g., cmpxchg)."

Distances are per core: a fence only orders the stores of its own
thread.  Writes never followed by a fence on their core contribute to
``writes_without_fence`` (distance "infinite").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["FenceProximity", "FenceTracker"]

#: Cap on pending writes remembered per core; writes further than any
#: plausible "before a fence" window add nothing to the minimum.
_MAX_PENDING = 100_000


@dataclass
class FenceProximity:
    """Write-to-fence distance statistics for one function."""

    function: str
    writes: int = 0
    writes_before_fence: int = 0
    min_distance: float = math.inf
    _sum_distance: float = 0.0

    @property
    def writes_without_fence(self) -> int:
        return self.writes - self.writes_before_fence

    @property
    def mean_distance(self) -> float:
        if self.writes_before_fence == 0:
            return math.inf
        return self._sum_distance / self.writes_before_fence

    @property
    def fence_coverage(self) -> float:
        """Fraction of this function's writes later ordered by a fence."""
        return self.writes_before_fence / self.writes if self.writes else 0.0


class FenceTracker:
    """Streams per-core events and accumulates write→fence distances."""

    def __init__(self) -> None:
        #: core -> [(function, instr_index), ...] writes since last fence.
        self._pending: Dict[int, List[Tuple[str, int]]] = {}
        self._functions: Dict[str, FenceProximity] = {}

    def _prox(self, function: str) -> FenceProximity:
        prox = self._functions.get(function)
        if prox is None:
            prox = FenceProximity(function=function)
            self._functions[function] = prox
        return prox

    def observe_write(self, core_id: int, function: str, instr_index: int) -> None:
        self._prox(function).writes += 1
        pending = self._pending.setdefault(core_id, [])
        pending.append((function, instr_index))
        if len(pending) > _MAX_PENDING:
            del pending[: len(pending) // 2]

    def observe_fence(self, core_id: int, instr_index: int) -> None:
        """A fence-semantics instruction retired on ``core_id``."""
        pending = self._pending.get(core_id)
        if not pending:
            return
        for function, write_index in pending:
            prox = self._prox(function)
            distance = instr_index - write_index
            prox.writes_before_fence += 1
            prox._sum_distance += distance
            if distance < prox.min_distance:
                prox.min_distance = distance
        pending.clear()

    def proximity(self, function: str) -> FenceProximity:
        """Statistics for one function (zeros if it never wrote)."""
        return self._functions.get(function, FenceProximity(function=function))

    def functions(self) -> List[str]:
        return sorted(self._functions)
