"""DirtBuster: the dynamic-analysis tool for placing pre-stores.

Pipeline (paper Figure 6): sampling finds write-intensive functions;
binary instrumentation logs their accesses; sequentiality contexts,
fence proximity, and re-read/re-write distances decide between *demote*,
*clean*, *skip*, or leaving the code alone.
"""

from repro.dirtbuster.btree import BTree
from repro.dirtbuster.contexts import ContextTracker, SequentialitySummary
from repro.dirtbuster.distances import DistanceStats, DistanceTracker
from repro.dirtbuster.export import dump_records, load_records
from repro.dirtbuster.fences import FenceProximity, FenceTracker
from repro.dirtbuster.instrument import FunctionPatterns, Instrumenter
from repro.dirtbuster.recommend import Recommendation, Recommender, Thresholds
from repro.dirtbuster.report import render_recommendation, render_report
from repro.dirtbuster.runner import (
    Classification,
    DirtBuster,
    DirtBusterConfig,
    DirtBusterReport,
)
from repro.dirtbuster.sampling import FunctionProfile, SampleProfile
from repro.dirtbuster.trace import AccessRecord, FullTracer, SamplingTracer

__all__ = [
    "AccessRecord",
    "BTree",
    "Classification",
    "ContextTracker",
    "DirtBuster",
    "DirtBusterConfig",
    "DirtBusterReport",
    "DistanceStats",
    "DistanceTracker",
    "FenceProximity",
    "FenceTracker",
    "FullTracer",
    "FunctionPatterns",
    "FunctionProfile",
    "Instrumenter",
    "Recommendation",
    "Recommender",
    "SampleProfile",
    "SamplingTracer",
    "SequentialitySummary",
    "Thresholds",
    "dump_records",
    "load_records",
    "render_recommendation",
    "render_report",
]
