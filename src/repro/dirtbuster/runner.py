"""DirtBuster end-to-end: sampling run → instrumented run → advice.

This is the tool's public entry point, mirroring Figure 6:

1. run the workload once with the cheap sampling tracer and rank
   write-intensive functions (skipping everything else if the application
   spends <10 % of its accesses storing, as in Section 7.1);
2. run it again fully instrumented on those functions;
3. analyse sequentiality, fence proximity, and re-read/re-write
   distances, and emit one recommendation per function.

The report also carries the three Table 2 classification bits for the
workload (write-intensive / sequential writes / writes before fence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.prestore import PatchConfig
from repro.dirtbuster.instrument import FunctionPatterns, Instrumenter
from repro.dirtbuster.recommend import Recommendation, Recommender, Thresholds
from repro.dirtbuster.report import render_report
from repro.dirtbuster.sampling import SampleProfile, WRITE_INTENSIVE_APP_THRESHOLD
from repro.dirtbuster.trace import FullTracer, SamplingTracer
from repro.sim.machine import MachineSpec
from repro.workloads.base import Workload

__all__ = ["DirtBusterConfig", "Classification", "DirtBusterReport", "DirtBuster"]


@dataclass(frozen=True)
class DirtBusterConfig:
    """Knobs for the three analysis steps."""

    #: Keep one memory-access sample in this many (step 1).
    sampling_period: int = 229
    #: Application-level write-intensity gate (Section 7.1).
    app_store_threshold: float = WRITE_INTENSIVE_APP_THRESHOLD
    #: A function must contribute this share of sampled stores to be
    #: instrumented in step 2.
    function_store_share: float = 0.05
    #: Instrument at most this many functions.
    max_functions: int = 8
    thresholds: Thresholds = field(default_factory=Thresholds)


@dataclass
class Classification:
    """The workload's Table 2 row."""

    workload: str
    write_intensive: bool
    sequential_writes: bool
    writes_before_fence: bool

    def row(self) -> str:
        def mark(flag: bool) -> str:
            return "yes" if flag else "-"

        return (
            f"{self.workload:20s} {mark(self.write_intensive):>6s} "
            f"{mark(self.sequential_writes):>6s} {mark(self.writes_before_fence):>6s}"
        )


@dataclass
class DirtBusterReport:
    """Everything DirtBuster produced for one workload."""

    workload: str
    profile: SampleProfile
    instrumented_functions: List[str]
    patterns: List[FunctionPatterns]
    recommendations: List[Recommendation]
    classification: Classification

    def recommendation_for(self, function: str) -> Optional[Recommendation]:
        for rec in self.recommendations:
            if rec.function == function:
                return rec
        return None

    def suggested_patches(self) -> PatchConfig:
        """A PatchConfig applying every positive recommendation.

        Sites are keyed by function name; workloads that key their patch
        sites differently can translate via their own site tables.
        """
        config = PatchConfig()
        for rec in self.recommendations:
            if rec.wants_prestore:
                config.set_mode(rec.function, rec.choice)
        return config

    def render(self) -> str:
        header = [
            f"DirtBuster report for {self.workload}",
            f"application store share: {100.0 * self.profile.application_store_fraction:.1f}%",
            f"write-intensive: {self.classification.write_intensive}",
        ]
        if not self.classification.write_intensive:
            header.append("application not write-intensive; steps 2-3 skipped")
            return "\n".join(header)
        header.append(f"instrumented functions: {', '.join(self.instrumented_functions)}")
        return "\n".join(header) + "\n\n" + render_report(self.recommendations)


class DirtBuster:
    """The tool: run me on a workload and a machine spec."""

    def __init__(self, config: Optional[DirtBusterConfig] = None) -> None:
        self.config = config or DirtBusterConfig()
        self.recommender = Recommender(self.config.thresholds)

    # -- step 1 ----------------------------------------------------------------

    def sample(self, workload: Workload, spec: MachineSpec, seed: int = 1234) -> SampleProfile:
        """Sampling run (the perf pass)."""
        tracer = SamplingTracer(period=self.config.sampling_period)
        workload.run(spec, patches=PatchConfig.baseline(), tracer=tracer, seed=seed)
        return SampleProfile.from_tracer(tracer)

    # -- steps 2-3 ----------------------------------------------------------------

    def instrument(
        self,
        workload: Workload,
        spec: MachineSpec,
        functions: Sequence[str],
        seed: int = 1234,
    ) -> List[FunctionPatterns]:
        """Instrumented run (the PIN pass) + pattern analysis."""
        tracer = FullTracer(functions=functions)
        workload.run(spec, patches=PatchConfig.baseline(), tracer=tracer, seed=seed)
        instrumenter = Instrumenter(spec.line_size, functions=functions)
        instrumenter.feed(tracer.records)
        return instrumenter.patterns()

    # -- the whole pipeline ------------------------------------------------------

    def analyze(self, workload: Workload, spec: MachineSpec, seed: int = 1234) -> DirtBusterReport:
        """Steps 1-3 end to end."""
        profile = self.sample(workload, spec, seed=seed)
        write_intensive = profile.application_write_intensive(self.config.app_store_threshold)
        if not write_intensive:
            return DirtBusterReport(
                workload=workload.name,
                profile=profile,
                instrumented_functions=[],
                patterns=[],
                recommendations=[],
                classification=Classification(
                    workload=workload.name,
                    write_intensive=False,
                    sequential_writes=False,
                    writes_before_fence=False,
                ),
            )
        candidates = profile.write_intensive_functions(
            share_of_stores=self.config.function_store_share,
            top=self.config.max_functions,
        )
        functions = [c.function for c in candidates]
        patterns = self.instrument(workload, spec, functions, seed=seed)
        # Only report on the functions selected in step 1.
        patterns = [p for p in patterns if p.function in set(functions)]
        recommendations = self.recommender.recommend_all(patterns)
        sequential = any(self.recommender.writes_sequentially(p) for p in patterns)
        fenced = any(self.recommender.writes_before_fence(p) for p in patterns)
        return DirtBusterReport(
            workload=workload.name,
            profile=profile,
            instrumented_functions=functions,
            patterns=patterns,
            recommendations=recommendations,
            classification=Classification(
                workload=workload.name,
                write_intensive=True,
                sequential_writes=sequential,
                writes_before_fence=fenced,
            ),
        )
