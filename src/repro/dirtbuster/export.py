"""Trace export/import: PIN-style access logs as JSON lines.

The paper's workflow separates collection from analysis ("the logs are
analyzed to check if the code writes data sequentially...").  This module
makes that split concrete: a :class:`FullTracer`'s records can be written
to a ``.jsonl`` file and re-loaded later — e.g. to collect once on a slow
full-size run and iterate on analysis thresholds offline.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Union

from repro.dirtbuster.trace import AccessRecord
from repro.errors import TraceError
from repro.sim.event import CodeSite, EventKind

__all__ = ["dump_records", "load_records", "dumps_record", "loads_record"]

_FORMAT_VERSION = 1


def _site_to_obj(site: CodeSite) -> dict:
    return {"fn": site.function, "file": site.file, "line": site.line, "ip": site.ip}


def _site_from_obj(obj: dict) -> CodeSite:
    return CodeSite(
        function=obj["fn"], file=obj.get("file", "<unknown>"), line=obj.get("line", 0),
        ip=obj.get("ip", 0),
    )


def dumps_record(record: AccessRecord) -> str:
    """One record as a compact JSON line."""
    return json.dumps(
        {
            "v": _FORMAT_VERSION,
            "i": record.instr_index,
            "c": record.core_id,
            "k": record.kind.value,
            "a": record.addr,
            "s": record.size,
            "site": _site_to_obj(record.site),
            "chain": [_site_to_obj(s) for s in record.callchain],
        },
        separators=(",", ":"),
    )


def loads_record(line: str) -> AccessRecord:
    """Parse one JSON line back into an :class:`AccessRecord`."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed trace line: {exc}") from exc
    if obj.get("v") != _FORMAT_VERSION:
        raise TraceError(f"unsupported trace format version {obj.get('v')!r}")
    try:
        return AccessRecord(
            instr_index=obj["i"],
            core_id=obj["c"],
            kind=EventKind(obj["k"]),
            addr=obj["a"],
            size=obj["s"],
            site=_site_from_obj(obj["site"]),
            callchain=tuple(_site_from_obj(s) for s in obj.get("chain", ())),
        )
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed trace record: {exc}") from exc


def dump_records(records: Iterable[AccessRecord], destination: Union[str, IO[str]]) -> int:
    """Write records as JSON lines; returns how many were written."""
    own = isinstance(destination, str)
    fh: IO[str] = open(destination, "w") if own else destination  # type: ignore[arg-type]
    try:
        count = 0
        for record in records:
            fh.write(dumps_record(record))
            fh.write("\n")
            count += 1
        return count
    finally:
        if own:
            fh.close()


def load_records(source: Union[str, IO[str]]) -> List[AccessRecord]:
    """Read a JSON-lines trace back into memory (order preserved)."""
    own = isinstance(source, str)
    fh: IO[str] = open(source) if own else source  # type: ignore[arg-type]
    try:
        return [loads_record(line) for line in fh if line.strip()]
    finally:
        if own:
            fh.close()
