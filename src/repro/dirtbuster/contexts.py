"""Step 2a: sequentiality contexts.

Section 6.2.2: "DirtBuster keeps track of multiple 'sequentiality
contexts'.  A 'sequentiality context' is a record of a memory region
(range of virtual address) and the location of the last write within that
region.  When a write is performed, DirtBuster checks if it is adjacent
to the last write performed in any 'context'.  If a context is found, its
metadata is updated, otherwise a new context is created."

The naive same-or-next-line check fails for code that writes temporaries
between sequential writes or interleaves streams to several objects;
per-context last-write tracking handles both, and per-(core, function)
scoping keeps threads from polluting each other's streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import AnalysisError

__all__ = ["SequentialContext", "ContextTracker", "SequentialitySummary", "SizeBucket"]

#: Contexts with at least this many writes count as genuinely sequential;
#: shorter runs are indistinguishable from accidental adjacency.
MIN_SEQUENTIAL_RUN = 4


@dataclass
class SequentialContext:
    """One tracked region of (so far) sequential writes."""

    start: int
    end: int  # one past the last written byte
    writes: int = 1

    @property
    def size(self) -> int:
        return self.end - self.start

    def adjacent(self, addr: int, slack: int) -> bool:
        """Is a write at ``addr`` a continuation of this context?

        Adjacency is *forward only*, with ``slack`` bytes of tolerance to
        absorb alignment padding and small skipped holes (struct tails).
        Rewriting at or before the context's end is not sequential
        progress — it is a rewrite, and treating it as adjacency would
        make Listing 3's hot line look like a sequential stream.
        """
        return self.end <= addr <= self.end + slack

    def extend(self, addr: int, size: int) -> None:
        self.end = max(self.end, addr + size)
        self.writes += 1


@dataclass
class SizeBucket:
    """Aggregated contexts of similar size (one 'Size:' report line)."""

    #: Representative size in bytes (median context size of the bucket).
    size: int
    #: Number of contexts in this bucket.
    contexts: int
    #: Total sequential writes these contexts absorbed.
    writes: int
    #: Share of the function's sequential writes (0..1).
    share: float
    #: The member contexts (used to merge per-context distance stats).
    members: List[SequentialContext] = field(default_factory=list)


@dataclass
class SequentialitySummary:
    """Per-function sequentiality report (step 2 output)."""

    function: str
    total_writes: int
    sequential_writes: int
    contexts: List[SequentialContext]

    @property
    def pct_sequential(self) -> float:
        """Fraction of the function's writes in sequential contexts."""
        if self.total_writes == 0:
            return 0.0
        return self.sequential_writes / self.total_writes

    def size_buckets(self, max_buckets: int = 4) -> List[SizeBucket]:
        """Group sequential contexts by power-of-two size class.

        Returns at most ``max_buckets`` buckets, largest write share
        first — the per-size breakdown of the paper's report ("80% of the
        sequential writes are to regions of size 1KB...").
        """
        sequential = [c for c in self.contexts if c.writes >= MIN_SEQUENTIAL_RUN]
        if not sequential:
            return []
        classes: Dict[int, List[SequentialContext]] = {}
        for ctx in sequential:
            classes.setdefault(max(ctx.size, 1).bit_length(), []).append(ctx)
        total = sum(c.writes for c in sequential)
        buckets = []
        for group in classes.values():
            sizes = sorted(c.size for c in group)
            writes = sum(c.writes for c in group)
            buckets.append(
                SizeBucket(
                    size=sizes[len(sizes) // 2],
                    contexts=len(group),
                    writes=writes,
                    share=writes / total if total else 0.0,
                    members=group,
                )
            )
        buckets.sort(key=lambda b: b.writes, reverse=True)
        return buckets[:max_buckets]


class ContextTracker:
    """Tracks sequentiality contexts for every (core, function) stream.

    As in the paper, the number of contexts is unbounded: "In practice,
    we found that the write-intensive functions perform sequential writes
    on only a few objects."
    """

    def __init__(self, slack: int = 64) -> None:
        if slack < 0:
            raise AnalysisError(f"slack must be non-negative, got {slack}")
        self.slack = slack
        #: (core, function) -> open contexts, most recently extended last.
        self._streams: Dict[Tuple[int, str], List[SequentialContext]] = {}
        #: function -> write count.
        self._write_counts: Dict[str, int] = {}

    def observe_write(self, core_id: int, function: str, addr: int, size: int) -> SequentialContext:
        """Feed one write; returns the context it joined (maybe new)."""
        self._write_counts[function] = self._write_counts.get(function, 0) + 1
        contexts = self._streams.setdefault((core_id, function), [])
        # Scan most-recently-used first: sequential streams keep hitting
        # the same context, so this is O(1) amortised.
        for i in range(len(contexts) - 1, -1, -1):
            ctx = contexts[i]
            if ctx.adjacent(addr, self.slack):
                ctx.extend(addr, size)
                if i != len(contexts) - 1:
                    contexts.append(contexts.pop(i))
                return ctx
        ctx = SequentialContext(start=addr, end=addr + size)
        contexts.append(ctx)
        return ctx

    def summary(self, function: str) -> SequentialitySummary:
        """The sequentiality report for one function (all cores merged)."""
        contexts: List[SequentialContext] = []
        for (core_id, fn), stream in self._streams.items():
            if fn == function:
                contexts.extend(stream)
        total = self._write_counts.get(function, 0)
        sequential = sum(c.writes for c in contexts if c.writes >= MIN_SEQUENTIAL_RUN)
        return SequentialitySummary(
            function=function,
            total_writes=total,
            sequential_writes=sequential,
            contexts=contexts,
        )

    def functions(self) -> List[str]:
        return sorted(self._write_counts)
