"""Trace capture: the sampling and instrumentation front ends.

DirtBuster uses two observation mechanisms (paper Figure 6):

* :class:`SamplingTracer` — the ``perf``-equivalent.  It keeps one memory
  access in every ``period``, with its IP and callchain.  Cheap and
  imprecise: exactly what step 1 needs to rank write-intensive functions,
  and exactly why it cannot compute strides or distances (Section 6.1,
  "sampling one memory access every 10K instructions is too coarse
  grain").
* :class:`FullTracer` — the PIN-equivalent.  It records every load and
  store of the selected functions plus *all* fence-semantics
  instructions, preserving per-core program order.  This is the input to
  steps 2 and 3.

Both implement :class:`repro.sim.machine.Tracer` and attach to a machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.errors import TraceError
from repro.sim.event import CodeSite, Event, EventKind
from repro.sim.machine import Tracer

__all__ = ["AccessRecord", "SamplingTracer", "FullTracer"]


@dataclass(frozen=True)
class AccessRecord:
    """One traced instruction.

    ``instr_index`` is the global retired-instruction counter at the time
    the instruction executed — the unit all DirtBuster distances are
    measured in.
    """

    instr_index: int
    core_id: int
    kind: EventKind
    addr: int
    size: int
    site: CodeSite
    callchain: Tuple[CodeSite, ...]

    @property
    def is_store(self) -> bool:
        return self.kind in (EventKind.WRITE, EventKind.ATOMIC)

    @property
    def is_load(self) -> bool:
        return self.kind is EventKind.READ

    @property
    def has_fence_semantics(self) -> bool:
        return self.kind in (EventKind.FENCE, EventKind.ATOMIC)

    @property
    def function(self) -> str:
        return self.site.function


def _record_of(core_id: int, event: Event, instr_index: int) -> AccessRecord:
    return AccessRecord(
        instr_index=instr_index,
        core_id=core_id,
        kind=event.kind,
        addr=event.addr,
        size=event.size,
        site=event.site,
        callchain=event.callchain,
    )


class SamplingTracer(Tracer):
    """Timer-based sampler: one sample per ``period`` cycles (perf-style).

    Each executed event is weighted by the cycles it consumed, so the
    sampled store share approximates "time spent issuing store
    instructions" — the paper's Section 7.1 metric.  Samples falling on
    compute are counted (they dilute the store share) but carry no
    address; fences and pre-stores are attributed like compute.
    """

    def __init__(self, period: int = 229) -> None:
        if period < 1:
            raise TraceError(f"sampling period must be >= 1, got {period}")
        self.period = period
        self.samples: List[AccessRecord] = []
        #: Samples that landed on non-memory work (compute/fences); they
        #: count towards the time denominator only.
        self.other_samples = 0
        self._countdown: dict = {}

    def record(self, core_id: int, event: Event, instr_index: int, cycles: float) -> None:
        remaining = self._countdown.get(core_id, float(self.period)) - cycles
        hits = 0
        while remaining <= 0:
            hits += 1
            remaining += self.period
        self._countdown[core_id] = remaining
        if not hits:
            return
        if event.is_memory_access:
            for _ in range(hits):
                self.samples.append(_record_of(core_id, event, instr_index))
        else:
            self.other_samples += hits

    def __len__(self) -> int:
        return len(self.samples) + self.other_samples


class FullTracer(Tracer):
    """Record every load/store of selected functions, and every fence.

    ``functions=None`` records everything (the paper's fully instrumented
    mode); otherwise only accesses whose function — or any caller on the
    callchain — is in the set are kept.  Fence-semantics instructions are
    always kept regardless of location, because fences relevant to a
    write-intensive function routinely live in other libraries (Section
    6.1: "the atomic instructions of locks are generally called from the
    pthread library").
    """

    def __init__(self, functions: Optional[Iterable[str]] = None) -> None:
        self.functions: Optional[Set[str]] = set(functions) if functions is not None else None
        self.records: List[AccessRecord] = []

    def _selected(self, event: Event) -> bool:
        if self.functions is None:
            return True
        if event.site.function in self.functions:
            return True
        return any(site.function in self.functions for site in event.callchain)

    def record(self, core_id: int, event: Event, instr_index: int, cycles: float = 0.0) -> None:
        if event.kind is EventKind.COMPUTE:
            return
        if event.has_fence_semantics or (event.is_memory_access and self._selected(event)):
            self.records.append(_record_of(core_id, event, instr_index))
        elif event.kind is EventKind.PRESTORE and self._selected(event):
            self.records.append(_record_of(core_id, event, instr_index))

    def per_core(self) -> dict:
        """Records grouped by core, preserving program order."""
        by_core: dict = {}
        for rec in self.records:
            by_core.setdefault(rec.core_id, []).append(rec)
        return by_core

    def __len__(self) -> int:
        return len(self.records)
