"""An in-memory B-tree map.

Section 6.2.3: "For every monitored sequential context and for every
cache line written before a fence, DirtBuster stores the value of the
counter at the latest recorded read and at the latest recorded write.
The information is currently stored in a B-Tree."

This is that B-tree: an order-``t`` (minimum degree) B-tree mapping
integer-comparable keys to arbitrary values, with insert, lookup, delete,
and ordered iteration.  :mod:`repro.dirtbuster.distances` keys it by
cache-line number.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["BTree"]


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.children: List["_Node"] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTree:
    """An order-``t`` B-tree map (each node holds ``t-1``..``2t-1`` keys).

    >>> tree = BTree(t=2)
    >>> for k in [5, 1, 9, 3]:
    ...     tree[k] = k * 10
    >>> tree[3]
    30
    >>> list(tree.keys())
    [1, 3, 5, 9]
    """

    def __init__(self, t: int = 16) -> None:
        if t < 2:
            raise ConfigurationError(f"B-tree minimum degree must be >= 2, got {t}")
        self.t = t
        self._root = _Node()
        self._size = 0

    # -- lookup ----------------------------------------------------------------

    def _find(self, node: _Node, key: Any) -> Optional[Any]:
        while True:
            i = self._bisect(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.leaf:
                return None
            node = node.children[i]

    @staticmethod
    def _bisect(keys: List[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, key: Any, default: Any = None) -> Any:
        found = self._find(self._root, key)
        return default if found is None else found

    def __getitem__(self, key: Any) -> Any:
        found = self._find(self._root, key)
        if found is None:
            raise KeyError(key)
        return found

    def __contains__(self, key: Any) -> bool:
        return self._find(self._root, key) is not None

    def __len__(self) -> int:
        return self._size

    # -- insert ----------------------------------------------------------------

    def __setitem__(self, key: Any, value: Any) -> None:
        root = self._root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)

    def setdefault(self, key: Any, default: Any) -> Any:
        found = self._find(self._root, key)
        if found is not None:
            return found
        self[key] = default
        return default

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _Node()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            i = self._bisect(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return
            if node.leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self._size += 1
                return
            if len(node.children[i].keys) == 2 * self.t - 1:
                self._split_child(node, i)
                if node.keys[i] == key:
                    node.values[i] = value
                    return
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # -- delete ----------------------------------------------------------------

    def __delitem__(self, key: Any) -> None:
        if not self._delete(self._root, key):
            raise KeyError(key)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        self._size -= 1

    def pop(self, key: Any, default: Any = None) -> Any:
        found = self._find(self._root, key)
        if found is None:
            return default
        del self[key]
        return found

    def _delete(self, node: _Node, key: Any) -> bool:
        t = self.t
        i = self._bisect(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.leaf:
                node.keys.pop(i)
                node.values.pop(i)
                return True
            # Replace with predecessor or successor from a child that can
            # spare a key, else merge.
            if len(node.children[i].keys) >= t:
                pk, pv = self._max_entry(node.children[i])
                node.keys[i], node.values[i] = pk, pv
                return self._delete(node.children[i], pk)
            if len(node.children[i + 1].keys) >= t:
                sk, sv = self._min_entry(node.children[i + 1])
                node.keys[i], node.values[i] = sk, sv
                return self._delete(node.children[i + 1], sk)
            self._merge_children(node, i)
            return self._delete(node.children[i], key)
        if node.leaf:
            return False
        # Ensure the child we descend into has at least t keys.
        child = node.children[i]
        if len(child.keys) < t:
            i = self._rebalance_child(node, i)
            child = node.children[i]
        return self._delete(child, key)

    def _rebalance_child(self, node: _Node, i: int) -> int:
        """Give child ``i`` an extra key (borrow or merge); returns the
        (possibly shifted) child index to descend into."""
        t = self.t
        child = node.children[i]
        if i > 0 and len(node.children[i - 1].keys) >= t:
            left = node.children[i - 1]
            child.keys.insert(0, node.keys[i - 1])
            child.values.insert(0, node.values[i - 1])
            node.keys[i - 1] = left.keys.pop()
            node.values[i - 1] = left.values.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            return i
        if i < len(node.children) - 1 and len(node.children[i + 1].keys) >= t:
            right = node.children[i + 1]
            child.keys.append(node.keys[i])
            child.values.append(node.values[i])
            node.keys[i] = right.keys.pop(0)
            node.values[i] = right.values.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            return i
        if i > 0:
            self._merge_children(node, i - 1)
            return i - 1
        self._merge_children(node, i)
        return i

    def _merge_children(self, node: _Node, i: int) -> None:
        """Merge child ``i``, separator ``i``, and child ``i+1``."""
        left = node.children[i]
        right = node.children.pop(i + 1)
        left.keys.append(node.keys.pop(i))
        left.values.append(node.values.pop(i))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)

    @staticmethod
    def _max_entry(node: _Node) -> Tuple[Any, Any]:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    @staticmethod
    def _min_entry(node: _Node) -> Tuple[Any, Any]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    # -- iteration ----------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs in ascending key order."""
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _Node) -> Iterator[Tuple[Any, Any]]:
        if node.leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._iter_node(node.children[i])
            yield key, node.values[i]
        yield from self._iter_node(node.children[-1])

    def keys(self) -> Iterator[Any]:
        return (k for k, _ in self.items())

    def values(self) -> Iterator[Any]:
        return (v for _, v in self.items())

    def height(self) -> int:
        """Tree height (a root-only tree has height 1)."""
        h, node = 1, self._root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Validate B-tree structure; raises AssertionError on violation.

        Used by property-based tests: keys sorted in every node, child
        counts consistent, key-count bounds respected below the root, and
        all leaves at equal depth.
        """
        depths = set()

        def walk(node: _Node, lo: Any, hi: Any, depth: int, is_root: bool) -> None:
            assert node.keys == sorted(node.keys), "unsorted node"
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= self.t - 1, "underfull node"
            assert len(node.keys) <= 2 * self.t - 1, "overfull node"
            for key in node.keys:
                if lo is not None:
                    assert key > lo, "key below range"
                if hi is not None:
                    assert key < hi, "key above range"
            if node.leaf:
                depths.add(depth)
                return
            assert len(node.children) == len(node.keys) + 1, "child count mismatch"
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                walk(child, bounds[i], bounds[i + 1], depth + 1, False)

        walk(self._root, None, None, 0, True)
        assert len(depths) <= 1, "leaves at unequal depths"
