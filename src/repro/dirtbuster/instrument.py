"""Step 2/3 driver: turn a full trace into per-function access patterns.

The :class:`Instrumenter` replays a :class:`~repro.dirtbuster.trace.FullTracer`
record stream (global execution order, per-core program order preserved)
through the three analyses — sequentiality contexts, fence proximity, and
re-read/re-write distances — and assembles one
:class:`FunctionPatterns` per analysed function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.dirtbuster.contexts import ContextTracker, SequentialitySummary
from repro.dirtbuster.distances import DistanceStats, DistanceTracker
from repro.dirtbuster.fences import FenceProximity, FenceTracker
from repro.dirtbuster.trace import AccessRecord
from repro.errors import AnalysisError
from repro.sim.event import EventKind

__all__ = ["BucketRow", "FunctionPatterns", "Instrumenter"]


@dataclass
class BucketRow:
    """One "Size:" line of the paper's report format."""

    #: Representative region size in bytes.
    size: int
    #: Share of the function's sequential writes in this bucket (0..1).
    share: float
    #: Mean write-to-first-re-read distance, instructions (inf = never).
    reread: float
    #: Mean rewrite distance, instructions (inf = never).
    rewrite: float


@dataclass
class FunctionPatterns:
    """Everything DirtBuster learned about one function's writes."""

    function: str
    file: str
    line: int
    sequentiality: SequentialitySummary
    fences: FenceProximity
    distances: DistanceStats
    buckets: List[BucketRow] = field(default_factory=list)

    @property
    def total_writes(self) -> int:
        return self.sequentiality.total_writes

    @property
    def pct_sequential(self) -> float:
        return self.sequentiality.pct_sequential

    @property
    def mean_reread(self) -> float:
        return self.distances.mean_reread_distance

    @property
    def mean_rewrite(self) -> float:
        return self.distances.mean_rewrite_distance


class Instrumenter:
    """Replays a full trace through the step-2/3 analyses."""

    def __init__(self, line_size: int, functions: Optional[Iterable[str]] = None) -> None:
        if line_size <= 0:
            raise AnalysisError(f"line size must be positive, got {line_size}")
        self.line_size = line_size
        self.functions: Optional[Set[str]] = set(functions) if functions is not None else None
        # Exact adjacency: a write continues a context only when it starts
        # where the previous one ended.  A slack would let dense random
        # writers (IS's bucket histogram) masquerade as sequential.
        self.contexts = ContextTracker(slack=0)
        self.fences = FenceTracker()
        self.distances = DistanceTracker(line_size, slack=0)
        self._sites: Dict[str, tuple] = {}

    def _selected(self, record: AccessRecord) -> bool:
        if self.functions is None:
            return True
        if record.function in self.functions:
            return True
        return any(site.function in self.functions for site in record.callchain)

    def _attribute_to(self, record: AccessRecord) -> str:
        """The instrumented function a record belongs to.

        Writes routinely happen inside generic helpers (memcpy-alikes);
        perf callchains let DirtBuster attribute them to the instrumented
        caller, which is where the patch will go (Section 6.2.1).
        """
        if self.functions is None or record.function in self.functions:
            return record.function
        for site in reversed(record.callchain):
            if site.function in self.functions:
                return site.function
        return record.function

    def feed(self, records: Sequence[AccessRecord]) -> None:
        """Consume trace records (must be in execution order)."""
        for rec in records:
            if rec.has_fence_semantics:
                # Atomics both order (fence semantics) and write.
                self.fences.observe_fence(rec.core_id, rec.instr_index)
                continue
            if not self._selected(rec):
                continue
            function = self._attribute_to(rec)
            if rec.kind is EventKind.WRITE:
                if function not in self._sites:
                    owner = rec.site if rec.function == function else next(
                        (s for s in rec.callchain if s.function == function), rec.site
                    )
                    self._sites[function] = (owner.file, owner.line)
                ctx = self.contexts.observe_write(rec.core_id, function, rec.addr, rec.size)
                self.fences.observe_write(rec.core_id, function, rec.instr_index)
                self.distances.observe_write(
                    rec.core_id, function, rec.addr, rec.size, rec.instr_index, context=ctx
                )
            elif rec.kind is EventKind.READ:
                self.distances.observe_read(rec.core_id, rec.addr, rec.size, rec.instr_index)

    def patterns(self) -> List[FunctionPatterns]:
        """One :class:`FunctionPatterns` per function that wrote data."""
        results = []
        for function in self.contexts.functions():
            summary = self.contexts.summary(function)
            buckets = []
            for bucket in summary.size_buckets():
                merged = self.distances.merged_context_stats(bucket.members)
                buckets.append(
                    BucketRow(
                        size=bucket.size,
                        share=bucket.share,
                        reread=merged.mean_reread_distance,
                        rewrite=merged.mean_rewrite_distance,
                    )
                )
            file, line = self._sites.get(function, ("<unknown>", 0))
            results.append(
                FunctionPatterns(
                    function=function,
                    file=file,
                    line=line,
                    sequentiality=summary,
                    fences=self.fences.proximity(function),
                    distances=self.distances.stats(function),
                    buckets=buckets,
                )
            )
        results.sort(key=lambda p: p.total_writes, reverse=True)
        return results
