"""Step 3: re-read and re-write distances, stored in a B-tree.

Section 6.2.3: "DirtBuster computes the re-read and re-write distance of
every cache line accessed by the write-intensive functions.  [...]  For
every monitored sequential context and for every cache line written
before a fence, DirtBuster stores the value of the counter at the latest
recorded read and at the latest recorded write.  The information is
currently stored in a B-Tree."

Definitions (paper):

* re-write distance — average number of instructions between two
  consecutive writes to the same cache line, with the *streak exception*:
  "to prevent categorizing sequential writes as multiple rewritings of
  the same context, DirtBuster updates the rewrite distance only when a
  write breaks a streak of sequential accesses";
* re-read distance — average number of instructions between a read from
  a cache line and the preceding write to that line.  Only the first read
  after each write samples, so a read-side loop cannot inflate it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.dirtbuster.btree import BTree

__all__ = ["DistanceStats", "DistanceTracker"]


class _LineInfo:
    """Per-cache-line record kept in the B-tree."""

    __slots__ = ("last_write", "function", "context", "await_first_read")

    def __init__(self, last_write: int, function: str, context: object) -> None:
        self.last_write = last_write
        self.function = function
        #: The sequentiality context the last write belonged to (opaque).
        self.context = context
        #: True until the first read after the last write samples.
        self.await_first_read = True


@dataclass
class DistanceStats:
    """Aggregated distances for one function's written lines."""

    function: str
    rewrite_samples: int = 0
    rewrite_sum: float = 0.0
    reread_samples: int = 0
    reread_sum: float = 0.0
    lines_written: int = 0

    @property
    def mean_rewrite_distance(self) -> float:
        """Average instructions between rewrites (inf = never rewritten)."""
        if self.rewrite_samples == 0:
            return math.inf
        return self.rewrite_sum / self.rewrite_samples

    @property
    def mean_reread_distance(self) -> float:
        """Average instructions from write to first re-read (inf = never)."""
        if self.reread_samples == 0:
            return math.inf
        return self.reread_sum / self.reread_samples


class DistanceTracker:
    """Tracks per-line access history and per-function distance stats."""

    def __init__(self, line_size: int, slack: Optional[int] = None) -> None:
        self.line_size = line_size
        self.slack = line_size if slack is None else slack
        self._lines: BTree = BTree(t=32)
        self._functions: Dict[str, DistanceStats] = {}
        #: id(context) -> DistanceStats for the per-size-bucket report.
        self._contexts: Dict[int, DistanceStats] = {}
        #: core -> end address of its previous write (streak detection).
        self._last_write_end: Dict[int, int] = {}

    def _stats(self, function: str) -> DistanceStats:
        stats = self._functions.get(function)
        if stats is None:
            stats = DistanceStats(function=function)
            self._functions[function] = stats
        return stats

    def _ctx_stats(self, context: object) -> Optional[DistanceStats]:
        if context is None:
            return None
        stats = self._contexts.get(id(context))
        if stats is None:
            stats = DistanceStats(function="<context>")
            self._contexts[id(context)] = stats
        return stats

    def observe_write(
        self,
        core_id: int,
        function: str,
        addr: int,
        size: int,
        instr_index: int,
        context: object = None,
    ) -> None:
        prev_end = self._last_write_end.get(core_id)
        # Streaks are *forward only*: a write at or just past the previous
        # write's end continues a sequential sweep.  Rewriting at or
        # before the previous address is a genuine rewrite and must
        # sample the distance (otherwise Listing 3's hot line would look
        # never-rewritten).
        streak = prev_end is not None and prev_end <= addr <= prev_end + self.slack
        self._last_write_end[core_id] = addr + size
        first = addr // self.line_size
        last = (addr + size - 1) // self.line_size
        for line in range(first, last + 1):
            info: Optional[_LineInfo] = self._lines.get(line)
            if info is None:
                self._stats(function).lines_written += 1
                self._lines[line] = _LineInfo(instr_index, function, context)
                continue
            if not streak:
                distance = instr_index - info.last_write
                stats = self._stats(info.function)
                stats.rewrite_samples += 1
                stats.rewrite_sum += distance
                ctx_stats = self._ctx_stats(info.context)
                if ctx_stats is not None:
                    ctx_stats.rewrite_samples += 1
                    ctx_stats.rewrite_sum += distance
            info.last_write = instr_index
            info.function = function
            info.context = context
            info.await_first_read = True

    def observe_read(self, core_id: int, addr: int, size: int, instr_index: int) -> None:
        first = addr // self.line_size
        last = (addr + size - 1) // self.line_size
        for line in range(first, last + 1):
            info: Optional[_LineInfo] = self._lines.get(line)
            if info is None or not info.await_first_read:
                continue
            distance = instr_index - info.last_write
            stats = self._stats(info.function)
            stats.reread_samples += 1
            stats.reread_sum += distance
            ctx_stats = self._ctx_stats(info.context)
            if ctx_stats is not None:
                ctx_stats.reread_samples += 1
                ctx_stats.reread_sum += distance
            info.await_first_read = False

    def stats(self, function: str) -> DistanceStats:
        """Distance statistics for lines written by ``function``."""
        return self._functions.get(function, DistanceStats(function=function))

    def context_stats(self, context: object) -> DistanceStats:
        """Distance statistics for lines last written under ``context``."""
        return self._contexts.get(id(context), DistanceStats(function="<context>"))

    def merged_context_stats(self, contexts: "list") -> DistanceStats:
        """Merge per-context stats (one size bucket's distance figures)."""
        merged = DistanceStats(function="<bucket>")
        for ctx in contexts:
            stats = self._contexts.get(id(ctx))
            if stats is None:
                continue
            merged.rewrite_samples += stats.rewrite_samples
            merged.rewrite_sum += stats.rewrite_sum
            merged.reread_samples += stats.reread_samples
            merged.reread_sum += stats.reread_sum
        return merged

    @property
    def tracked_lines(self) -> int:
        return len(self._lines)
