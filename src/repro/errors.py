"""Exception hierarchy for the pre-stores reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.

This module also hosts the :class:`Diagnostic` record shared by every
:mod:`repro.sanitize` pass.  It lives here (rather than in the sanitizer
package) because it must be importable from anywhere — including the
simulator and the workload layer — without creating import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Diagnostic severities, most severe first (the sort order reports use).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding emitted by a :mod:`repro.sanitize` pass.

    ``rule`` is a stable dotted identifier (``"race.visibility"``,
    ``"prestore.hot-rewrite"``, ``"static.dropped-event"``); ``site`` and
    ``related`` carry :class:`~repro.sim.event.CodeSite` provenance (typed
    loosely to keep this module dependency-free).  ``count`` aggregates
    repeated occurrences of the same (rule, site) pair.
    """

    rule: str
    severity: str
    message: str
    #: Primary program location (a CodeSite, or None for file-level findings).
    site: Optional[object] = None
    #: Other involved locations, e.g. the racing partner access.
    related: Tuple[object, ...] = ()
    #: Example byte address, cache line, and executing core (dynamic passes).
    addr: Optional[int] = None
    cache_line: Optional[int] = None
    core_id: Optional[int] = None
    #: Retired-instruction index of the first occurrence.
    instr_index: Optional[int] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"diagnostic severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        """Stable identity for cross-run comparison (rule + primary site)."""
        return (self.rule, str(self.site) if self.site is not None else "")

    # -- serialisation ------------------------------------------------------

    @staticmethod
    def _site_to_dict(site: Optional[object]) -> Optional[dict]:
        """CodeSite -> plain dict (duck-typed: this module stays cycle-free)."""
        if site is None:
            return None
        return {
            "function": getattr(site, "function", str(site)),
            "file": getattr(site, "file", "<unknown>"),
            "line": getattr(site, "line", 0),
            "ip": getattr(site, "ip", 0),
        }

    @staticmethod
    def _site_from_dict(d: Optional[dict]) -> Optional[object]:
        if d is None:
            return None
        from repro.sim.event import CodeSite  # deferred: avoids import cycle

        return CodeSite(
            function=d["function"], file=d["file"], line=d["line"], ip=d["ip"]
        )

    def to_dict(self) -> dict:
        """Plain-data view for JSON archiving (see ``RunResult.to_json``)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "site": self._site_to_dict(self.site),
            "related": [self._site_to_dict(s) for s in self.related],
            "addr": self.addr,
            "cache_line": self.cache_line,
            "core_id": self.core_id,
            "instr_index": self.instr_index,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Diagnostic":
        data = dict(d)
        data["site"] = cls._site_from_dict(data.get("site"))
        data["related"] = tuple(
            cls._site_from_dict(s) for s in data.get("related", ())
        )
        return cls(**data)

    def format(self) -> str:
        """One human-readable line: ``severity rule: message [at site]``."""
        where = f" at {self.site}" if self.site is not None else ""
        times = f" ({self.count}x)" if self.count > 1 else ""
        return f"{self.severity}: {self.rule}: {self.message}{where}{times}"


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A machine, cache, device, or workload was configured inconsistently.

    Examples: a cache whose size is not divisible by ``ways * line_size``,
    a device with non-positive bandwidth, or a workload asked to run on
    more cores than the machine has.
    """


class SimulationError(ReproError):
    """The simulator reached an impossible state.

    This always indicates a bug in the simulator (or a corrupted event
    stream), never a user mistake; it is the moral equivalent of a failed
    internal assertion.
    """


class AllocationError(ReproError):
    """The simulated address space could not satisfy an allocation."""


class TraceError(ReproError):
    """A DirtBuster trace was malformed or used out of order."""


class AnalysisError(ReproError):
    """A DirtBuster analysis step was invoked on unsuitable input."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment failed to produce the data it promised."""


class RunnerError(ReproError):
    """The execution layer (pool, cache, cell scheduling) failed."""


class CellExecutionError(RunnerError):
    """One or more cells of a sweep failed (``on_error="raise"``).

    Carries the *complete* outcome list — every successful cell's result
    is still there, so a caller that catches this loses nothing but the
    failed cells themselves.  Outcomes are typed loosely to keep this
    module import-free; they are :class:`repro.runner.CellOutcome`.
    """

    def __init__(self, message: str, outcomes: Tuple[object, ...] = ()) -> None:
        self.outcomes = tuple(outcomes)
        super().__init__(message)


class SanitizerError(ReproError):
    """A sanitizer pass found error-severity diagnostics.

    Carries the offending :class:`Diagnostic` list so callers can render
    the full report rather than just the summary message.
    """

    def __init__(self, diagnostics: Tuple[Diagnostic, ...] = (), message: str = "") -> None:
        self.diagnostics = tuple(diagnostics)
        errors = sum(1 for d in self.diagnostics if d.severity == "error")
        summary = message or (
            f"sanitizer found {errors} error diagnostic(s) "
            f"({len(self.diagnostics)} total)"
        )
        super().__init__(summary)
