"""Exception hierarchy for the pre-stores reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A machine, cache, device, or workload was configured inconsistently.

    Examples: a cache whose size is not divisible by ``ways * line_size``,
    a device with non-positive bandwidth, or a workload asked to run on
    more cores than the machine has.
    """


class SimulationError(ReproError):
    """The simulator reached an impossible state.

    This always indicates a bug in the simulator (or a corrupted event
    stream), never a user mistake; it is the moral equivalent of a failed
    internal assertion.
    """


class AllocationError(ReproError):
    """The simulated address space could not satisfy an allocation."""


class TraceError(ReproError):
    """A DirtBuster trace was malformed or used out of order."""


class AnalysisError(ReproError):
    """A DirtBuster analysis step was invoked on unsuitable input."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment failed to produce the data it promised."""
