"""repro.crashcheck — static crash-consistency verification (DESIGN.md §13).

Where :mod:`repro.faults` *samples* crash points by injecting them into
a simulated run, this package *enumerates* them: it extracts a
workload's event stream symbolically (:mod:`extract`), builds the
persist happens-before model over it (:mod:`hb`), classifies every
acknowledgement at every crash boundary (:mod:`verify`), and
differentially checks itself against dynamic fault injection in both
directions (:mod:`crossval`).
"""

from repro.crashcheck.crossval import cross_validate
from repro.crashcheck.extract import AckPoint, ProgramIR, SymbolicOp, extract_ir
from repro.crashcheck.hb import PersistModel
from repro.crashcheck.verify import (
    AckClassification,
    CrashCheckReport,
    check_workload,
    classify,
    patches_for,
)

__all__ = [
    "AckClassification",
    "AckPoint",
    "CrashCheckReport",
    "PersistModel",
    "ProgramIR",
    "SymbolicOp",
    "check_workload",
    "classify",
    "cross_validate",
    "extract_ir",
    "patches_for",
]
