"""``python -m repro.crashcheck``: static crash-consistency verification.

Examples::

    # Statically verify the unsafe baseline on machine A:
    python -m repro.crashcheck report --workload kvpersist --mode none

    # One static<->dynamic differential as JSON:
    python -m repro.crashcheck crossval --workload logappend --mode clean \\
        --machine b-slow --no-adr

    # The CI self-check: static expectations plus the full differential
    # matrix on machine presets A and B-slow, ADR and media-only, with
    # pre-store protocols off and on:
    python -m repro.crashcheck self
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.core.prestore import PrestoreMode
from repro.crashcheck.crossval import cross_validate
from repro.crashcheck.verify import GUARANTEED, POSSIBLY_LOST, check_workload, patches_for
from repro.faults.workloads import KVPersistWorkload, LogAppendWorkload
from repro.sanitize.report import render_report
from repro.sim.machine import (
    MachineSpec,
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)
from repro.workloads.base import Workload

__all__ = ["main", "run_self_check"]

MACHINES: Dict[str, Callable[[], MachineSpec]] = {
    "a": machine_a,
    "a-cxl": machine_a_cxl,
    "dram": machine_dram,
    "b-fast": machine_b_fast,
    "b-slow": machine_b_slow,
}

WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "kvpersist": KVPersistWorkload,
    "logappend": LogAppendWorkload,
}

#: Shrunk instances for the self-check matrix: enough operations to
#: exercise rewrites and combiner churn, small enough to stay fast.
_SMALL_WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "kvpersist": lambda: KVPersistWorkload(keys=16, value_size=256, operations=24),
    "logappend": lambda: LogAppendWorkload(record_size=256, records=24),
}


def _build_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(f"unknown workload {name!r} (expected one of {sorted(WORKLOADS)})")


def _cmd_report(args: argparse.Namespace) -> int:
    workload = _build_workload(args.workload)
    spec = MACHINES[args.machine]()
    mode = PrestoreMode(args.mode)
    report = check_workload(
        workload,
        spec,
        patches=patches_for(workload, mode),
        adr=not args.no_adr,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 1 if report.has_errors() else 0
    counts = report.counts()
    domain = "ADR" if report.adr else "media-only"
    print(
        f"{report.workload} on {report.machine} ({report.patch_summary}, {domain}): "
        f"{len(report.acks)} acks over {report.instr_total} instructions"
    )
    print(
        f"  guaranteed-durable: {counts[GUARANTEED]}   "
        f"possibly-lost: {counts[POSSIBLY_LOST]}   "
        f"ordering-violated: {counts['ordering-violated']}"
    )
    vulnerable = report.vulnerable()
    if vulnerable:
        first = vulnerable[0]
        end = "end" if first.window is None or first.window[1] is None else first.window[1]
        print(
            f"  first vulnerable window: ack #{first.index} ({first.key}) "
            f"[{first.boundary}, {end})"
        )
    print()
    print(render_report(report.diagnostics))
    return 1 if report.has_errors() else 0


def _cmd_crossval(args: argparse.Namespace) -> int:
    spec = MACHINES[args.machine]()
    mode = PrestoreMode(args.mode)
    factory = WORKLOADS[args.workload] if args.workload in WORKLOADS else None
    if factory is None:
        raise SystemExit(f"unknown workload {args.workload!r} (expected one of {sorted(WORKLOADS)})")
    result = cross_validate(
        factory,
        spec,
        mode=mode,
        adr=not args.no_adr,
        seed=args.seed,
        max_probes=args.max_probes,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["ok"] else 1


#: Static expectations per mode in the ADR domain: which status every
#: ack of the small matrix workloads must get.
_EXPECTED_STATUS = {
    PrestoreMode.NONE: POSSIBLY_LOST,
    PrestoreMode.CLEAN: GUARANTEED,
    PrestoreMode.DEMOTE: POSSIBLY_LOST,
    PrestoreMode.SKIP: GUARANTEED,
}

_EXPECTED_ERROR_RULE = {
    PrestoreMode.NONE: "crashcheck.acked-before-persist",
    PrestoreMode.DEMOTE: "crashcheck.missing-clwb",
}


def run_self_check(fast: bool = False, seed: int = 1234) -> int:
    """Static expectations + the static<->dynamic differential matrix.

    ``fast`` runs a single-machine subset (used by ``python -m
    repro.sanitize --self``); the full matrix covers machines A and
    B-slow, both workloads, both persistence domains, and pre-store
    modes off and on.  Returns a process exit code.
    """
    failures: List[str] = []
    checks = 0

    def check(label: str, ok: bool) -> None:
        nonlocal checks
        checks += 1
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {label}")
        if not ok:
            failures.append(label)

    if fast:
        configs = [
            ("a", "kvpersist", mode, True)
            for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN, PrestoreMode.DEMOTE)
        ]
        max_probes: Optional[int] = 3
        fractions = (0.5,)
    else:
        configs = [
            (machine_key, workload_name, mode, adr)
            for machine_key in ("a", "b-slow")
            for workload_name in sorted(_SMALL_WORKLOADS)
            for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN)
            for adr in (True, False)
        ]
        configs += [
            ("a", workload_name, mode, True)
            for workload_name in sorted(_SMALL_WORKLOADS)
            for mode in (PrestoreMode.DEMOTE, PrestoreMode.SKIP)
        ]
        max_probes = 4
        fractions = (0.3, 0.7)

    for machine_key, workload_name, mode, adr in configs:
        factory = _SMALL_WORKLOADS[workload_name]
        spec = MACHINES[machine_key]()
        domain = "adr" if adr else "media-only"
        print(f"{workload_name} on {machine_key} (mode={mode.value}, {domain}):")

        # Static expectations: the protocol's known classification.
        static = check_workload(
            factory(), spec, patches=patches_for(factory(), mode), adr=adr, seed=seed
        )
        counts = static.counts()
        expected = _EXPECTED_STATUS[mode] if adr else POSSIBLY_LOST
        check(
            f"static: all {len(static.acks)} acks {expected}",
            len(static.acks) > 0 and counts[expected] == len(static.acks),
        )
        if adr and mode in _EXPECTED_ERROR_RULE:
            rule = _EXPECTED_ERROR_RULE[mode]
            check(
                f"static: {rule} reported",
                any(d.rule == rule and d.severity == "error" for d in static.diagnostics),
            )
        if adr and mode in (PrestoreMode.CLEAN, PrestoreMode.SKIP):
            check(
                "static: protocol raises no errors",
                not static.has_errors(),
            )

        # The differential: both directions, alignment riding along.
        result = cross_validate(
            factory,
            spec,
            mode=mode,
            adr=adr,
            seed=seed,
            max_probes=max_probes,
            fractions=fractions,
        )
        check(
            f"differential ok ({result['probes']} probes, "
            f"{result['dynamic_runs']} dynamic runs)",
            bool(result["ok"]),
        )
        for mismatch in result["mismatches"]:
            print(f"    mismatch: {mismatch}")

    print(f"{checks} checks, {len(failures)} failures")
    if failures:
        for name in failures:
            print(f"FAILED: {name}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crashcheck",
        description="Static crash-consistency verifier over the event IR.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="static verification report for one config")
    report.add_argument("--workload", default="kvpersist", help=f"one of {sorted(WORKLOADS)}")
    report.add_argument("--machine", default="a", choices=sorted(MACHINES))
    report.add_argument("--mode", default="none", choices=[m.value for m in PrestoreMode])
    report.add_argument("--no-adr", action="store_true", help="media-only persistence domain")
    report.add_argument("--seed", type=int, default=1234)
    report.add_argument("--json", action="store_true", help="emit the full report as JSON")

    crossval = sub.add_parser("crossval", help="one static<->dynamic differential, JSON out")
    crossval.add_argument("--workload", default="kvpersist", help=f"one of {sorted(WORKLOADS)}")
    crossval.add_argument("--machine", default="a", choices=sorted(MACHINES))
    crossval.add_argument("--mode", default="none", choices=[m.value for m in PrestoreMode])
    crossval.add_argument("--no-adr", action="store_true")
    crossval.add_argument("--seed", type=int, default=1234)
    crossval.add_argument("--max-probes", type=int, default=6)

    selfcheck = sub.add_parser("self", help="static + differential self-check (the CI job)")
    selfcheck.add_argument("--seed", type=int, default=1234)
    selfcheck.add_argument("--fast", action="store_true", help="single-machine subset")

    args = parser.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "crossval":
        return _cmd_crossval(args)
    return run_self_check(fast=args.fast, seed=args.seed)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
