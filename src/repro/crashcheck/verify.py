"""The crash-point enumerator: classify every ack at every boundary.

For each acknowledgement in the extracted stream the verifier computes
its *vulnerable window* — the half-open instruction-index interval
``[boundary, end)`` in which a crash loses acked data — and classifies:

``guaranteed-durable``
    Every line's required version was accepted by the device at or
    before the ack boundary, and a full fence orders each persist op
    before the ack.  No crash point anywhere loses this record (ADR).

``ordering-violated``
    Durable in the simulator (whose clwb writeback is synchronous) but
    only by accident of that model: some persist op has no full fence
    between it and the ack, so on real hardware — where clwb is
    asynchronous until fenced — the ack races its own persist.
    Reported as a warning (``crashcheck.missing-fence`` or
    ``crashcheck.fence-scope-too-narrow``); excluded from the
    dynamic-reproduction direction of cross-validation because the
    simulator cannot lose it.

``possibly-lost``
    A crash inside the window leaves the record non-durable.  Rule
    ``crashcheck.acked-before-persist`` when no persist op covers the
    record's lines before the ack (the unsafe baseline), else
    ``crashcheck.missing-clwb`` (demote-only or stale/partial persist).

Under a media-only domain (``adr=False``) open write-combiner entries
die with the power, and close times are not statically knowable: every
ack with a real version requirement is ``possibly-lost`` with a window
open to the program end (``crashcheck.media-domain``, info).  Protocol
rules are still computed from the ADR model so e.g. a demote-only
protocol keeps its ``missing-clwb`` error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.crashcheck.extract import (
    AckPoint,
    PERSIST_KINDS,
    ProgramIR,
    STORE_KINDS,
    extract_ir,
)
from repro.crashcheck.hb import PersistModel
from repro.errors import Diagnostic
from repro.sim.event import CodeSite, UNKNOWN_SITE
from repro.sim.machine import MachineSpec
from repro.workloads.base import Workload

__all__ = ["AckClassification", "CrashCheckReport", "check_workload", "classify"]

GUARANTEED = "guaranteed-durable"
POSSIBLY_LOST = "possibly-lost"
ORDERING = "ordering-violated"


@dataclass(frozen=True)
class AckClassification:
    """One ack's verdict across all crash points."""

    index: int
    key: str
    boundary: int
    status: str
    #: Half-open vulnerable window ``[start, end)`` in instruction
    #: indices; ``end=None`` leaves it open to the program end.  Only
    #: possibly-lost acks carry a window.
    window: Optional[Tuple[int, Optional[int]]]
    rules: Tuple[str, ...] = ()

    def window_contains(self, instruction: int) -> bool:
        if self.window is None:
            return False
        start, end = self.window
        return start <= instruction and (end is None or instruction < end)

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "key": self.key,
            "boundary": self.boundary,
            "status": self.status,
            "window": None if self.window is None else list(self.window),
            "rules": list(self.rules),
        }


@dataclass
class CrashCheckReport:
    """The static verifier's output for one workload configuration."""

    workload: str
    machine: str
    patch_summary: str
    adr: bool
    seed: int
    instr_total: int
    threads: int
    exact_indices: bool
    acks: List[AckClassification] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {GUARANTEED: 0, POSSIBLY_LOST: 0, ORDERING: 0}
        for ack in self.acks:
            out[ack.status] = out.get(ack.status, 0) + 1
        return out

    def vulnerable(self) -> List[AckClassification]:
        """Possibly-lost acks whose window a planned crash can reach.

        A boundary at ``instr_total`` is unreachable: no event remains
        to trip the injector's pre-execution check.
        """
        return [
            a
            for a in self.acks
            if a.status == POSSIBLY_LOST and a.boundary < self.instr_total
        ]

    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "machine": self.machine,
            "patch_summary": self.patch_summary,
            "adr": self.adr,
            "seed": self.seed,
            "instr_total": self.instr_total,
            "threads": self.threads,
            "exact_indices": self.exact_indices,
            "counts": self.counts(),
            "acks": [a.to_dict() for a in self.acks],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class _RuleTally:
    """Aggregation of one (rule, site) pair across acks."""

    __slots__ = ("site", "count", "first_index", "first_line", "message", "severity")

    def __init__(
        self, site: CodeSite, index: int, line: Optional[int], message: str, severity: str
    ) -> None:
        self.site = site
        self.count = 1
        self.first_index = index
        self.first_line = line
        self.message = message
        self.severity = severity


def _ack_site(ir: ProgramIR, ack: AckPoint) -> CodeSite:
    """Provenance for an ack: its last covering store's code site."""
    lines = set(ack.record.lines)
    for pos in range(ack.op_pos - 1, -1, -1):
        op = ir.ops[pos]
        if op.tid != ack.tid:
            continue
        if op.kind in STORE_KINDS and lines.intersection(op.lines):
            return op.site
    return UNKNOWN_SITE


def _has_covering_persist(ir: ProgramIR, ack: AckPoint) -> Tuple[bool, bool]:
    """(any persist-ish op covers the lines, only demotes do)."""
    lines = set(ack.record.lines)
    persist = False
    demote_only = True
    for pos in range(ack.op_pos):
        op = ir.ops[pos]
        if op.tid != ack.tid or not lines.intersection(op.lines):
            continue
        if op.kind in PERSIST_KINDS:
            persist = True
            demote_only = False
        elif op.kind == "demote":
            persist = True
    return persist, demote_only and persist


def _ordering_rules(ir: ProgramIR, ack: AckPoint, positions: List[int]) -> List[str]:
    """Protocol check: each accepting persist op needs a full fence
    between itself and the ack (same thread)."""
    rules: List[str] = []
    for pos in positions:
        narrow = False
        fenced = False
        for later in range(pos + 1, ack.op_pos):
            op = ir.ops[later]
            if op.tid != ack.tid:
                continue
            if op.kind in ("fence", "atomic"):
                fenced = True
                break
            if op.kind == "load-fence":
                narrow = True
        if not fenced:
            rules.append(
                "crashcheck.fence-scope-too-narrow" if narrow else "crashcheck.missing-fence"
            )
    return rules


def classify(ir: ProgramIR, adr: bool = True) -> Tuple[List[AckClassification], PersistModel]:
    """Classify every ack of ``ir``; returns (classifications, model)."""
    model = PersistModel(ir)
    out: List[AckClassification] = []
    for ack in ir.acks:
        end = model.persist_window_end(ack)
        adr_durable = end is not None and end <= ack.boundary
        rules: List[str] = []
        if adr_durable:
            ordering = _ordering_rules(ir, ack, model.accepting_positions(ack))
            if adr:
                if ordering:
                    status = ORDERING
                    rules = ordering
                else:
                    status = GUARANTEED
                window = None
            else:
                status = POSSIBLY_LOST
                window = (ack.boundary, None)
                rules = ["crashcheck.media-domain", *ordering]
        else:
            persist, demote_only = _has_covering_persist(ir, ack)
            if not persist:
                rules = ["crashcheck.acked-before-persist"]
            else:
                rules = ["crashcheck.missing-clwb"]
                if demote_only:
                    rules.append("crashcheck.demote-not-durable")
            status = POSSIBLY_LOST
            if adr:
                window = (ack.boundary, end)
            else:
                window = (ack.boundary, None)
                rules.append("crashcheck.media-domain")
        out.append(
            AckClassification(
                index=ack.record.index,
                key=ack.record.key,
                boundary=ack.boundary,
                status=status,
                window=window,
                rules=tuple(rules),
            )
        )
    return out, model


_RULE_SEVERITY = {
    "crashcheck.acked-before-persist": "error",
    "crashcheck.missing-clwb": "error",
    "crashcheck.demote-not-durable": "error",
    "crashcheck.missing-fence": "warning",
    "crashcheck.fence-scope-too-narrow": "warning",
    "crashcheck.redundant-flush": "warning",
    "crashcheck.media-domain": "info",
    "crashcheck.approximate-indices": "info",
}

_RULE_MESSAGE = {
    "crashcheck.acked-before-persist": (
        "operation acknowledged with no persist op (clwb / non-temporal "
        "store) covering its lines: any crash inside the window loses "
        "acked data"
    ),
    "crashcheck.missing-clwb": (
        "acked data is not fully accepted by the device at the ack: a "
        "clwb covering the latest store versions is missing before the ack"
    ),
    "crashcheck.demote-not-durable": (
        "the only pre-store covering the acked lines is a demote "
        "(cldemote): it moves data toward the point of unification but "
        "never off the hierarchy — visibility is not persistence"
    ),
    "crashcheck.missing-fence": (
        "no full fence between the persist op and the ack: the simulator's "
        "synchronous clwb hides it, but on real hardware the unordered ack "
        "races its own persist"
    ),
    "crashcheck.fence-scope-too-narrow": (
        "only a load/acquire fence separates the persist op from the ack: "
        "it neither drains the store buffer nor orders clwb completion — "
        "use a full fence (sfence/mfence)"
    ),
    "crashcheck.redundant-flush": (
        "clean hits lines already accepted at their current version: no "
        "writeback is owed, the flush is dead work"
    ),
    "crashcheck.media-domain": (
        "media-only persistence domain: acceptance into an open "
        "write-combiner entry is not durable and entry close times are "
        "not statically knowable — every ack window extends to the end "
        "of the program"
    ),
    "crashcheck.approximate-indices": (
        "multi-threaded program: the extractor walks threads sequentially, "
        "so instruction indices approximate the machine's time-ordered "
        "interleaving"
    ),
}


def _build_diagnostics(
    ir: ProgramIR, acks: List[AckClassification], model: PersistModel
) -> List[Diagnostic]:
    tallies: Dict[Tuple[str, str], _RuleTally] = {}

    def hit(rule: str, site: CodeSite, index: int, line: Optional[int]) -> None:
        key = (rule, str(site))
        tally = tallies.get(key)
        if tally is not None:
            tally.count += 1
            return
        tallies[key] = _RuleTally(
            site, index, line, _RULE_MESSAGE[rule], _RULE_SEVERITY[rule]
        )

    by_index = {ack.record.index: ack for ack in ir.acks}
    for classification in acks:
        ack = by_index.get(classification.index)
        site = _ack_site(ir, ack) if ack is not None else UNKNOWN_SITE
        line = ack.record.lines[0] if ack is not None and ack.record.lines else None
        for rule in classification.rules:
            hit(rule, site, classification.boundary, line)
    for op in model.redundant_cleans:
        hit("crashcheck.redundant-flush", op.site, op.index, op.lines[0] if op.lines else None)
    if not ir.exact_indices:
        hit("crashcheck.approximate-indices", UNKNOWN_SITE, 0, None)

    out: List[Diagnostic] = []
    for (rule, _site_key), tally in tallies.items():
        message = tally.message
        if tally.count > 1:
            message = f"{message} ({tally.count} occurrences)"
        out.append(
            Diagnostic(
                rule=rule,
                severity=tally.severity,
                message=message,
                site=tally.site,
                cache_line=tally.first_line,
                instr_index=tally.first_index,
                count=tally.count,
            )
        )
    severity_rank = {"error": 0, "warning": 1, "info": 2}
    out.sort(key=lambda d: (severity_rank.get(d.severity, 3), d.rule, str(d.site)))
    return out


def patches_for(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    """Uniform patch config: ``mode`` at every one of the workload's sites."""
    config = PatchConfig.baseline()
    for site in workload.patch_sites():
        config.set_mode(site.name, mode)
    return config


def check_workload(
    workload: Workload,
    spec: MachineSpec,
    patches: Optional[PatchConfig] = None,
    mode: Optional[PrestoreMode] = None,
    adr: bool = True,
    seed: int = 1234,
    streams: Optional[bool] = None,
) -> CrashCheckReport:
    """Statically verify one workload configuration.

    Pass either an explicit ``patches`` config or a uniform ``mode``.
    Extraction consumes the workload instance (generators drained,
    durability log appended): hand in a fresh one, as the cross-validation
    harness does.
    """
    if patches is None and mode is not None:
        patches = patches_for(workload, mode)
    ir = extract_ir(workload, spec, patches=patches, seed=seed, streams=streams)
    acks, model = classify(ir, adr=adr)
    diagnostics = _build_diagnostics(ir, acks, model)
    return CrashCheckReport(
        workload=ir.workload,
        machine=ir.machine,
        patch_summary=ir.patch_summary,
        adr=adr,
        seed=seed,
        instr_total=ir.instr_total,
        threads=ir.threads,
        exact_indices=ir.exact_indices,
        acks=acks,
        diagnostics=diagnostics,
    )
