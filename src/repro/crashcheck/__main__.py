"""Entry point: ``python -m repro.crashcheck``."""

import sys

from repro.crashcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
