"""IR extraction: walk a workload's event stream without executing it.

The static verifier needs exactly the instruction stream the machine
would execute — the same per-access expansion of batched STREAM events,
the same instruction indexing, the same durability-log ack boundaries —
but with no simulated time.  :func:`extract_ir` builds a
:class:`ProgramIR` by constructing a real
:class:`~repro.workloads.memapi.Program` (so allocation, seeding and
patch resolution happen exactly as in a run) and then draining the
spawned generators directly.

Three details make the extracted indices line up bit-exactly with the
dynamic fault injector on single-threaded programs:

* ``Machine.step`` adds ``event.size`` to the instruction counter for
  COMPUTE and 1 for everything else, and a fault-injected run unrolls
  stream events one access per ``chunk`` bytes.  The extractor
  reproduces both rules, so a :class:`SymbolicOp`'s ``index`` is the
  machine's ``instruction_count`` after that op retires.

* The injector bumps per-line store versions in its *pre*-event hook and
  :meth:`~repro.faults.recovery.DurabilityLog.ack` snapshots
  ``device.line_versions`` from generator code that runs *between*
  events.  The extractor assigns its own shared version dict onto the
  program's device before spawning, so acks pin exactly the versions a
  faulted run's :class:`~repro.faults.injector.FaultDevice` would record.

* Generator code between two ``yield`` statements runs during the
  ``next()`` that produces the later event — after the earlier event
  executed, before the later one's pre-execution crash check.  An ack
  drained while fetching event *k+1* therefore belongs to the boundary
  *after* event *k*: ``FaultPlan.crash_at(boundary)`` crashes with the
  ack recorded but nothing later executed.

Multi-threaded programs are extracted thread-major (each generator
drained to completion in spawn order), which does not match the
machine's time-ordered interleaving; :attr:`ProgramIR.exact_indices` is
False and downstream consumers treat indices as approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.prestore import PatchConfig, PrestoreOp
from repro.faults.recovery import AckRecord
from repro.sim.event import CodeSite, Event, EventKind, STREAM_KINDS
from repro.sim.machine import MachineSpec
from repro.workloads.base import Workload
from repro.workloads.memapi import Program

__all__ = ["SymbolicOp", "AckPoint", "ProgramIR", "extract_ir"]

#: SymbolicOp kinds that persist data (reach the device's ADR domain).
PERSIST_KINDS = ("clean", "nt-store")
#: SymbolicOp kinds that dirty data.
STORE_KINDS = ("store", "nt-store", "atomic")


@dataclass(frozen=True)
class SymbolicOp:
    """One retired instruction of the extracted stream.

    ``kind`` is one of ``store``/``nt-store``/``atomic``/``read``/
    ``clean``/``demote``/``fence``/``load-fence``/``compute``/``post``/
    ``wait``.  ``index`` is the machine instruction count *after* this op
    retires.  ``versions`` carries, per covered line: the version this op
    stored (store kinds) or the line's current version (prestore kinds).
    """

    kind: str
    index: int
    lines: Tuple[int, ...]
    versions: Tuple[int, ...]
    site: CodeSite
    tid: int


@dataclass(frozen=True)
class AckPoint:
    """One durability-log acknowledgement pinned to its event boundary.

    ``boundary`` is the instruction count at which the ack was recorded:
    a crash planned at ``at_instruction == boundary`` fires with this ack
    in the log and nothing later executed.  ``op_pos`` is the position in
    :attr:`ProgramIR.ops` the ack precedes (ops[:op_pos] retired first).
    """

    record: AckRecord
    boundary: int
    tid: int
    op_pos: int


@dataclass
class ProgramIR:
    """The extracted instruction stream plus its ack boundaries."""

    workload: str
    machine: str
    line_size: int
    patch_summary: str
    ops: List[SymbolicOp]
    acks: List[AckPoint]
    instr_total: int
    threads: int
    #: True when indices are bit-exact against a (single-threaded)
    #: machine run; multi-threaded extraction is thread-major and only
    #: approximates the scheduler's interleaving.
    exact_indices: bool
    #: Final store version per line (the injector's version counters).
    line_versions: Dict[int, int] = field(default_factory=dict)


def _drain_acks(
    records: List[AckRecord],
    next_record: int,
    boundary: int,
    tid: int,
    op_pos: int,
    acks: List[AckPoint],
) -> int:
    while next_record < len(records):
        acks.append(
            AckPoint(record=records[next_record], boundary=boundary, tid=tid, op_pos=op_pos)
        )
        next_record += 1
    return next_record


def _process(
    event: Event,
    instr: int,
    tid: int,
    versions: Dict[int, int],
    line_size: int,
    ops: List[SymbolicOp],
) -> int:
    kind = event.kind
    if kind in STREAM_KINDS:
        # Same per-access unrolling a fault-injected machine performs.
        for access in event.accesses():
            instr = _process(access, instr, tid, versions, line_size, ops)
        return instr
    instr += event.size if kind is EventKind.COMPUTE else 1
    if kind is EventKind.WRITE or kind is EventKind.ATOMIC:
        lines = tuple(event.lines(line_size))
        for line in lines:
            versions[line] = versions.get(line, 0) + 1
        stored = tuple(versions[line] for line in lines)
        if kind is EventKind.ATOMIC:
            op_kind = "atomic"
        else:
            op_kind = "nt-store" if event.nontemporal else "store"
        ops.append(SymbolicOp(op_kind, instr, lines, stored, event.site, tid))
    elif kind is EventKind.READ:
        ops.append(
            SymbolicOp("read", instr, tuple(event.lines(line_size)), (), event.site, tid)
        )
    elif kind is EventKind.PRESTORE:
        lines = tuple(event.lines(line_size))
        current = tuple(versions.get(line, 0) for line in lines)
        op_kind = "clean" if event.op is PrestoreOp.CLEAN else "demote"
        ops.append(SymbolicOp(op_kind, instr, lines, current, event.site, tid))
    elif kind is EventKind.FENCE:
        op_kind = "fence" if event.fence_scope == "full" else "load-fence"
        ops.append(SymbolicOp(op_kind, instr, (), (), event.site, tid))
    elif kind is EventKind.COMPUTE:
        ops.append(SymbolicOp("compute", instr, (), (), event.site, tid))
    else:  # POST / WAIT
        ops.append(SymbolicOp(kind.value, instr, (), (), event.site, tid))
    return instr


def extract_ir(
    workload: Workload,
    spec: MachineSpec,
    patches: Optional[PatchConfig] = None,
    seed: int = 1234,
    streams: Optional[bool] = None,
) -> ProgramIR:
    """Extract the symbolic instruction stream of one workload config.

    Builds a real :class:`Program` (machine constructed, never run) and
    drains the spawned generators.  Extraction *consumes* the workload's
    generators and appends to its durability log — pass a fresh workload
    instance, and do not reuse it for a dynamic run afterwards.
    """
    patches = patches or PatchConfig.baseline()
    program = Program(spec, seed=seed, streams=streams)
    versions: Dict[int, int] = {}
    # DurabilityLog.ack duck-types ``device.line_versions``; sharing our
    # dict makes acks snapshot exactly what a FaultDevice would pin.
    program.machine.device.line_versions = versions  # type: ignore[attr-defined]
    workload.spawn(program, patches)
    log = getattr(workload, "durability_log", None)
    records: List[AckRecord] = log.records if log is not None else []
    next_record = len(records)
    line_size = program.machine.line_size
    bodies = program.bodies
    ops: List[SymbolicOp] = []
    acks: List[AckPoint] = []
    instr = 0
    for tid, gen in enumerate(bodies):
        while True:
            try:
                event = next(gen)
            except StopIteration:
                break
            # Generator code that ran inside this ``next`` executed after
            # the previously processed event: acks it recorded belong to
            # the boundary before the event we just received.
            next_record = _drain_acks(records, next_record, instr, tid, len(ops), acks)
            instr = _process(event, instr, tid, versions, line_size, ops)
        next_record = _drain_acks(records, next_record, instr, tid, len(ops), acks)
    enabled = patches.enabled_sites()
    summary = ", ".join(f"{k}={v}" for k, v in sorted(enabled.items())) or "baseline"
    return ProgramIR(
        workload=getattr(workload, "name", type(workload).__name__),
        machine=spec.name,
        line_size=line_size,
        patch_summary=summary,
        ops=ops,
        acks=acks,
        instr_total=instr,
        threads=len(bodies),
        exact_indices=len(bodies) == 1,
        line_versions=dict(versions),
    )
