"""The persist happens-before model over an extracted ProgramIR.

For every cache line the model replays the symbolic stream and records
the *acceptance timeline*: at which instruction index which store
version had reached the device's ADR persistence domain.  The edges
mirror the simulator's execution semantics exactly (DESIGN.md §13):

* a ``store`` makes a version *visible* (dirty in the hierarchy) but
  never durable by itself;
* an ``nt-store`` is accepted by the device at its own index — the
  simulator's non-temporal path calls ``device.write_back`` inline;
* a ``clean`` (clwb) covering a line accepts that line's current version
  at the clean's index — ``_do_prestore`` demotes any parked store
  (installing it dirty) and then writes the line back iff some cache
  level holds it dirty.  A clean whose every line is already at its
  accepted version writes nothing: the *redundant flush* the
  ``crashcheck.redundant-flush`` rule reports;
* a ``demote`` (cldemote) moves data toward the point of unification and
  never touches the device: no acceptance edge — visibility is not
  persistence;
* fences order and drain store buffers but move no data to the device,
  so they add no acceptance edges; they matter for the *protocol* checks
  (a persist op unordered with its ack on real asynchronous-clwb
  hardware), which :mod:`repro.crashcheck.verify` layers on top.

What the model deliberately does **not** know: dirty-capacity evictions.
A simulated run whose working set overflows the LLC writes victims back
early, accepting versions *before* any clean reaches them.  The static
timeline therefore under-approximates durability (over-approximates the
vulnerable window): statically guaranteed implies dynamically durable,
never the converse.

Under a *media-only* persistence domain (``adr=False``) acceptance into
an open write-combiner entry is not durability, and entry close times
depend on eviction order the static pass cannot see — nothing is
statically provable durable there.  The model still computes the ADR
timeline; :mod:`verify` widens every window to the program end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crashcheck.extract import AckPoint, ProgramIR, SymbolicOp

__all__ = ["PersistModel"]

#: One acceptance step: (instruction index, running-max accepted version,
#: position of the accepting op in ``ir.ops``).
_Step = Tuple[int, int, int]


class PersistModel:
    """Per-line ADR acceptance timelines for one extracted program."""

    def __init__(self, ir: ProgramIR) -> None:
        self.ir = ir
        self._accepted: Dict[int, List[_Step]] = {}
        #: Cleans whose every covered line was already accepted at its
        #: current version: no writeback is owed, the flush is dead work.
        self.redundant_cleans: List[SymbolicOp] = []
        self._build()

    def _build(self) -> None:
        accepted_now: Dict[int, int] = {}
        for pos, op in enumerate(self.ir.ops):
            if op.kind == "nt-store":
                for line, version in zip(op.lines, op.versions):
                    self._accept(line, version, op.index, pos, accepted_now)
            elif op.kind == "clean":
                useful = False
                for line, version in zip(op.lines, op.versions):
                    if accepted_now.get(line, 0) < version:
                        useful = True
                        self._accept(line, version, op.index, pos, accepted_now)
                if not useful:
                    self.redundant_cleans.append(op)

    def _accept(
        self, line: int, version: int, index: int, pos: int, accepted_now: Dict[int, int]
    ) -> None:
        if accepted_now.get(line, 0) >= version:
            return
        accepted_now[line] = version
        self._accepted.setdefault(line, []).append((index, version, pos))

    # -- queries -----------------------------------------------------------------

    def first_accepted(self, line: int, version: int) -> Optional[_Step]:
        """The earliest acceptance step satisfying ``version``; None = never.

        Version 0 means "any version" (:meth:`AckRecord.required_version`
        semantics) and is trivially satisfied at index 0.
        """
        if version <= 0:
            return (0, 0, -1)
        for step in self._accepted.get(line, ()):
            if step[1] >= version:
                return step
        return None

    def persist_window_end(self, ack: AckPoint) -> Optional[int]:
        """First index at which every line of ``ack`` is accepted.

        None when some line's required version is never accepted: the
        vulnerable window stays open to the end of the program.  The ack
        is (statically, ADR) durable iff the result is ``<= ack.boundary``.
        """
        end = 0
        for line in ack.record.lines:
            step = self.first_accepted(line, ack.record.required_version(line))
            if step is None:
                return None
            end = max(end, step[0])
        return end

    def accepting_positions(self, ack: AckPoint) -> List[int]:
        """Positions (in ``ir.ops``) of the ops that satisfied ``ack``."""
        positions = []
        for line in ack.record.lines:
            step = self.first_accepted(line, ack.record.required_version(line))
            if step is not None and step[2] >= 0:
                positions.append(step[2])
        return positions
