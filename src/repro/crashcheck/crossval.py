"""Static ↔ dynamic differential: each side checks the other.

Direction 1 (*the static pass is not crying wolf*): every statically
reported vulnerable window is turned into a concrete
:class:`~repro.faults.plan.FaultPlan` crash point at the ack's boundary
and replayed through :func:`~repro.faults.harness.run_with_faults`; the
dynamic run must crash there with the acked record present in the log
and **not** durable in the captured image.  Statically
``guaranteed-durable`` acks visible in the same runs must be durable
(soundness: guaranteed ⇒ durable, never violated by the simulator's
extra persistence channels such as capacity evictions).

Direction 2 (*the static pass misses nothing*): crashes are planted at
fixed fractions of the instruction stream; every acked record the
dynamic recovery check finds non-durable must be statically classified
``possibly-lost`` with the actual crash instruction inside its window.

Alignment riding along on every dynamic run (single-threaded programs):
the dynamic durability log must contain exactly the records the static
IR predicts before the crash boundary, with identical keys, lines and
pinned store versions — any drift between the extractor's symbolic
indexing and the machine's real instruction counting surfaces here.

``ordering-violated`` acks are excluded from direction 1: the
simulator's clwb writeback is synchronous, so it cannot lose them — the
warning exists precisely because real hardware could.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.core.prestore import PrestoreMode
from repro.crashcheck.verify import GUARANTEED, POSSIBLY_LOST, check_workload, patches_for
from repro.faults.harness import run_with_faults
from repro.faults.image import PersistentImage
from repro.faults.plan import FaultPlan
from repro.faults.recovery import AckRecord
from repro.sim.machine import MachineSpec

__all__ = ["cross_validate"]


def _record_durable(record: AckRecord, image: PersistentImage) -> bool:
    """Same invariant :func:`repro.faults.recovery._record_durable` checks,
    reimplemented on the public image API (and uncapped by report limits)."""
    return all(
        image.is_durable(line, record.required_version(line) or image.line_versions.get(line, 0))
        for line in record.lines
    )


def _spread(items: Sequence, limit: Optional[int]) -> List:
    """Up to ``limit`` items spread evenly across ``items`` (ends included)."""
    if limit is None or len(items) <= limit:
        return list(items)
    if limit <= 1:
        return [items[0]]
    picked = []
    last = len(items) - 1
    for i in range(limit):
        picked.append(items[round(i * last / (limit - 1))])
    # round() can collide on short inputs; dedupe preserving order.
    seen: set = set()
    return [x for x in picked if not (id(x) in seen or seen.add(id(x)))]


def cross_validate(
    make_workload,
    spec: MachineSpec,
    mode: PrestoreMode = PrestoreMode.NONE,
    adr: bool = True,
    seed: int = 1234,
    max_probes: Optional[int] = 6,
    fractions: Sequence[float] = (0.3, 0.7),
    streams: Optional[bool] = None,
) -> Dict[str, object]:
    """Differentially test one (workload, machine, mode, domain) config.

    ``make_workload`` is a zero-argument factory: extraction and every
    dynamic run consume a fresh instance.  Returns a JSON-stable dict;
    ``result["ok"]`` is True iff no direction found a mismatch.
    """
    probe_workload = make_workload()
    patches = patches_for(probe_workload, mode)
    static = check_workload(
        probe_workload, spec, patches=patches, adr=adr, seed=seed, streams=streams
    )
    mismatches: List[str] = []
    dynamic_runs = 0

    static_by_index = {a.index: a for a in static.acks}
    guaranteed = [a for a in static.acks if a.status == GUARANTEED]

    def run_dynamic(crash_instruction: int, context: str):
        nonlocal dynamic_runs
        workload = make_workload()
        plan = FaultPlan.crash_at(crash_instruction, combiner_persistent=adr)
        report = run_with_faults(
            workload, spec, plan, patches=patches_for(workload, mode), seed=seed, streams=streams
        )
        dynamic_runs += 1
        if not report.crashed:
            mismatches.append(f"{context}: planned crash at {crash_instruction} never fired")
            return None, None
        log = getattr(workload, "durability_log", None)
        records = log.records if log is not None else []
        if static.exact_indices:
            # The crash fires at the first event whose pre-check sees
            # count >= crash_instruction, i.e. after every ack recorded
            # at boundaries <= the actual crash instruction.
            actual_instr = report.crash_instruction or 0
            expected = sum(1 for a in static.acks if a.boundary <= actual_instr)
            if len(records) != expected:
                mismatches.append(
                    f"{context}: dynamic log has {len(records)} acks, static IR "
                    f"predicts {expected} at instruction {actual_instr}"
                )
            for record in records:
                ack = static_by_index.get(record.index)
                if ack is None or ack.key != record.key:
                    mismatches.append(
                        f"{context}: ack #{record.index} ({record.key}) does not "
                        f"match the static IR"
                    )
                    break
        # Soundness rider: statically guaranteed acks present in this
        # dynamic log must be durable in the captured image.
        if report.image is not None:
            for ack in guaranteed:
                if ack.index < len(records) and not _record_durable(
                    records[ack.index], report.image
                ):
                    mismatches.append(
                        f"{context}: statically guaranteed ack #{ack.index} "
                        f"({ack.key}) lost dynamically"
                    )
        return report, records

    # -- direction 1: every vulnerable window reproduces dynamically -----------
    probes = _spread(static.vulnerable(), max_probes)
    for ack in probes:
        context = f"direction1 ack#{ack.index}@{ack.boundary}"
        report, records = run_dynamic(ack.boundary, context)
        if report is None or report.image is None:
            continue
        if records is None or ack.index >= len(records):
            mismatches.append(
                f"{context}: acked record missing from the dynamic log "
                f"({0 if records is None else len(records)} records)"
            )
            continue
        if _record_durable(records[ack.index], report.image):
            mismatches.append(
                f"{context}: statically possibly-lost record survived the "
                f"crash at its own boundary"
            )

    # -- direction 2: every dynamic loss is statically predicted ----------------
    for fraction in fractions:
        crash_at = max(1, int(static.instr_total * fraction))
        context = f"direction2 frac={fraction:g} (instr {crash_at})"
        report, records = run_dynamic(crash_at, context)
        if report is None or report.image is None or records is None:
            continue
        actual = report.crash_instruction or crash_at
        for record in records:
            durable = _record_durable(record, report.image)
            ack = static_by_index.get(record.index)
            if ack is None:
                continue  # already reported by the alignment check
            if not durable:
                if ack.status != POSSIBLY_LOST:
                    mismatches.append(
                        f"{context}: record #{record.index} ({record.key}) lost "
                        f"dynamically but statically {ack.status}"
                    )
                elif static.exact_indices and not ack.window_contains(actual):
                    mismatches.append(
                        f"{context}: record #{record.index} lost at instruction "
                        f"{actual}, outside its static window {ack.window}"
                    )

    return {
        "workload": static.workload,
        "machine": static.machine,
        "mode": mode.value,
        "adr": adr,
        "seed": seed,
        "static": {
            "acks": len(static.acks),
            "counts": static.counts(),
            "instr_total": static.instr_total,
            "exact_indices": static.exact_indices,
        },
        "probes": len(probes),
        "dynamic_runs": dynamic_runs,
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def cross_validate_json(*args, **kwargs) -> str:
    return json.dumps(cross_validate(*args, **kwargs), indent=2, sort_keys=True)
