"""repro.sanitize — checkers for the sharp edges pre-stores introduce.

Three passes over workload code, sharing one :class:`~repro.errors.
Diagnostic` vocabulary and one report format:

* :class:`RaceDetector` (``races``) — FastTrack-style vector-clock
  happens-before detection plus *visibility races*: reads observing data
  still parked in another core's weak-model store buffer (the Machine B
  bug class of Section 4.2).
* :class:`PrestoreLint` (``prestore_lint``) — replays the run against
  DirtBuster's distance machinery to flag pre-store misuse: clean/skip on
  hot-rewrite lines (the Listing 3 / fftz2 pathology), demotes already
  covered by a fence, non-temporal stores whose data is promptly re-read,
  and pre-stores of never-written regions.
* :class:`StaticSanitizer` (``static``) — a true AST pass over workload
  source: dropped events, missing ``yield from``, stores outside
  ``with t.function(...)`` provenance, raw address arithmetic.

Attach dynamically with ``Program(..., sanitize=True)`` /
``Workload.run(..., sanitize=True)``, orchestrate everything with
:func:`sanitize`, or run ``python -m repro.sanitize`` from the shell.
"""

from repro.errors import Diagnostic, SanitizerError
from repro.sanitize.prestore_lint import PrestoreLint
from repro.sanitize.races import RaceDetector
from repro.sanitize.report import render_diagnostic, render_report, summary_line
from repro.sanitize.runner import Sanitizer, sanitize
from repro.sanitize.static import StaticSanitizer, static_check

__all__ = [
    "Diagnostic",
    "PrestoreLint",
    "RaceDetector",
    "Sanitizer",
    "SanitizerError",
    "StaticSanitizer",
    "render_diagnostic",
    "render_report",
    "sanitize",
    "static_check",
    "summary_line",
]
