"""Pass 3: true static analysis of workload source (no execution).

Workload bodies are Python generators that *build* events with a
:class:`~repro.workloads.memapi.ThreadCtx` and ``yield`` them to the
scheduler.  That API has sharp edges the type system cannot catch:

* ``t.fence()`` as a bare statement builds an Event and throws it away —
  the fence silently never executes (``static.dropped-event``);
* the same for a dropped ``t.prestore(...)`` — the optimisation the
  whole paper is about quietly never happens;
* ``t.write_block(...)`` without ``yield from`` discards a *generator*,
  so entire store sequences vanish;
* ``with t.function(...)`` forgotten around stores leaves DirtBuster
  attributing them to ``<unlabelled>`` (``static.unlabelled-write``);
* ``region.base + offset`` arithmetic bypasses the bounds check
  :meth:`Region.addr` performs (``static.raw-address``).

The pass walks the AST of workload modules: any generator function using
a ThreadCtx-like receiver is analysed.  It never imports or runs the
target code.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.errors import Diagnostic
from repro.sim.event import CodeSite

__all__ = [
    "EVENT_METHODS",
    "BLOCK_METHODS",
    "WRITE_METHODS",
    "StaticSanitizer",
    "static_check",
]

#: ThreadCtx methods returning a single Event (must be ``yield``-ed).
EVENT_METHODS = frozenset(
    {"read", "write", "compute", "fence", "atomic", "prestore", "post", "wait"}
)
#: ThreadCtx methods returning an event iterator (need ``yield from``).
BLOCK_METHODS = frozenset({"write_block", "read_block", "memcpy", "memset"})
#: The store-producing subset (what provenance labelling is for).
WRITE_METHODS = frozenset({"write", "atomic", "prestore", "write_block", "memset", "memcpy"})

_CTX_METHODS = EVENT_METHODS | BLOCK_METHODS | {"function", "alloc"}


def _receiver_name(call: ast.Call) -> Optional[str]:
    """``t`` for a ``t.method(...)`` call, else None."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _method_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


class _FunctionScan:
    """Everything the checks need to know about one function body."""

    def __init__(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self.node = node
        self.ctx_names: Set[str] = set()
        self.region_names: Set[str] = set()
        self.is_generator = False
        self.has_provenance_block = False
        self.allocates = False
        self._discover()

    def _own_nodes(self) -> Iterable[ast.AST]:
        """Walk the function body without descending into nested defs."""
        stack: List[ast.AST] = list(self.node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _discover(self) -> None:
        # Parameters annotated ThreadCtx are ctx names even if unused.
        args = self.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotation = arg.annotation
            text = ast.unparse(annotation) if annotation is not None else ""
            if "ThreadCtx" in text:
                self.ctx_names.add(arg.arg)
        for node in self._own_nodes():
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self.is_generator = True
            if isinstance(node, ast.Call):
                name = _receiver_name(node)
                method = _method_name(node)
                # Usage-based detection: whatever receives event-API calls
                # is a ThreadCtx for this pass's purposes.  A bare
                # ``x.alloc(...)`` is not evidence by itself (allocators
                # have an ``alloc`` too).
                if name is not None and method in _CTX_METHODS and method != "alloc":
                    self.ctx_names.add(name)
        # Second sweep now that ctx names are known: allocations + regions.
        for node in self._own_nodes():
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if self._is_ctx_alloc(node.value):
                    self.allocates = True
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.region_names.add(target.id)
            if isinstance(node, ast.With):
                if any(self._is_provenance_item(item) for item in node.items):
                    self.has_provenance_block = True

    def _is_ctx_call(self, call: ast.Call, method: str) -> bool:
        return _receiver_name(call) in self.ctx_names and _method_name(call) == method

    def _is_ctx_alloc(self, call: ast.Call) -> bool:
        if self._is_ctx_call(call, "alloc"):
            return True
        # ``t.allocator.alloc(...)`` — the long-hand spelling.
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "alloc"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "allocator"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self.ctx_names
        )

    def _is_provenance_item(self, item: ast.withitem) -> bool:
        expr = item.context_expr
        return isinstance(expr, ast.Call) and self._is_ctx_call(expr, "function")


class StaticSanitizer:
    """AST lint over memapi workload source files."""

    def check_source(self, source: str, filename: str = "<string>") -> List[Diagnostic]:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    rule="static.syntax-error",
                    severity="error",
                    message=f"cannot parse: {exc.msg}",
                    site=CodeSite(function="<module>", file=filename, line=exc.lineno or 0),
                )
            ]
        diagnostics: List[Diagnostic] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                diagnostics.extend(self._check_function(node, filename))
        diagnostics.sort(key=lambda d: (d.site.line if d.site else 0, d.rule))
        return diagnostics

    def check_file(self, path: Union[str, os.PathLike]) -> List[Diagnostic]:
        with open(path, "r", encoding="utf-8") as handle:
            return self.check_source(handle.read(), filename=str(path))

    def check_paths(self, paths: Sequence[Union[str, os.PathLike]]) -> List[Diagnostic]:
        """Lint files and (recursively) directories of ``.py`` files."""
        diagnostics: List[Diagnostic] = []
        for path in paths:
            path = str(path)
            if os.path.isdir(path):
                for root, _dirs, files in os.walk(path):
                    for name in sorted(files):
                        if name.endswith(".py"):
                            diagnostics.extend(self.check_file(os.path.join(root, name)))
            else:
                diagnostics.extend(self.check_file(path))
        return diagnostics

    # -- per-function checks -----------------------------------------------------

    def _check_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef], filename: str
    ) -> List[Diagnostic]:
        scan = _FunctionScan(node)
        if not scan.ctx_names:
            return []
        diagnostics: List[Diagnostic] = []
        unlabelled: List[int] = []
        self._walk_statements(node.body, scan, 0, diagnostics, unlabelled, filename)
        if unlabelled and (scan.has_provenance_block or scan.allocates):
            # Only functions that look like thread bodies (they open a
            # provenance block somewhere, or allocate their own regions)
            # are expected to label their stores; bare helper generators
            # inherit the caller's dynamic ``t.function`` scope.
            diagnostics.append(
                Diagnostic(
                    rule="static.unlabelled-write",
                    severity="warning" if scan.has_provenance_block else "info",
                    message=(
                        f"{len(unlabelled)} store-producing event(s) outside any "
                        f"`with t.function(...)` block (first at line "
                        f"{unlabelled[0]}): DirtBuster will attribute them to "
                        f"<unlabelled>"
                    ),
                    site=CodeSite(function=node.name, file=filename, line=unlabelled[0]),
                    count=len(unlabelled),
                )
            )
        return diagnostics

    def _walk_statements(
        self,
        body: Sequence[ast.stmt],
        scan: _FunctionScan,
        prov_depth: int,
        diagnostics: List[Diagnostic],
        unlabelled: List[int],
        filename: str,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are scanned as their own functions
            if isinstance(stmt, ast.Expr):
                self._check_expr_statement(stmt, scan, diagnostics, unlabelled, prov_depth, filename)
            else:
                # Yields / ctx calls buried in other statement shapes
                # (assignments, returns, comprehensions) still get the
                # address and provenance checks.
                for expr in self._own_expressions(stmt):
                    self._check_expression(expr, scan, diagnostics, unlabelled, prov_depth, filename)
            depth = prov_depth
            if isinstance(stmt, ast.With) and any(
                scan._is_provenance_item(item) for item in stmt.items
            ):
                depth += 1
            for child_body in self._child_bodies(stmt):
                self._walk_statements(child_body, scan, depth, diagnostics, unlabelled, filename)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    @staticmethod
    def _own_expressions(stmt: ast.stmt) -> Iterable[ast.expr]:
        """The statement's direct expression roots (not child statements)."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child
            elif isinstance(child, ast.withitem):
                yield child.context_expr

    def _check_expression(
        self,
        root: ast.expr,
        scan: _FunctionScan,
        diagnostics: List[Diagnostic],
        unlabelled: List[int],
        prov_depth: int,
        filename: str,
    ) -> None:
        handled: set = set()
        for node in ast.walk(root):
            if isinstance(node, (ast.Yield, ast.YieldFrom)) and isinstance(
                node.value, ast.Call
            ):
                inner = node.value
                handled.add(id(inner))
                self._check_raw_addresses(inner, scan, diagnostics, filename)
                name = _receiver_name(inner)
                method = _method_name(inner)
                if name in scan.ctx_names and method in WRITE_METHODS and prov_depth == 0:
                    unlabelled.append(inner.lineno)
            elif isinstance(node, ast.Call) and id(node) not in handled:
                self._check_raw_addresses(node, scan, diagnostics, filename)

    def _check_expr_statement(
        self,
        stmt: ast.Expr,
        scan: _FunctionScan,
        diagnostics: List[Diagnostic],
        unlabelled: List[int],
        prov_depth: int,
        filename: str,
    ) -> None:
        value = stmt.value
        if isinstance(value, ast.Call):
            self._check_dropped(value, scan, diagnostics, filename)
            self._check_raw_addresses(value, scan, diagnostics, filename)
            return
        if isinstance(value, (ast.Yield, ast.YieldFrom)) and value.value is not None:
            inner = value.value
            if isinstance(inner, ast.Call):
                self._check_raw_addresses(inner, scan, diagnostics, filename)
                name = _receiver_name(inner)
                method = _method_name(inner)
                if name in scan.ctx_names and method in WRITE_METHODS and prov_depth == 0:
                    unlabelled.append(inner.lineno)
                if (
                    name in scan.ctx_names
                    and method in BLOCK_METHODS
                    and isinstance(value, ast.Yield)
                ):
                    diagnostics.append(
                        Diagnostic(
                            rule="static.yield-iterator",
                            severity="error",
                            message=(
                                f"`yield t.{method}(...)` yields the event *iterator* "
                                f"as if it were one event; use `yield from`"
                            ),
                            site=CodeSite(
                                function=scan.node.name, file=filename, line=inner.lineno
                            ),
                        )
                    )

    def _check_dropped(
        self,
        call: ast.Call,
        scan: _FunctionScan,
        diagnostics: List[Diagnostic],
        filename: str,
    ) -> None:
        name = _receiver_name(call)
        method = _method_name(call)
        if name not in scan.ctx_names or method is None:
            return
        if method in EVENT_METHODS:
            hint = (
                "the pre-store never executes; `yield` it"
                if method == "prestore"
                else "a silent no-op; `yield` it"
            )
            message = f"`t.{method}(...)` builds an Event that is discarded — {hint}"
        elif method in BLOCK_METHODS:
            message = (
                f"`t.{method}(...)` returns an iterator of events that is "
                f"discarded — use `yield from t.{method}(...)`"
            )
        elif method == "function":
            message = (
                "`t.function(...)` outside a `with` statement discards the "
                "provenance scope — use `with t.function(...):`"
            )
        else:
            return
        diagnostics.append(
            Diagnostic(
                rule="static.dropped-event",
                severity="error",
                message=message,
                site=CodeSite(function=scan.node.name, file=filename, line=call.lineno),
            )
        )

    def _check_raw_addresses(
        self,
        call: ast.Call,
        scan: _FunctionScan,
        diagnostics: List[Diagnostic],
        filename: str,
    ) -> None:
        if _receiver_name(call) not in scan.ctx_names:
            return
        if _method_name(call) not in EVENT_METHODS | BLOCK_METHODS:
            return
        for arg in call.args:
            if not isinstance(arg, ast.BinOp):
                continue
            region = self._region_base_operand(arg, scan)
            if region is not None:
                diagnostics.append(
                    Diagnostic(
                        rule="static.raw-address",
                        severity="warning",
                        message=(
                            f"address computed as arithmetic on `{region}.base` "
                            f"bypasses the bounds check — use `{region}.addr(offset)`"
                        ),
                        site=CodeSite(function=scan.node.name, file=filename, line=arg.lineno),
                    )
                )

    @staticmethod
    def _region_base_operand(expr: ast.BinOp, scan: _FunctionScan) -> Optional[str]:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "base"
                and isinstance(node.value, ast.Name)
                and node.value.id in scan.region_names
            ):
                return node.value.id
        return None


def static_check(paths: Sequence[Union[str, os.PathLike]]) -> List[Diagnostic]:
    """Lint the given files/directories; the module-level convenience."""
    return StaticSanitizer().check_paths(paths)
