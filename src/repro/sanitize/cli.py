"""``python -m repro.sanitize`` — lint workload sources, sanitize runs.

Targets are Python files or directories.  Every ``.py`` target gets the
static AST pass; a *file* target additionally gets the dynamic passes
when it exposes a ``build_program(spec) -> Program`` hook (the shape
``examples/quickstart.py`` demonstrates) — the program is run on the
selected machine with the race detector and pre-store lint attached.

``--self`` lints this repository's own workload tree (``src/repro/
workloads`` and ``examples``), runs the fast :mod:`repro.crashcheck`
self-check, and, when the optional ``ruff``/``mypy`` toolchain is
installed, runs those too — the single ``make lint`` entry point.

Exit codes: 0 clean, 1 error-severity diagnostics, 2 missing target,
3 a pass itself failed to run (import or simulation raised) — a raising
pass is never reported as "clean".
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
from typing import Callable, List, Optional, Sequence

from repro.errors import Diagnostic
from repro.sanitize.report import render_report
from repro.sanitize.runner import sanitize
from repro.sim.machine import (
    MachineSpec,
    machine_a,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)

__all__ = ["main"]

_MACHINES: "dict[str, Callable[[], MachineSpec]]" = {
    "a": machine_a,
    "b-fast": machine_b_fast,
    "b-slow": machine_b_slow,
    "dram": machine_dram,
}


def _load_build_program(path: str) -> Optional[Callable[[MachineSpec], object]]:
    """Import ``path`` as a module and return its ``build_program`` hook."""
    name = "_repro_sanitize_target_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib edge
        return None
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickle inside the target resolve the module.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    hook = getattr(module, "build_program", None)
    return hook if callable(hook) else None


def _repo_root() -> str:
    # src/repro/sanitize/cli.py -> repository root three levels up from repro.
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))


def _self_paths() -> List[str]:
    root = _repo_root()
    candidates = [
        os.path.join(root, "src", "repro", "workloads"),
        os.path.join(root, "examples"),
    ]
    return [path for path in candidates if os.path.exists(path)]


def _run_optional_tool(module: str, argv: Sequence[str]) -> Optional[int]:
    """Run ruff/mypy if importable; None means not installed (skipped)."""
    if importlib.util.find_spec(module) is None:
        return None
    completed = subprocess.run([sys.executable, "-m", module, *argv], cwd=_repo_root())
    return completed.returncode


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="memory-consistency sanitizer + pre-store misuse detector + workload lint",
    )
    parser.add_argument("targets", nargs="*", help="workload .py files or directories to check")
    parser.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help="lint this repository's workloads/examples (plus ruff/mypy when installed)",
    )
    parser.add_argument(
        "--machine",
        choices=sorted(_MACHINES),
        default="b-fast",
        help="machine preset for the dynamic passes (default: b-fast, the weak model)",
    )
    parser.add_argument("--seed", type=int, default=1234, help="simulation seed")
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip the dynamic passes even when a target has build_program()",
    )
    args = parser.parse_args(argv)

    targets = list(args.targets)
    exit_code = 0
    if args.self_check:
        targets.extend(_self_paths())
        # The crashcheck self-check rides along: the static verifier and
        # its dynamic differential are part of the repository's own lint.
        from repro.crashcheck.cli import run_self_check

        print("crashcheck self-check (fast):")
        crashcheck_code = run_self_check(fast=True, seed=args.seed)
        exit_code = max(exit_code, crashcheck_code)
        for tool, tool_args in (
            ("ruff", ["check", "src", "tests", "examples"]),
            ("mypy", ["src/repro/sanitize", "src/repro/crashcheck"]),
        ):
            returncode = _run_optional_tool(tool, tool_args)
            if returncode is None:
                print(f"{tool}: not installed — skipped")
            else:
                print(f"{tool}: exit {returncode}")
                exit_code = max(exit_code, returncode)
    if not targets:
        parser.error("no targets (pass files/directories or --self)")

    spec_factory = _MACHINES[args.machine]
    diagnostics: List[Diagnostic] = []
    for target in targets:
        if os.path.isdir(target):
            diagnostics.extend(sanitize(paths=[target]))
            continue
        if not os.path.exists(target):
            print(f"error: no such file: {target}", file=sys.stderr)
            exit_code = max(exit_code, 2)
            continue
        build_program = None
        if not args.static_only:
            try:
                build_program = _load_build_program(target)
            except SyntaxError:
                pass  # the static pass reports static.syntax-error itself
            except Exception as exc:
                # A target whose import explodes was NOT checked by the
                # dynamic passes: distinct exit code, never "clean".
                print(f"{target}: import failed ({exc}); static pass only", file=sys.stderr)
                exit_code = max(exit_code, 3)
        if build_program is not None:
            print(f"{target}: static + dynamic passes ({spec_factory().name})")
            try:
                diagnostics.extend(
                    sanitize(build_program, spec_factory(), paths=[target], seed=args.seed)
                )
            except Exception as exc:
                print(f"{target}: dynamic pass raised ({exc})", file=sys.stderr)
                exit_code = max(exit_code, 3)
                diagnostics.extend(sanitize(paths=[target]))
        else:
            diagnostics.extend(sanitize(paths=[target]))

    print()
    print(render_report(diagnostics))
    if any(d.severity == "error" for d in diagnostics):
        exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
