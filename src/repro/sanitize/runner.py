"""The sanitizer facade: one subscriber fanning out to every dynamic pass.

:class:`Sanitizer` is a :class:`~repro.sim.machine.Tracer` — attach it via
``Program(..., sanitize=True)``, ``Workload.run(..., sanitize=True)`` or
``Machine(..., sanitizer=Sanitizer())`` and it observes the run at zero
cost to the simulation's timing (observers never touch core clocks).

:func:`sanitize` is the everything-in-one-call entry point the CLI and
AutoTuner use: static-lint source paths, run a workload or program
factory under the dynamic passes, and return the merged diagnostics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

from repro.errors import Diagnostic, SanitizerError, SEVERITIES
from repro.sanitize.prestore_lint import PrestoreLint
from repro.sanitize.races import RaceDetector
from repro.sanitize.static import StaticSanitizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dirtbuster.recommend import Thresholds
    from repro.sim.event import Event
    from repro.sim.machine import Machine, MachineSpec

__all__ = ["Sanitizer", "sanitize"]


def _severity_rank(diag: Diagnostic) -> int:
    return SEVERITIES.index(diag.severity)


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Errors first, then by first occurrence (static findings by line)."""
    return sorted(
        diagnostics,
        key=lambda d: (
            _severity_rank(d),
            d.instr_index if d.instr_index is not None else -1,
            d.rule,
        ),
    )


class Sanitizer:
    """Fan-out Tracer running every enabled dynamic pass on one stream.

    One instance observes one run (passes accumulate per-run state);
    build a fresh Sanitizer per run, exactly like a Machine.
    """

    #: Race detection and lint need every individual access (and its
    #: per-access instruction index), so the machine unrolls batched
    #: stream events before fan-out whenever a sanitizer is attached.
    accepts_streams = False

    def __init__(
        self,
        races: bool = True,
        prestores: bool = True,
        thresholds: Optional["Thresholds"] = None,
    ) -> None:
        self.race_detector = RaceDetector() if races else None
        self.prestore_lint = PrestoreLint(thresholds=thresholds) if prestores else None
        self._passes = [p for p in (self.race_detector, self.prestore_lint) if p is not None]

    # -- Tracer interface -----------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        for pass_ in self._passes:
            pass_.attach(machine)

    def record(self, core_id: int, event: "Event", instr_index: int, cycles: float) -> None:
        for pass_ in self._passes:
            pass_.record(core_id, event, instr_index, cycles)

    # -- results ---------------------------------------------------------------

    def diagnostics(self) -> List[Diagnostic]:
        """Merged findings from every pass, errors first."""
        merged: List[Diagnostic] = []
        for pass_ in self._passes:
            merged.extend(pass_.diagnostics())
        return sort_diagnostics(merged)

    def check(self) -> List[Diagnostic]:
        """Like :meth:`diagnostics`, raising on error-severity findings."""
        diagnostics = self.diagnostics()
        if any(d.severity == "error" for d in diagnostics):
            raise SanitizerError(tuple(diagnostics))
        return diagnostics


def sanitize(
    workload: Union[None, object, Callable[["MachineSpec"], object]] = None,
    spec: Optional["MachineSpec"] = None,
    *,
    paths: Sequence[str] = (),
    patches: Optional[object] = None,
    seed: int = 1234,
    thresholds: Optional["Thresholds"] = None,
    check: bool = False,
) -> List[Diagnostic]:
    """Run every applicable sanitizer pass and return the diagnostics.

    ``workload`` may be a :class:`~repro.workloads.base.Workload` instance
    (run via its ``run(..., sanitize=...)`` hook) or a program factory — a
    callable taking a :class:`MachineSpec` and returning an un-run
    :class:`~repro.workloads.memapi.Program` (the shape example scripts
    expose as ``build_program``).  ``spec`` defaults to the weak-model
    Machine B-fast preset, the platform where visibility races are
    actually possible; pass :func:`~repro.sim.machine.machine_a` to check
    under TSO instead.

    ``paths`` are source files/directories for the static AST pass; the
    three passes share one report.  With ``check=True`` a
    :class:`~repro.errors.SanitizerError` is raised when any
    error-severity diagnostic was found.
    """
    diagnostics: List[Diagnostic] = []
    if paths:
        diagnostics.extend(StaticSanitizer().check_paths(paths))
    if workload is not None:
        # Imported here: repro.workloads imports this package's consumers.
        from repro.workloads.base import Workload

        if spec is None:
            from repro.sim.machine import machine_b_fast

            spec = machine_b_fast()
        sanitizer = Sanitizer(thresholds=thresholds)
        if isinstance(workload, Workload):
            workload.run(spec, patches=patches, seed=seed, sanitize=sanitizer)
            diagnostics.extend(sanitizer.diagnostics())
        elif callable(workload):
            program = workload(spec)
            program.machine.attach_sanitizer(sanitizer)
            program.run()
            diagnostics.extend(sanitizer.diagnostics())
        else:
            raise TypeError(
                f"workload must be a Workload or a program factory, got {type(workload)!r}"
            )
    diagnostics = sort_diagnostics(diagnostics)
    if check and any(d.severity == "error" for d in diagnostics):
        raise SanitizerError(tuple(diagnostics))
    return diagnostics
