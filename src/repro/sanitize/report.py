"""Paper-style rendering of sanitizer findings.

The output mirrors the DirtBuster report blocks of Section 7 (function
header, ``Location:`` line, one fact per line) so the two tools read as
one suite::

    error: race.visibility (3x)
    listing2_loop()
    Location: microbench.c line 120
    Core 1 read line 0x4a2 @ instr 812
    Partner: listing2_writer() microbench.c line 96
    read observes stale data: ...
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.dirtbuster.report import format_distance
from repro.errors import Diagnostic, SEVERITIES

__all__ = ["render_diagnostic", "render_report", "summary_line"]


def render_diagnostic(diag: Diagnostic) -> str:
    """One report block for one finding."""
    times = f" ({diag.count}x)" if diag.count > 1 else ""
    lines = [f"{diag.severity}: {diag.rule}{times}"]
    site = diag.site
    if site is not None:
        function = getattr(site, "function", None)
        if function is not None:
            lines.append(f"{function}()")
            lines.append(f"Location: {getattr(site, 'file', '?')} line {getattr(site, 'line', 0)}")
        else:
            lines.append(f"Location: {site}")
    facts: List[str] = []
    if diag.core_id is not None:
        facts.append(f"Core {diag.core_id}")
    if diag.cache_line is not None:
        facts.append(f"line {diag.cache_line:#x}")
    if diag.instr_index is not None:
        facts.append(f"@ instr {format_distance(float(diag.instr_index))}")
    if facts:
        lines.append(" ".join(facts))
    for other in diag.related:
        function = getattr(other, "function", None)
        if function is not None:
            lines.append(
                f"Partner: {function}() {getattr(other, 'file', '?')} "
                f"line {getattr(other, 'line', 0)}"
            )
        else:
            lines.append(f"Partner: {other}")
    lines.append(diag.message)
    return "\n".join(lines)


def summary_line(diagnostics: Sequence[Diagnostic]) -> str:
    """``2 errors, 1 warning (4 occurrences)`` — or the all-clear."""
    if not diagnostics:
        return "sanitize: clean (no diagnostics)"
    by_severity: Dict[str, int] = {}
    occurrences = 0
    for diag in diagnostics:
        by_severity[diag.severity] = by_severity.get(diag.severity, 0) + 1
        occurrences += diag.count
    parts = [
        f"{by_severity[sev]} {sev}{'s' if by_severity[sev] != 1 else ''}"
        for sev in SEVERITIES
        if sev in by_severity
    ]
    plural = "s" if occurrences != 1 else ""
    return f"sanitize: {', '.join(parts)} ({occurrences} occurrence{plural})"


def render_report(diagnostics: Iterable[Diagnostic]) -> str:
    """Concatenated blocks plus the trailing summary line."""
    diagnostics = list(diagnostics)
    blocks = [render_diagnostic(d) for d in diagnostics]
    blocks.append(summary_line(diagnostics))
    return "\n\n".join(blocks)
