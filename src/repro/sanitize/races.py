"""Pass 1: FastTrack-style happens-before and store-visibility races.

The detector consumes the same event stream DirtBuster traces (it is a
:class:`~repro.sim.machine.Tracer` subscriber) and maintains one vector
clock per core.  Cross-core edges come from the synchronisation the
workload API can express:

* POST publishes the posting core's clock under a mailbox key; the
  matching WAIT joins it (message-passing order);
* an ATOMIC read-modify-write releases the executing core's clock into
  the target line and acquires whatever the previous ATOMIC on that line
  released (lock order — CLHT's bucket locks, X9's CAS publications).

Two conflicting accesses (same cache line, different cores, at least one
a store) that are unordered by those edges are a data race, reported
FastTrack-style as the first unordered pair per (rule, site, site).

One hybrid refinement (the classic vector-clock + Eraser-lockset
combination): the simulator's scheduler interleaves threads by time and
does not *enforce* mutual exclusion, so a workload's paired lock/unlock
atomics on one line are tracked as a held-lock toggle, and conflicting
accesses whose locksets intersect are not reported — CLHT's bucket
criticals race in simulated time but not in the modelled program.

Accesses built with ``relaxed=True`` (CLHT's lock-free bucket reads,
Masstree's version-validated node reads) are treated like C11 atomics:
races involving them are intentional and never reported.

On top of happens-before the pass checks *visibility*: a READ of a line
whose latest store is still parked, round-trip-unstarted, in another
core's weak-model store buffer observes stale data even when a mailbox
edge orders the two instructions.  This is exactly the bug class Machine
B's delayed-visibility model creates (Section 4.2): the fix is a fence
or a demote pre-store between the write and the publication.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import Diagnostic
from repro.sim.event import STREAM_KINDS, CodeSite, Event, EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

__all__ = ["RaceDetector"]

#: A vector clock: core id -> latest known event count of that core.
VectorClock = Dict[int, int]


def _join(into: VectorClock, other: Optional[VectorClock]) -> None:
    if not other:
        return
    for core, clock in other.items():
        if into.get(core, 0) < clock:
            into[core] = clock


class _Access:
    """One remembered access to a line (the potential race partner)."""

    __slots__ = ("core_id", "clock", "site", "instr_index", "locks", "relaxed")

    def __init__(
        self,
        core_id: int,
        clock: int,
        site: CodeSite,
        instr_index: int,
        locks: FrozenSet[int] = frozenset(),
        relaxed: bool = False,
    ) -> None:
        self.core_id = core_id
        self.clock = clock
        self.site = site
        self.instr_index = instr_index
        self.locks = locks
        self.relaxed = relaxed


class _LineState:
    """FastTrack per-line metadata: last write epoch + reads since."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        self.write: Optional[_Access] = None
        #: core id -> latest read since the last write.
        self.reads: Dict[int, _Access] = {}


class _Finding:
    """Aggregated occurrences of one (rule, site pair)."""

    __slots__ = ("diag", "count")

    def __init__(self, diag: Diagnostic) -> None:
        self.diag = diag
        self.count = 1


class RaceDetector:
    """Vector-clock happens-before + store-visibility checker."""

    #: Per-access state (epochs, locksets, parked-store sites) needs every
    #: individual access; the machine unrolls batched streams for us, and
    #: :meth:`record` expands any stream that still arrives (defense in
    #: depth for batch-aware fan-out wrappers).
    accepts_streams = False

    def __init__(self) -> None:
        self._machine: Optional["Machine"] = None
        self._vc: Dict[int, VectorClock] = {}
        #: (id(mailbox), key) -> joined clock of every POST so far.
        self._mail: Dict[Tuple[int, object], VectorClock] = {}
        #: line -> clock released by the last ATOMIC on that line.
        self._released: Dict[int, VectorClock] = {}
        #: core id -> lock lines currently held (paired-atomic toggling).
        self._held: Dict[int, Set[int]] = {}
        self._lines: Dict[int, _LineState] = {}
        #: (core, line) -> site/instr of that core's latest store (for
        #: attributing visibility races to the parked write).
        self._store_sites: Dict[Tuple[int, int], Tuple[CodeSite, int]] = {}
        self._findings: Dict[Tuple[str, str, str], _Finding] = {}
        self._line_size = 64

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        """Bind to the machine whose store buffers we may introspect."""
        self._machine = machine
        self._line_size = machine.line_size

    # -- vector-clock plumbing -------------------------------------------------

    def _clock_of(self, core_id: int) -> VectorClock:
        vc = self._vc.get(core_id)
        if vc is None:
            vc = {core_id: 0}
            self._vc[core_id] = vc
        return vc

    def _ordered_before(self, access: _Access, vc: VectorClock) -> bool:
        """True when ``access`` happens-before the holder of ``vc``."""
        return access.clock <= vc.get(access.core_id, 0)

    # -- reporting ------------------------------------------------------------

    def _report(
        self,
        rule: str,
        message: str,
        event: Event,
        core_id: int,
        line: int,
        instr_index: int,
        other: Optional[CodeSite] = None,
    ) -> None:
        key = (rule, str(event.site), str(other) if other is not None else "")
        finding = self._findings.get(key)
        if finding is not None:
            finding.count += 1
            return
        diag = Diagnostic(
            rule=rule,
            severity="error",
            message=message,
            site=event.site,
            related=(other,) if other is not None else (),
            addr=event.addr,
            cache_line=line,
            core_id=core_id,
            instr_index=instr_index,
        )
        self._findings[key] = _Finding(diag)

    def diagnostics(self) -> List[Diagnostic]:
        """The aggregated findings, first-occurrence order."""
        out = []
        for finding in self._findings.values():
            diag = finding.diag
            if finding.count > 1:
                diag = replace(diag, count=finding.count)
            out.append(diag)
        return out

    # -- the tracer entry point ------------------------------------------------

    def record(self, core_id: int, event: Event, instr_index: int, cycles: float) -> None:
        if event.kind in STREAM_KINDS:
            # The batched fast path must not bypass race detection: expand
            # to the per-access sequence the scheduler would have unrolled,
            # one retired instruction per access.
            for offset, access in enumerate(event.accesses()):
                self.record(core_id, access, instr_index + offset, cycles)
            return
        vc = self._clock_of(core_id)
        vc[core_id] = vc.get(core_id, 0) + 1
        kind = event.kind
        if kind is EventKind.POST:
            key = (id(event.mailbox), event.sync_key)
            snapshot = self._mail.setdefault(key, {})
            _join(snapshot, vc)
        elif kind is EventKind.WAIT:
            self._sync_acquire(vc, self._mail.get((id(event.mailbox), event.sync_key)))
        elif kind is EventKind.READ:
            self._on_read(core_id, event, vc, instr_index)
        elif kind is EventKind.WRITE:
            self._on_write(core_id, event, vc, instr_index)
        elif kind is EventKind.ATOMIC:
            self._on_atomic(core_id, event, vc, instr_index)
        # COMPUTE, FENCE and PRESTORE only tick the local clock: a fence
        # orders nothing across cores by itself (visibility is checked
        # against the live store buffers instead).

    def _sync_acquire(self, vc: VectorClock, released: Optional[VectorClock]) -> None:
        _join(vc, released)

    # -- access checks ---------------------------------------------------------

    def _state(self, line: int) -> _LineState:
        state = self._lines.get(line)
        if state is None:
            state = _LineState()
            self._lines[line] = state
        return state

    def _on_read(self, core_id: int, event: Event, vc: VectorClock, instr_index: int) -> None:
        locks = self._lockset(core_id)
        for line in event.lines(self._line_size):
            if not event.relaxed:
                self._check_visibility(core_id, event, line, instr_index)
            state = self._state(line)
            write = state.write
            if (
                write is not None
                and write.core_id != core_id
                and not self._ordered_before(write, vc)
                and not (write.locks & locks)
                and not (event.relaxed or write.relaxed)
            ):
                self._report(
                    "race.write-read",
                    f"read is unordered with the write by core {write.core_id} "
                    f"at {write.site}",
                    event,
                    core_id,
                    line,
                    instr_index,
                    other=write.site,
                )
            state.reads[core_id] = _Access(
                core_id, vc[core_id], event.site, instr_index, locks, event.relaxed
            )

    def _on_write(self, core_id: int, event: Event, vc: VectorClock, instr_index: int) -> None:
        for line in event.lines(self._line_size):
            self._check_write(core_id, event, vc, line, instr_index)
        self._note_store(core_id, event)

    def _on_atomic(self, core_id: int, event: Event, vc: VectorClock, instr_index: int) -> None:
        held = self._held.setdefault(core_id, set())
        for line in event.lines(self._line_size):
            # Paired atomics on one line are the lock/unlock idiom (CLHT
            # bucket locks, Masstree leaf versions): toggle held state so
            # the lockset check sees the critical section.  An unlock is
            # still *inside* its critical section — the lock is dropped
            # only after this event's own access is checked and recorded.
            acquiring = line not in held
            if acquiring:
                held.add(line)
            # Acquire whatever the previous atomic on this line released
            # *before* the conflict check: lock-ordered critical sections
            # are not races.
            self._sync_acquire(vc, self._released.get(line))
            self._check_write(core_id, event, vc, line, instr_index)
            released = self._released.setdefault(line, {})
            _join(released, vc)
            if not acquiring:
                held.discard(line)
        # The drain that accompanies an atomic makes this core's earlier
        # stores visible; forget their parked-site bookkeeping.
        self._forget_stores(core_id)

    def _lockset(self, core_id: int) -> FrozenSet[int]:
        held = self._held.get(core_id)
        return frozenset(held) if held else frozenset()

    def _check_write(
        self, core_id: int, event: Event, vc: VectorClock, line: int, instr_index: int
    ) -> None:
        locks = self._lockset(core_id)
        relaxed = event.relaxed
        state = self._state(line)
        write = state.write
        if (
            write is not None
            and write.core_id != core_id
            and not self._ordered_before(write, vc)
            and not (write.locks & locks)
            and not (relaxed or write.relaxed)
        ):
            self._report(
                "race.write-write",
                f"write is unordered with the write by core {write.core_id} "
                f"at {write.site}",
                event,
                core_id,
                line,
                instr_index,
                other=write.site,
            )
        for read in state.reads.values():
            if (
                read.core_id != core_id
                and not self._ordered_before(read, vc)
                and not (read.locks & locks)
                and not (relaxed or read.relaxed)
            ):
                self._report(
                    "race.read-write",
                    f"write is unordered with the read by core {read.core_id} "
                    f"at {read.site}",
                    event,
                    core_id,
                    line,
                    instr_index,
                    other=read.site,
                )
        state.write = _Access(core_id, vc[core_id], event.site, instr_index, locks, relaxed)
        state.reads.clear()

    # -- visibility races -------------------------------------------------------

    def _note_store(self, core_id: int, event: Event) -> None:
        for line in event.lines(self._line_size):
            self._store_sites[(core_id, line)] = (event.site, 0)

    def _forget_stores(self, core_id: int) -> None:
        for key in [k for k in self._store_sites if k[0] == core_id]:
            del self._store_sites[key]

    def _check_visibility(self, core_id: int, event: Event, line: int, instr_index: int) -> None:
        """Flag reads of a line parked invisible in another core's buffer.

        A parked store (``visibility_of == inf``) has not even started its
        round trip to a globally visible level — only the weak model parks
        stores — so this read observed the *old* data no matter what
        mailbox edge ordered the instructions.
        """
        machine = self._machine
        if machine is None:
            return
        for core in machine.cores:
            if core.core_id == core_id:
                continue
            if core.store_buffer.visibility_of(line) == math.inf:
                writer = self._store_sites.get((core.core_id, line))
                writer_site = writer[0] if writer is not None else None
                self._report(
                    "race.visibility",
                    f"read observes stale data: the latest write by core "
                    f"{core.core_id} is still parked invisible in its store "
                    f"buffer (weak model); fence or demote the line before "
                    f"publishing",
                    event,
                    core_id,
                    line,
                    instr_index,
                    other=writer_site,
                )
