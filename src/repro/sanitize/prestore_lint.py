"""Pass 2: pre-store misuse detection over the simulated event stream.

DirtBuster (Section 6.2.3) *recommends* pre-store placements; this pass
*checks* them.  It replays the run through the same distance machinery
DirtBuster uses (:class:`~repro.dirtbuster.distances.DistanceTracker`,
:class:`~repro.dirtbuster.recommend.Thresholds`) and flags the misuse
classes the paper documents:

``prestore.hot-rewrite``
    A ``clean`` (or a non-temporal "skip" store) hit a line that was
    rewritten shortly after — the Listing 3 / ``fftz2`` pathology, where
    every cache write becomes a memory write (~75x, Section 5).
``prestore.demote-after-fence``
    A ``demote`` issued after the fence that already forced its write
    visible: the round trip it was meant to overlap has been paid.
``prestore.skip-reread``
    Non-temporally written data re-read within the re-read horizon; the
    cached copy was invalidated, so the read pays device latency.
``prestore.unwritten``
    A pre-store on lines no core ever wrote — dead code at best.

Rate gates (``min_count`` / ``min_share``) keep the pass quiet about the
incidental collisions every random-index workload produces: Listing 1's
occasional back-to-back hit on the same element is not misuse, Listing
3's every-iteration rewrite is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.prestore import PrestoreOp
from repro.dirtbuster.distances import DistanceTracker
from repro.dirtbuster.recommend import Thresholds
from repro.errors import Diagnostic
from repro.sim.event import STREAM_KINDS, CodeSite, Event, EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

__all__ = ["PrestoreLint"]


@dataclass
class _SiteTally:
    """Occurrence counting for one (rule, site) pair."""

    site: CodeSite
    violations: int = 0
    opportunities: int = 0
    distance_sum: float = 0.0
    first_instr: Optional[int] = None
    example_addr: Optional[int] = None
    example_line: Optional[int] = None
    core_id: Optional[int] = None
    related: Tuple[CodeSite, ...] = ()

    def hit(
        self,
        instr_index: int,
        addr: int,
        line: int,
        core_id: int,
        distance: float = 0.0,
        related: Optional[CodeSite] = None,
    ) -> None:
        self.violations += 1
        self.distance_sum += distance
        if self.first_instr is None:
            self.first_instr = instr_index
            self.example_addr = addr
            self.example_line = line
            self.core_id = core_id
            if related is not None:
                self.related = (related,)

    @property
    def mean_distance(self) -> float:
        return self.distance_sum / self.violations if self.violations else 0.0


class PrestoreLint:
    """Replays the event stream and flags pre-store misuse."""

    #: Distance tracking and the clean/nt recency maps are per-access;
    #: the machine unrolls batched streams for us, and :meth:`record`
    #: expands any stream that still arrives (defense in depth for
    #: batch-aware fan-out wrappers).
    accepts_streams = False

    def __init__(
        self,
        thresholds: Optional[Thresholds] = None,
        min_count: int = 4,
        min_share: float = 0.05,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        #: A rate-gated rule fires only after this many violations ...
        self.min_count = min_count
        #: ... making up at least this share of the site's opportunities.
        self.min_share = min_share
        self._line_size = 64
        self.distances = DistanceTracker(self._line_size)
        #: line -> (instr, site) of the latest CLEAN pre-store.
        self._cleaned: Dict[int, Tuple[int, CodeSite]] = {}
        #: line -> (instr, site) of the latest non-temporal store.
        self._nt_written: Dict[int, Tuple[int, CodeSite]] = {}
        self._nt_lines: Set[int] = set()
        self._nt_lines_reread: Set[int] = set()
        #: per-core write/fence recency for the demote-after-fence rule.
        self._last_write: Dict[int, Dict[int, int]] = {}
        self._last_fence: Dict[int, Tuple[int, CodeSite]] = {}
        self._written_lines: Set[int] = set()
        self._tallies: Dict[Tuple[str, str], _SiteTally] = {}
        #: pre-store issue counts per site (the hot-rewrite denominator).
        self._prestores_at: Dict[str, int] = {}
        self._nt_writes_at: Dict[str, int] = {}

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        self._line_size = machine.line_size
        self.distances = DistanceTracker(machine.line_size)

    # -- tallying -------------------------------------------------------------

    def _tally(self, rule: str, site: CodeSite) -> _SiteTally:
        key = (rule, str(site))
        tally = self._tallies.get(key)
        if tally is None:
            tally = _SiteTally(site=site)
            self._tallies[key] = tally
        return tally

    # -- the tracer entry point ------------------------------------------------

    def record(self, core_id: int, event: Event, instr_index: int, cycles: float) -> None:
        kind = event.kind
        if kind in STREAM_KINDS:
            # The batched fast path must not bypass the lint: expand to
            # the per-access sequence the scheduler would have unrolled,
            # one retired instruction per access.
            for offset, access in enumerate(event.accesses()):
                self.record(core_id, access, instr_index + offset, cycles)
            return
        if kind is EventKind.WRITE:
            self._on_write(core_id, event, instr_index)
        elif kind is EventKind.READ:
            self._on_read(core_id, event, instr_index)
        elif kind is EventKind.PRESTORE:
            self._on_prestore(core_id, event, instr_index)
        elif kind is EventKind.ATOMIC:
            self._on_fence(core_id, event, instr_index)
            for line in event.lines(self._line_size):
                self._written_lines.add(line)
            self.distances.observe_write(
                core_id, event.site.function, event.addr, event.size, instr_index
            )
        elif kind is EventKind.FENCE and event.has_fence_semantics:
            self._on_fence(core_id, event, instr_index)

    # -- event handlers ---------------------------------------------------------

    def _on_write(self, core_id: int, event: Event, instr_index: int) -> None:
        self.distances.observe_write(
            core_id, event.site.function, event.addr, event.size, instr_index
        )
        writes = self._last_write.setdefault(core_id, {})
        for line in event.lines(self._line_size):
            self._written_lines.add(line)
            writes[line] = instr_index
            cleaned = self._cleaned.pop(line, None)
            if cleaned is not None:
                clean_instr, clean_site = cleaned
                distance = instr_index - clean_instr
                if distance <= self.thresholds.hot_rewrite:
                    self._tally("prestore.hot-rewrite", clean_site).hit(
                        instr_index, event.addr, line, core_id, distance, event.site
                    )
            if event.nontemporal:
                nt = self._nt_written.get(line)
                if nt is not None and instr_index - nt[0] <= self.thresholds.hot_rewrite:
                    self._tally("prestore.hot-rewrite", nt[1]).hit(
                        instr_index, event.addr, line, core_id, instr_index - nt[0], event.site
                    )
                self._nt_written[line] = (instr_index, event.site)
                self._nt_lines.add(line)
                site_key = str(event.site)
                self._nt_writes_at[site_key] = self._nt_writes_at.get(site_key, 0) + 1
            else:
                self._nt_written.pop(line, None)

    def _on_read(self, core_id: int, event: Event, instr_index: int) -> None:
        self.distances.observe_read(core_id, event.addr, event.size, instr_index)
        for line in event.lines(self._line_size):
            nt = self._nt_written.get(line)
            if nt is None:
                continue
            nt_instr, nt_site = nt
            distance = instr_index - nt_instr
            if distance <= self.thresholds.reuse_horizon:
                self._nt_lines_reread.add(line)
                self._tally("prestore.skip-reread", nt_site).hit(
                    instr_index, event.addr, line, core_id, distance, event.site
                )

    def _on_fence(self, core_id: int, event: Event, instr_index: int) -> None:
        self._last_fence[core_id] = (instr_index, event.site)

    def _on_prestore(self, core_id: int, event: Event, instr_index: int) -> None:
        site_key = str(event.site)
        self._prestores_at[site_key] = self._prestores_at.get(site_key, 0) + 1
        lines = list(event.lines(self._line_size))
        if not any(line in self._written_lines or line in self._nt_lines for line in lines):
            self._tally("prestore.unwritten", event.site).hit(
                instr_index, event.addr, lines[0] if lines else 0, core_id
            )
            return
        for line in lines:
            if event.op is PrestoreOp.CLEAN:
                self._cleaned[line] = (instr_index, event.site)
            elif event.op is PrestoreOp.DEMOTE:
                self._check_demote(core_id, event, line, instr_index)

    def _check_demote(self, core_id: int, event: Event, line: int, instr_index: int) -> None:
        last_write = self._last_write.get(core_id, {}).get(line)
        fence = self._last_fence.get(core_id)
        if last_write is None or fence is None:
            return
        fence_instr, fence_site = fence
        if fence_instr > last_write:
            self._tally("prestore.demote-after-fence", event.site).hit(
                instr_index, event.addr, line, core_id, instr_index - fence_instr, fence_site
            )

    # -- diagnostics -------------------------------------------------------------

    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for (rule, site_key), tally in self._tallies.items():
            if rule == "prestore.hot-rewrite":
                issued = self._prestores_at.get(site_key, 0) + self._nt_writes_at.get(site_key, 0)
                stats = self.distances.stats(tally.site.function)
                # Gate on DirtBuster's own criterion: the *mean* rewrite
                # distance of the function's data must be hot.  Random-index
                # workloads (Listing 1) produce occasional short rewrites
                # but a large mean; Listing 3's every-iteration rewrite
                # collapses the mean far below the threshold.
                if (
                    tally.violations < self.min_count
                    or stats.mean_rewrite_distance > self.thresholds.hot_rewrite
                ):
                    continue
                message = (
                    f"clean/skip hits a hot line: rewritten ~{tally.mean_distance:.0f} "
                    f"instructions later on average ({tally.violations} of {issued} "
                    f"pre-stored lines; function mean rewrite distance "
                    f"{stats.mean_rewrite_distance:.0f}); every rewrite becomes a "
                    f"memory write — drop the pre-store (Listing 3)"
                )
                severity = "error"
            elif rule == "prestore.skip-reread":
                written = len(self._nt_lines) or 1
                reread = len(self._nt_lines_reread)
                if tally.violations < self.min_count or reread / written < self.min_share:
                    continue
                message = (
                    f"non-temporally written data is re-read ~{tally.mean_distance:.0f} "
                    f"instructions later ({reread} of {written} skipped lines): the "
                    f"cached copy was invalidated, so each re-read pays device "
                    f"latency — prefer clean for re-used data"
                )
                severity = "warning"
            elif rule == "prestore.demote-after-fence":
                message = (
                    f"demote issued ~{tally.mean_distance:.0f} instructions after the "
                    f"fence that already forced its write visible: the round trip it "
                    f"should overlap has been paid — move the demote before the fence"
                )
                severity = "warning"
            elif rule == "prestore.unwritten":
                message = (
                    "pre-store targets lines no core ever wrote: it moves nothing "
                    "and costs a cycle per line — dead code"
                )
                severity = "warning"
            else:  # pragma: no cover - exhaustive over emitted rules
                continue
            out.append(
                Diagnostic(
                    rule=rule,
                    severity=severity,
                    message=message,
                    site=tally.site,
                    related=tally.related,
                    addr=tally.example_addr,
                    cache_line=tally.example_line,
                    core_id=tally.core_id,
                    instr_index=tally.first_instr,
                    count=tally.violations,
                )
            )
        return out
