"""The X9 message-passing benchmark (paper ref. [17], Section 7.3.2).

X9 passes fixed-size messages through a ring of reusable inbox slots: the
producer fills a message structure (``fill_msg``), then publishes it with
a compare-and-swap on the slot header (``x9_write_to_inbox``); the
consumer polls headers, reads the message, and CASes the slot free.

Two paper-relevant properties:

* messages are *re-used* ("X9 reuses the message structures to avoid the
  overheads of allocations on every message exchange") — so DirtBuster
  sees a finite re-write distance and recommends **demote**, not clean;
* the fill is immediately followed by an instruction with fence
  semantics (the CAS), so without a pre-store the message is published
  "at the last minute" inside the CAS.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Mailbox, Program, Region, ThreadCtx

__all__ = ["X9Workload"]

#: Per-slot header: sequence word the producer/consumer CAS on.
_HEADER_BYTES = 8


class X9Workload(Workload):
    """One producer, one consumer, a ring of reusable message slots."""

    name = "x9"
    default_threads = 2

    SITE = PatchSite(
        name="x9.fill_msg",
        function="fill_msg",
        file="x9.c",
        line=201,
        description="the filled message structure (Listing 8)",
    )

    def __init__(
        self,
        messages: int = 2000,
        message_size: int = 512,
        ring_slots: int = 8,
        consumer_work: int = 400,
        producer_work: int = 400,
    ) -> None:
        if messages <= 0 or message_size <= 0 or ring_slots <= 0:
            raise WorkloadError("x9 parameters must be positive")
        self.messages = messages
        self.message_size = message_size
        self.ring_slots = ring_slots
        #: Instructions each side spends handling one message (parsing /
        #: producing payload) — the useful work a demote overlaps with.
        self.consumer_work = consumer_work
        self.producer_work = producer_work

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        mode = patches.mode(self.SITE.name)
        line = program.machine.line_size
        # Header occupies its own cache line (X9 pads to avoid false
        # sharing between the flag the CAS hits and the payload).
        payload_span = (self.message_size + line - 1) // line * line
        slot_stride = line + payload_span
        ring = program.allocator.alloc(self.ring_slots * slot_stride, label="x9_inbox", align=line)
        mailbox = Mailbox()
        self._line = line
        program.spawn(self._producer, program, ring, slot_stride, mode, mailbox)
        program.spawn(self._consumer, program, ring, slot_stride, mailbox)

    # -- slot layout -------------------------------------------------------

    def _header_addr(self, ring: Region, slot_stride: int, slot: int) -> int:
        return ring.addr(slot * slot_stride)

    def _payload_addr(self, ring: Region, slot_stride: int, slot: int) -> int:
        return ring.addr(slot * slot_stride + self._line)

    # -- threads ----------------------------------------------------------------

    def _producer(
        self,
        t: ThreadCtx,
        program: Program,
        ring: Region,
        slot_stride: int,
        mode: PrestoreMode,
        mailbox: Mailbox,
    ) -> Iterator[Event]:
        for i in range(self.messages):
            slot = i % self.ring_slots
            payload = self._payload_addr(ring, slot_stride, slot)
            with t.function("producer_fn", file="x9_bench.c", line=55):
                yield t.compute(self.producer_work)  # produce the payload
                if i >= self.ring_slots:
                    # Spin until the consumer released this slot before
                    # refilling it — without this order the fill races
                    # with the consumer still reading the previous
                    # message (caught by repro.sanitize).
                    yield t.wait(mailbox, ("released", i - self.ring_slots))
            with t.function("fill_msg", file="x9.c", line=201):
                yield from t.write_block(payload, self.message_size)
                if mode.op is not None:
                    yield t.prestore(payload, self.message_size, mode.op)
            with t.function("x9_write_to_inbox", file="x9.c", line=255):
                # Re-check the slot header (the consumer wrote it last, so
                # this read pulls the line across the machine).
                yield t.read(self._header_addr(ring, slot_stride, slot), 8)
                yield t.compute(6)  # bounds/sequence checks
                yield t.atomic(self._header_addr(ring, slot_stride, slot), 8)
                yield t.post(mailbox, ("published", i))
            program.add_work(1)

    def _consumer(
        self, t: ThreadCtx, program: Program, ring: Region, slot_stride: int, mailbox: Mailbox
    ) -> Iterator[Event]:
        for i in range(self.messages):
            slot = i % self.ring_slots
            with t.function("x9_read_from_inbox", file="x9.c", line=310):
                yield t.wait(mailbox, ("published", i))
                yield t.read(self._header_addr(ring, slot_stride, slot), 8)
                yield t.read(self._payload_addr(ring, slot_stride, slot), self.message_size)
                yield t.atomic(self._header_addr(ring, slot_stride, slot), 8)  # release
                yield t.post(mailbox, ("released", i))
            with t.function("consumer_fn", file="x9_bench.c", line=91):
                yield t.compute(self.consumer_work)
