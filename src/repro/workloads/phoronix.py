"""Stand-ins for the non-write-intensive Phoronix applications (Table 2).

The paper ran a subset of the Phoronix suite and found that pytorch,
numpy, lzma, c-ray, arrayfire, build-kernel, build-gcc, gzip, go-bench
and rust-prime "spend less than 10% of their time issuing store
instructions", so DirtBuster stops at step 1 for them.  These stand-ins
exist to make that filter real: each emits a read/compute-dominated
event stream in one of a few characteristic flavours, with a store share
safely below the threshold.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.core.prestore import PatchConfig, PatchSite
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Program, ThreadCtx

__all__ = ["ReadMostlyWorkload", "PHORONIX_APPS", "make_phoronix_suite"]

#: (name, flavour) pairs for the paper's Table 2 "not write-intensive" rows.
PHORONIX_APPS: Tuple[Tuple[str, str], ...] = (
    ("pytorch", "stream"),
    ("numpy", "stream"),
    ("lzma", "pointer"),
    ("c-ray", "compute"),
    ("arrayfire", "stream"),
    ("build-kernel", "pointer"),
    ("build-gcc", "pointer"),
    ("gzip", "stream"),
    ("go-bench", "compute"),
    ("rust-prime", "compute"),
)

_FLAVOURS = ("stream", "pointer", "compute")


class ReadMostlyWorkload(Workload):
    """A read/compute-dominated application.

    Flavours:

    * ``stream`` — long sequential reads with occasional reduction
      writes (numpy/pytorch-style kernels);
    * ``pointer`` — dependent random reads with rare writes (compilers,
      compressors chasing hash chains);
    * ``compute`` — ALU-bound with sparse memory traffic (ray tracing,
      primality loops).
    """

    default_threads = 2

    def __init__(self, name: str, flavour: str = "stream", scale: int = 400) -> None:
        if flavour not in _FLAVOURS:
            raise WorkloadError(f"unknown flavour {flavour!r}; choose from {_FLAVOURS}")
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        self.name = name
        self.flavour = flavour
        self.scale = scale

    def patch_sites(self) -> Sequence[PatchSite]:
        return ()

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        for _ in range(self.default_threads):
            program.spawn(self._body, program)

    def _body(self, t: ThreadCtx, program: Program) -> Iterator[Event]:
        data = t.alloc(1 << 20, label=f"{self.name}_data")
        out = t.alloc(1 << 12, label=f"{self.name}_out")
        lines = data.size // 64
        for i in range(self.scale):
            with t.function(f"{self.name}_kernel", file=f"{self.name}.c", line=100):
                if self.flavour == "stream":
                    base = (i * 4096) % (data.size - 4096)
                    yield t.read(data.addr(base), 4096)
                    yield t.compute(256)
                    if i % 32 == 0:
                        yield t.write(out.addr((i // 32 * 8) % out.size), 8)
                elif self.flavour == "pointer":
                    for _ in range(24):
                        yield t.read(data.addr(t.rng.randrange(lines) * 64), 8)
                        yield t.compute(12)
                    if i % 8 == 0:
                        yield t.write(out.addr((i // 8 * 8) % out.size), 8)
                else:  # compute
                    yield t.compute(600)
                    yield t.read(data.addr(t.rng.randrange(lines) * 64), 8)
                    if i % 32 == 0:
                        yield t.write(out.addr((i // 32 * 8) % out.size), 8)
            program.add_work(1)


def make_phoronix_suite(scale: int = 400) -> Tuple[ReadMostlyWorkload, ...]:
    """The ten Table 2 non-write-intensive applications."""
    return tuple(ReadMostlyWorkload(name, flavour, scale) for name, flavour in PHORONIX_APPS)
