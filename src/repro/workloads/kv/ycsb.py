"""YCSB workload generation: key distributions and operation mixes.

Implements the pieces of the Yahoo! Cloud Serving Benchmark the paper
uses (Sections 7.2.3 and 7.3.1): the zipfian request-key distribution
(Gray et al.'s incremental algorithm, as in the YCSB reference
implementation) and the standard A-D operation mixes:

* **A** — update heavy: 50% reads / 50% updates (the mix where the paper
  finds pre-store opportunities);
* **B** — read mostly: 95% reads / 5% updates;
* **C** — read only;
* **D** — read latest: 95% reads (skewed to recent keys) / 5% inserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import WorkloadError

__all__ = ["ZipfianGenerator", "YCSBSpec", "YCSB_MIXES", "OP_READ", "OP_UPDATE", "OP_INSERT"]

OP_READ = "read"
OP_UPDATE = "update"
OP_INSERT = "insert"

#: mix name -> (read fraction, update fraction, insert fraction)
YCSB_MIXES: Dict[str, Tuple[float, float, float]] = {
    "A": (0.50, 0.50, 0.00),
    "B": (0.95, 0.05, 0.00),
    "C": (1.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05),
}


class ZipfianGenerator:
    """Zipf-distributed integers in ``[0, n)`` (Gray et al.'s algorithm).

    ``theta`` = 0.99 is the YCSB default.  The generator is exact (not a
    rejection sampler) and O(1) per draw after an O(n)-ish zeta
    precomputation, which is memoised per (n, theta).
    """

    _zeta_cache: Dict[Tuple[int, float], float] = {}
    #: Per-theta prefix sums at every multiple of ``_ZETA_BLOCK``, built
    #: strictly in ascending order so each checkpoint's float value is a
    #: pure function of (theta, index) — never of which n was asked for
    #: first.  That keeps zeta (and so every zipfian draw) bit-identical
    #: across processes regardless of cell scheduling order.
    _zeta_blocks: Dict[float, List[float]] = {}
    _ZETA_BLOCK = 4096

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None) -> None:
        if n <= 0:
            raise WorkloadError(f"zipfian range must be positive, got {n}")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"zipfian theta must be in (0, 1), got {theta}")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0)
        self.zeta_n = self._zeta(n, theta)
        self.zeta_2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        # Gray et al.'s eta is undefined for n <= 2 (zeta_n == zeta_2);
        # those draws are fully handled by the two head branches below.
        if self.zeta_n > self.zeta_2:
            self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self.zeta_2 / self.zeta_n)
        else:
            self.eta = 0.0

    @classmethod
    def _zeta(cls, n: int, theta: float) -> float:
        key = (n, theta)
        cached = cls._zeta_cache.get(key)
        if cached is not None:
            return cached
        # Incremental zeta (Gray et al.): resume from the largest cached
        # prefix instead of re-summing the whole harmonic series.  The
        # accumulation order (ascending from i=1, left to right) matches
        # the old from-scratch sum exactly, so the result is the same
        # float bit for bit.
        block = cls._ZETA_BLOCK
        blocks = cls._zeta_blocks.setdefault(theta, [0.0])
        want = n // block
        while len(blocks) <= want:
            total = blocks[-1]
            for i in range((len(blocks) - 1) * block + 1, len(blocks) * block + 1):
                total += 1.0 / (i ** theta)
            blocks.append(total)
        total = blocks[want]
        for i in range(want * block + 1, n + 1):
            total += 1.0 / (i ** theta)
        cls._zeta_cache[key] = total
        return total

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return min(self.n - 1, int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha))

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()


@dataclass
class YCSBSpec:
    """One YCSB run configuration."""

    mix: str = "A"
    num_keys: int = 4096
    operations: int = 4000
    value_size: int = 1024
    theta: float = 0.99
    #: For mix D: the window of recent keys "read latest" draws from.
    latest_window: int = 64

    def __post_init__(self) -> None:
        if self.mix not in YCSB_MIXES:
            raise WorkloadError(f"unknown YCSB mix {self.mix!r}; choose from {sorted(YCSB_MIXES)}")
        if min(self.num_keys, self.operations, self.value_size) <= 0:
            raise WorkloadError("YCSB parameters must be positive")

    def operation_stream(
        self,
        rng: random.Random,
        operations: Optional[int] = None,
        insert_start: Optional[int] = None,
        insert_stride: int = 1,
    ) -> Iterator[Tuple[str, int]]:
        """Yield (op, key) pairs for one client thread.

        Concurrent clients pass disjoint ``insert_start``/``insert_stride``
        so inserted keys never collide (as YCSB's insert key chooser
        guarantees per client).  Mix D's read-latest window is measured
        in this client's own insert *steps*: reads land on keys this
        client actually inserted, falling back to the preloaded tail
        when the window reaches past its first insert.
        """
        read_frac, update_frac, insert_frac = YCSB_MIXES[self.mix]
        zipf = ZipfianGenerator(self.num_keys, theta=self.theta, rng=rng)
        next_insert_key = self.num_keys if insert_start is None else insert_start
        inserts_done = 0
        if operations is None:
            operations = self.operations
        for _ in range(operations):
            draw = rng.random()
            if draw < read_frac:
                if self.mix == "D":
                    back = min(zipf.next(), self.latest_window)
                    if back < inserts_done:
                        yield OP_READ, next_insert_key - (1 + back) * insert_stride
                    else:
                        yield OP_READ, max(0, self.num_keys - 1 - (back - inserts_done))
                else:
                    yield OP_READ, zipf.next()
            elif draw < read_frac + update_frac:
                yield OP_UPDATE, zipf.next()
            else:
                yield OP_INSERT, next_insert_key
                next_insert_key += insert_stride
                inserts_done += 1
