"""Value storage shared by the key-value stores.

Both CLHT and Masstree store values out of line: a PUT *crafts* the value
into a freshly allocated slot (sequential writes — the pattern DirtBuster
flags), then publishes a pointer to it under the index's synchronisation.
:class:`ValuePool` manages the slots; :func:`craft_value` emits the
crafting events under the patchable ``craft_value`` function label, which
is where the paper's Listing 6 one-line patch goes.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator

from repro.core.prestore import PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.memapi import Allocator, Region, ThreadCtx

__all__ = ["ValuePool", "craft_value"]


class ValuePool:
    """A pool of fixed-size value slots in simulated memory.

    Freed slots are recycled first (like a size-class allocator), so a
    long run keeps a bounded footprint; the pool refuses to overflow
    rather than silently aliasing live values.

    Two deliberate departures from a textbook bump allocator, both
    emulating the paper's scale (a 100 GB value heap) at our pool sizes:

    * fresh slots are handed out in a *shuffled* order — consecutive PUTs
      on a huge fragmented heap land at scattered addresses, not in one
      ascending stream (an ascending stream would make crafted values
      accidentally sequential at the device and hide write
      amplification);
    * fresh slots are preferred over recycled ones, and recycling is FIFO
      — on a 100 GB heap a freed slot is stone cold by the time it is
      reused, so handing the next PUT a just-freed (still cached, still
      dirty) slot would hide the write traffic the paper measures.
    """

    def __init__(
        self, allocator: Allocator, slots: int, value_size: int, seed: int = 7
    ) -> None:
        if slots <= 0 or value_size <= 0:
            raise WorkloadError("value pool needs positive slots and value size")
        self.value_size = value_size
        self.slots = slots
        self.region: Region = allocator.alloc(slots * value_size, label="value_pool")
        self._free: Deque[int] = deque()
        self._order = list(range(slots))
        random.Random(seed).shuffle(self._order)
        self._next = 0

    def alloc(self) -> int:
        """Allocate a slot index (fresh first, then FIFO recycling)."""
        if self._next < self.slots:
            slot = self._order[self._next]
            self._next += 1
            return slot
        if self._free:
            return self._free.popleft()
        raise WorkloadError(
            f"value pool exhausted ({self.slots} slots); size it to "
            "live keys + expected inserts"
        )

    def free(self, slot: int) -> None:
        self._free.append(slot)

    def addr(self, slot: int) -> int:
        """Base address of a slot's value bytes."""
        if not 0 <= slot < self.slots:
            raise WorkloadError(f"slot {slot} out of range 0..{self.slots - 1}")
        return self.region.addr(slot * self.value_size)


def craft_value(
    t: ThreadCtx, pool: ValuePool, slot: int, mode: PrestoreMode
) -> Iterator[Event]:
    """Write a value into ``slot`` under the ``craft_value`` label.

    ``mode`` selects the paper's variants: baseline stores, stores +
    clean/demote pre-store, or non-temporal stores (skip).
    """
    addr = pool.addr(slot)
    nontemporal = mode is PrestoreMode.SKIP
    with t.function("craft_value", file="ycsb.c", line=12):
        yield from t.write_block(addr, pool.value_size, nontemporal=nontemporal)
        if mode.op is not None:
            yield t.prestore(addr, pool.value_size, mode.op)
