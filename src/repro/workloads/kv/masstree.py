"""A Masstree-like B+-tree key-value store (paper ref. [31]).

Masstree's paper-relevant traits (Section 7.3.1, Listing 7):

* every node carries a **version word**; readers read the version, fence,
  read the node, fence, and re-read the version to detect concurrent
  changes — those fences are mandatory for correctness and stall the
  pipeline if crafted values have not been made visible yet;
* writers lock the node with an atomic, update, bump the version, unlock.

The implementation is a functional B+-tree (tests compare it against a
dict) whose structural accesses emit simulator events matching its memory
layout: 256 B nodes with a version word, key area, and pointer area,
allocated from a node pool in simulated memory.  Values live in the
shared :class:`~repro.workloads.kv.values.ValuePool` and are crafted
under the patchable ``craft_value`` label, exactly like CLHT.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.kv.values import ValuePool, craft_value
from repro.workloads.kv.ycsb import OP_READ, YCSBSpec
from repro.workloads.memapi import Allocator, Program, Region, ThreadCtx

__all__ = ["MasstreeStore", "MasstreeWorkload", "FANOUT"]

#: Maximum keys per node.
FANOUT = 14
#: Simulated node footprint: version+count header, keys, pointers.
NODE_SIZE = 256
_HDR = 16


class _Node:
    __slots__ = ("base", "keys", "children", "values", "leaf")

    def __init__(self, base: int, leaf: bool) -> None:
        self.base = base
        self.leaf = leaf
        self.keys: List[int] = []
        #: Internal nodes: child nodes (len(keys) + 1 of them).
        self.children: List["_Node"] = []
        #: Leaves: value slots, parallel to keys.
        self.values: List[int] = []

    @property
    def key_area(self) -> Tuple[int, int]:
        """(addr, size) of the key array."""
        return (self.base + _HDR, 8 * FANOUT)

    @property
    def version_addr(self) -> int:
        return self.base


class MasstreeStore:
    """The tree: simulated layout + functional shadow."""

    def __init__(self, allocator: Allocator, value_pool: ValuePool, capacity_nodes: int) -> None:
        if capacity_nodes <= 0:
            raise WorkloadError("masstree needs a positive node capacity")
        self.values = value_pool
        self._pool: Region = allocator.alloc(capacity_nodes * NODE_SIZE, label="masstree_nodes")
        self._capacity = capacity_nodes
        self._used = 0
        self.root = self._new_node(leaf=True)
        self.shadow: Dict[int, int] = {}

    # -- structure (no events) ---------------------------------------------

    def _new_node(self, leaf: bool) -> _Node:
        if self._used >= self._capacity:
            raise WorkloadError("masstree node pool exhausted; grow capacity_nodes")
        node = _Node(self._pool.addr(self._used * NODE_SIZE), leaf)
        self._used += 1
        return node

    def _path_to(self, key: int) -> List[_Node]:
        """Root-to-leaf path for ``key``."""
        path = [self.root]
        node = self.root
        while not node.leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
            path.append(node)
        return path

    def _split(self, path: List[_Node]) -> List[Tuple[_Node, _Node]]:
        """Split overfull nodes along ``path``; returns (old, new) pairs."""
        splits: List[Tuple[_Node, _Node]] = []
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.keys) <= FANOUT:
                break
            mid = len(node.keys) // 2
            sibling = self._new_node(leaf=node.leaf)
            if node.leaf:
                sep = node.keys[mid]
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
            else:
                sep = node.keys[mid]
                sibling.keys = node.keys[mid + 1 :]
                sibling.children = node.children[mid + 1 :]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]
            splits.append((node, sibling))
            if depth == 0:
                new_root = self._new_node(leaf=False)
                new_root.keys = [sep]
                new_root.children = [node, sibling]
                self.root = new_root
                splits.append((new_root, new_root))
            else:
                parent = path[depth - 1]
                i = bisect.bisect_right(parent.keys, sep)
                parent.keys.insert(i, sep)
                parent.children.insert(i + 1, sibling)
        return splits

    def _leaf_insert(self, leaf: _Node, key: int, slot: int) -> Optional[int]:
        """Insert/replace in a leaf; returns the replaced slot, if any."""
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            old = leaf.values[i]
            leaf.values[i] = slot
            return old
        leaf.keys.insert(i, key)
        leaf.values.insert(i, slot)
        return None

    def lookup(self, key: int) -> Optional[int]:
        """Pure lookup (no events): the value slot, or None."""
        leaf = self._path_to(key)[-1]
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return None

    def preload(self, key: int, slot: int) -> None:
        """Eventless insert (the excluded-from-measurement load phase)."""
        path = self._path_to(key)
        old = self._leaf_insert(path[-1], key, slot)
        if old is not None and old != slot:
            self.values.free(old)
        self._split(path)
        self.shadow[key] = slot

    def depth(self) -> int:
        node, d = self.root, 1
        while not node.leaf:
            node = node.children[0]
            d += 1
        return d

    # -- events for one node visit (Listing 7's protocol) -----------------------

    def _read_node(self, t: ThreadCtx, node: _Node) -> Iterator[Event]:
        # Listing 7's fences: these order the version read against the
        # node reads — acquire (load) fences on ARM, which do not drain
        # the store buffer.  The crafted value's visibility is forced by
        # the leaf lock's atomic.  The reads are ``relaxed``: version
        # validation makes this optimistic protocol racy by design.
        yield t.read(node.version_addr, 8, relaxed=True)  # v = node->readVersion()
        yield t.fence(scope="load")
        addr, size = node.key_area
        yield from t.read_block(addr, size, relaxed=True)
        yield t.compute(4)  # binary search
        yield t.fence(scope="load")
        yield t.read(node.version_addr, 8, relaxed=True)  # node->versionChanged(v)?

    # -- operations ---------------------------------------------------------------

    def get(self, t: ThreadCtx, key: int) -> Iterator[Event]:
        with t.function("masstree_get", file="masstree.cc", line=412):
            node = self.root
            while True:
                yield from self._read_node(t, node)
                if node.leaf:
                    break
                node = node.children[bisect.bisect_right(node.keys, key)]
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                slot = node.values[i]
                yield t.read(self.values.addr(slot), self.values.value_size, relaxed=True)

    def put(self, t: ThreadCtx, key: int, mode: PrestoreMode) -> Iterator[Event]:
        """Craft the value, then insert under Listing 7's protocol."""
        slot = self.values.alloc()
        yield from craft_value(t, self.values, slot, mode)
        with t.function("masstree_put", file="masstree.cc", line=534):
            path = self._path_to(key)
            for node in path:
                yield from self._read_node(t, node)
            leaf = path[-1]
            yield t.atomic(leaf.version_addr, 8)  # lock the leaf
            old = self._leaf_insert(leaf, key, slot)
            if old is not None and old != slot:
                self.values.free(old)
            self.shadow[key] = slot
            yield t.write(leaf.base + _HDR, 8)  # the key
            yield t.write(leaf.base + _HDR + 8 * FANOUT, 8)  # the value pointer
            for old_node, new_node in self._split(path):
                # Splits copy half the node: sequential reads + writes.
                addr, size = old_node.key_area
                yield from t.read_block(addr, size // 2)
                new_addr, new_size = new_node.key_area
                yield from t.write_block(new_addr, new_size // 2)
            yield t.write(leaf.version_addr, 8)  # bump version
            yield t.atomic(leaf.version_addr, 8)  # unlock


class MasstreeWorkload(Workload):
    """YCSB over Masstree (Figures 11, 14)."""

    name = "masstree"
    default_threads = 4

    SITE = PatchSite(
        name="masstree.craft_value",
        function="craft_value",
        file="ycsb.c",
        line=12,
        description="the crafted PUT value inserted under Listing 7's fences",
    )

    def __init__(
        self,
        spec: Optional[YCSBSpec] = None,
        threads: int = 4,
        op_overhead_instructions: int = 600,
    ) -> None:
        self.spec = spec or YCSBSpec()
        if threads <= 0:
            raise WorkloadError("threads must be positive")
        self.threads = threads
        #: Client-side work per request (YCSB driver, request parsing,
        #: response handling).
        self.op_overhead_instructions = op_overhead_instructions

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def _build_store(self, program: Program) -> MasstreeStore:
        spec = self.spec
        max_keys = spec.num_keys + spec.operations + 8
        pool = ValuePool(program.allocator, slots=max_keys, value_size=spec.value_size)
        capacity_nodes = max(64, 4 * max_keys // FANOUT + 16)
        store = MasstreeStore(program.allocator, pool, capacity_nodes=capacity_nodes)
        for key in range(spec.num_keys):
            store.preload(key, pool.alloc())
        return store

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        store = self._build_store(program)
        mode = patches.mode(self.SITE.name)
        per_thread = max(1, self.spec.operations // self.threads)
        for i in range(self.threads):
            program.spawn(self._client, program, store, mode, per_thread, i)

    def _client(
        self,
        t: ThreadCtx,
        program: Program,
        store: MasstreeStore,
        mode: PrestoreMode,
        operations: int,
        client_id: int,
    ) -> Iterator[Event]:
        stream = self.spec.operation_stream(
            t.rng,
            operations=operations,
            insert_start=self.spec.num_keys + client_id,
            insert_stride=self.threads,
        )
        for op, key in stream:
            if op == OP_READ:
                yield from store.get(t, key)
            else:
                yield from store.put(t, key, mode)
            yield t.compute(self.op_overhead_instructions)
            program.add_work(1)
