"""Key-value stores and the YCSB workload generator (Sections 7.2.3, 7.3.1).

Two stores, as in the paper: a CLHT-like lock-based hash table and a
Masstree-like B+-tree with optimistic version validation.  Both are
*functional* (they really store and retrieve values — tests compare them
against a dict) while emitting the simulator events of their memory
layout: bucket/node accesses, value crafting, lock atomics, version
fences.
"""

from repro.workloads.kv.clht import CLHTStore, CLHTWorkload
from repro.workloads.kv.masstree import MasstreeStore, MasstreeWorkload
from repro.workloads.kv.ycsb import YCSB_MIXES, YCSBSpec, ZipfianGenerator

__all__ = [
    "CLHTStore",
    "CLHTWorkload",
    "MasstreeStore",
    "MasstreeWorkload",
    "YCSB_MIXES",
    "YCSBSpec",
    "ZipfianGenerator",
]
