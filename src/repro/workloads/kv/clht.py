"""A CLHT-like cache-line hash table (paper refs. [16], Sections 7.2.3/7.3.1).

CLHT's defining trait is that each bucket is exactly one cache line
holding a lock word plus a few key/value-pointer pairs, so an operation
touches one line plus the value.  PUTs lock the bucket with an atomic
(fence semantics — "the atomic operations used in the lock have a fence
semantics and force the CPU to make the crafted value visible to all the
cores", Section 7.3.1), which is why crafting values right before the
lock is the pattern DirtBuster flags.

The store is functional: it maintains a Python-side shadow so tests can
check dict semantics, while every structural access emits simulator
events matching the memory layout (bucket lines, overflow chains, value
slots).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.kv.values import ValuePool, craft_value
from repro.workloads.kv.ycsb import OP_READ, YCSBSpec
from repro.workloads.memapi import Allocator, Program, Region, ThreadCtx

__all__ = ["CLHTStore", "CLHTWorkload"]

#: Key/value-pointer pairs per bucket (CLHT uses 3 on 64 B lines).
SLOTS_PER_BUCKET = 3
#: Multiplicative hash constant (Knuth).
_HASH_MULT = 2654435761


class _Bucket:
    """Shadow state of one bucket: keys, slots, overflow link."""

    __slots__ = ("base", "entries", "overflow")

    def __init__(self, base: int) -> None:
        self.base = base
        #: key -> value slot, at most SLOTS_PER_BUCKET entries.
        self.entries: Dict[int, int] = {}
        self.overflow: Optional["_Bucket"] = None


class CLHTStore:
    """The hash table: simulated layout + functional shadow."""

    def __init__(
        self,
        allocator: Allocator,
        num_buckets: int,
        value_pool: ValuePool,
        line_size: int,
        max_overflow: int = 1024,
    ) -> None:
        if num_buckets <= 0:
            raise WorkloadError("CLHT needs at least one bucket")
        self.line_size = line_size
        self.bucket_size = line_size  # one bucket per cache line
        self.num_buckets = num_buckets
        self.values = value_pool
        self._table: Region = allocator.alloc(num_buckets * self.bucket_size, label="clht_table")
        self._overflow_pool: Region = allocator.alloc(
            max_overflow * self.bucket_size, label="clht_overflow"
        )
        self._overflow_used = 0
        self._max_overflow = max_overflow
        self._buckets: List[_Bucket] = [
            _Bucket(self._table.addr(i * self.bucket_size)) for i in range(num_buckets)
        ]
        #: Functional shadow: key -> value slot.
        self.shadow: Dict[int, int] = {}

    # -- layout helpers -----------------------------------------------------

    def _hash(self, key: int) -> int:
        return (key * _HASH_MULT) % self.num_buckets

    def _alloc_overflow(self) -> _Bucket:
        if self._overflow_used >= self._max_overflow:
            raise WorkloadError("CLHT overflow pool exhausted; grow num_buckets")
        base = self._overflow_pool.addr(self._overflow_used * self.bucket_size)
        self._overflow_used += 1
        return _Bucket(base)

    # -- eventless preload ------------------------------------------------------

    def preload(self, key: int, slot: int) -> None:
        """Install a key without emitting events (the YCSB load phase,
        which the paper excludes from measurement)."""
        bucket = self._buckets[self._hash(key)]
        while True:
            if key in bucket.entries or len(bucket.entries) < SLOTS_PER_BUCKET:
                old = bucket.entries.get(key)
                if old is not None and old != slot:
                    self.values.free(old)
                bucket.entries[key] = slot
                self.shadow[key] = slot
                return
            if bucket.overflow is None:
                bucket.overflow = self._alloc_overflow()
            bucket = bucket.overflow

    # -- operations (event generators) ---------------------------------------------

    def get(self, t: ThreadCtx, key: int) -> Iterator[Event]:
        """GET: walk the bucket chain, then read the value.

        GETs are lock-free by design (CLHT reads a bucket's snapshot
        atomically), so the reads are ``relaxed``: they race with
        concurrent PUTs on purpose.
        """
        with t.function("clht_get", file="clht.c", line=143):
            bucket = self._buckets[self._hash(key)]
            while bucket is not None:
                yield t.read(bucket.base, self.bucket_size, relaxed=True)
                yield t.compute(2 * SLOTS_PER_BUCKET)  # key comparisons
                if key in bucket.entries:
                    slot = bucket.entries[key]
                    yield t.read(self.values.addr(slot), self.values.value_size, relaxed=True)
                    return
                bucket = bucket.overflow

    def put(self, t: ThreadCtx, key: int, mode: PrestoreMode) -> Iterator[Event]:
        """PUT: craft the value, lock the bucket, publish, unlock.

        This is Listing 6: the pre-store (or NT crafting) happens before
        ``clht_put`` takes the bucket lock.
        """
        slot = self.values.alloc()
        yield from craft_value(t, self.values, slot, mode)
        with t.function("clht_put", file="clht.c", line=88):
            # Walk the bucket chain first (optimistic read, as CLHT does)
            # — this is the window during which a pre-started visibility
            # round trip for the crafted value overlaps useful work.
            bucket = self._buckets[self._hash(key)]
            yield t.compute(8)  # hash the key
            lock_addr = bucket.base  # the lock word heads the bucket line
            yield t.read(bucket.base, self.bucket_size, relaxed=True)  # optimistic
            yield t.compute(2 * SLOTS_PER_BUCKET)
            yield t.atomic(lock_addr, 8)  # lock (fence semantics)
            while True:
                yield t.read(bucket.base, self.bucket_size)
                yield t.compute(2 * SLOTS_PER_BUCKET)
                if key in bucket.entries or len(bucket.entries) < SLOTS_PER_BUCKET:
                    old = bucket.entries.get(key)
                    if old is not None:
                        self.values.free(old)
                    bucket.entries[key] = slot
                    self.shadow[key] = slot
                    # Store the key and the value pointer into the line.
                    yield t.write(bucket.base + 8, 8)
                    yield t.write(bucket.base + 8 + 8 * SLOTS_PER_BUCKET, 8)
                    break
                if bucket.overflow is None:
                    bucket.overflow = self._alloc_overflow()
                    # Link the new overflow bucket.
                    yield t.write(bucket.base + self.bucket_size - 8, 8)
                bucket = bucket.overflow
            yield t.atomic(lock_addr, 8)  # unlock


class CLHTWorkload(Workload):
    """YCSB over CLHT (Figures 10, 12, 13)."""

    name = "clht"
    default_threads = 4

    SITE = PatchSite(
        name="clht.craft_value",
        function="craft_value",
        file="ycsb.c",
        line=12,
        description="the crafted PUT value (Listing 6)",
    )

    def __init__(
        self,
        spec: Optional[YCSBSpec] = None,
        threads: int = 4,
        load_factor: float = 0.66,
        op_overhead_instructions: int = 600,
    ) -> None:
        self.spec = spec or YCSBSpec()
        if threads <= 0:
            raise WorkloadError("threads must be positive")
        self.threads = threads
        self.load_factor = load_factor
        #: Client-side work per request (YCSB driver, request parsing,
        #: response handling) — roughly what a real benchmark client
        #: executes between store operations.
        self.op_overhead_instructions = op_overhead_instructions

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def _build_store(self, program: Program) -> CLHTStore:
        spec = self.spec
        max_inserts = spec.operations  # upper bound (mix D inserts)
        pool = ValuePool(
            program.allocator,
            slots=spec.num_keys + max_inserts + 8,
            value_size=spec.value_size,
        )
        num_buckets = max(16, int(spec.num_keys / (SLOTS_PER_BUCKET * self.load_factor)))
        store = CLHTStore(
            program.allocator,
            num_buckets=num_buckets,
            value_pool=pool,
            line_size=program.machine.line_size,
            max_overflow=max(64, spec.num_keys // 4),
        )
        for key in range(spec.num_keys):
            store.preload(key, pool.alloc())
        return store

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        store = self._build_store(program)
        mode = patches.mode(self.SITE.name)
        per_thread = max(1, self.spec.operations // self.threads)
        for i in range(self.threads):
            program.spawn(self._client, program, store, mode, per_thread, i)

    def _client(
        self,
        t: ThreadCtx,
        program: Program,
        store: CLHTStore,
        mode: PrestoreMode,
        operations: int,
        client_id: int,
    ) -> Iterator[Event]:
        stream = self.spec.operation_stream(
            t.rng,
            operations=operations,
            insert_start=self.spec.num_keys + client_id,
            insert_stride=self.threads,
        )
        for op, key in stream:
            if op == OP_READ:
                yield from store.get(t, key)
            else:  # update and insert both go through put
                yield from store.put(t, key, mode)
            yield t.compute(self.op_overhead_instructions)
            program.add_work(1)
