"""The paper's microbenchmarks: Listings 1, 2 and 3.

* :class:`Listing1` (Section 4.1, Figure 3) — threads write elements of
  an array at random indices, optionally *clean* them, then re-read a
  field.  Shows write amplification on granularity-mismatched media and
  how cleaning restores eviction sequentiality.
* :class:`Listing2` (Section 4.2, Figure 5) — write a line, optionally
  *demote* it, read ``n`` cached values, fence.  Shows how demotion
  overlaps the visibility round trip with useful work.
* :class:`Listing3` (Section 5) — constantly rewrite one hot line,
  optionally cleaning it each time.  The pathological case: cleaning a
  frequently-rewritten line turns cache writes into memory writes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Program, ThreadCtx

__all__ = ["Listing1", "Listing2", "Listing3"]


class Listing1(Workload):
    """Random-index element writes, optional clean, field re-read.

    ``compute_per_iter`` models the per-iteration CPU work of the real
    benchmark (rand(), loop control, the summation) and calibrates how
    many threads it takes to saturate the device (see DESIGN.md §3:
    Figure 3's one-thread regime is unsaturated).
    """

    name = "listing1"

    SITE = PatchSite(
        name="listing1.element",
        function="listing1_loop",
        file="listing1.c",
        line=4,
        description="the just-written element elts[idx]",
    )

    def __init__(
        self,
        element_size: int = 1024,
        num_elements: int = 512,
        iterations: int = 1200,
        threads: int = 1,
        compute_per_iter: int = 0,
        reread_field: bool = True,
    ) -> None:
        if element_size <= 0 or num_elements <= 0 or iterations <= 0 or threads <= 0:
            raise WorkloadError("listing1 parameters must be positive")
        self.element_size = element_size
        self.num_elements = num_elements
        self.iterations = iterations
        self.threads = threads
        self.compute_per_iter = compute_per_iter
        #: Line 5 of Listing 1 (the summation); removing it is the
        #: Section 5 variant where skipping beats cleaning.
        self.reread_field = reread_field

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        mode = patches.mode(self.SITE.name)
        per_thread = max(1, self.iterations // self.threads)
        for _ in range(self.threads):
            program.spawn(self._body, program, mode, per_thread)

    def _body(
        self, t: ThreadCtx, program: Program, mode: PrestoreMode, iterations: int
    ) -> Iterator[Event]:
        elts = t.alloc(self.num_elements * self.element_size, label="elts")
        src = t.alloc(max(self.element_size, 64), label="copy_source")
        nontemporal = mode is PrestoreMode.SKIP
        with t.function("listing1_loop", file="listing1.c", line=2):
            # Warm the copy source so its reads hit the cache.
            yield from t.read_block(src.base, src.size)
            for _ in range(iterations):
                idx = t.rng.randrange(self.num_elements)
                addr = elts.addr(idx * self.element_size)
                yield from t.write_block(addr, self.element_size, nontemporal=nontemporal)
                if mode.op is not None:
                    yield t.prestore(addr, self.element_size, mode.op)
                if self.reread_field:
                    yield t.read(addr, 8)  # total += elt[idx].field
                if self.compute_per_iter:
                    yield t.compute(self.compute_per_iter)
                program.add_work(1)


class Listing2(Workload):
    """Write-demote-read-fence: the delayed-visibility microbenchmark.

    ``reads_before_fence`` is the x-axis of Figure 5; the read buffer is
    small enough to stay L1-resident so each read costs L1 latency only.
    """

    name = "listing2"

    SITE = PatchSite(
        name="listing2.element",
        function="listing2_loop",
        file="listing2.c",
        line=4,
        description="the just-written array[idx] line",
    )

    def __init__(
        self,
        reads_before_fence: int = 10,
        iterations: int = 3000,
        num_elements: int = 4096,
        element_size: int = 128,
    ) -> None:
        if reads_before_fence < 0 or iterations <= 0 or num_elements <= 0:
            raise WorkloadError("listing2 parameters out of range")
        self.reads_before_fence = reads_before_fence
        self.iterations = iterations
        self.num_elements = num_elements
        self.element_size = element_size

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        program.spawn(self._body, program, patches.mode(self.SITE.name))

    def _body(self, t: ThreadCtx, program: Program, mode: PrestoreMode) -> Iterator[Event]:
        array = t.alloc(self.num_elements * self.element_size, label="array")
        l1_data = t.alloc(8 * 1024, label="L1_data")
        with t.function("listing2_loop", file="listing2.c", line=2):
            yield from t.read_block(l1_data.base, l1_data.size)  # warm
            for _ in range(self.iterations):
                idx = t.rng.randrange(self.num_elements)
                addr = array.addr(idx * self.element_size)
                yield t.write(addr, self.element_size)
                if mode.op is not None:
                    yield t.prestore(addr, self.element_size, mode.op)
                for i in range(self.reads_before_fence):
                    yield t.read(l1_data.addr((i * 64) % l1_data.size), 8)
                yield t.fence()
                program.add_work(1)


class Listing3(Workload):
    """Constantly rewriting one cache line (the pre-store anti-pattern).

    With a clean pre-store every rewrite becomes a memory write; without
    it the line is simply overwritten in the cache.  Section 5 reports a
    75x slowdown — "equivalent to the ratio between the latency of
    writing to memory vs. writing to the cache".
    """

    name = "listing3"

    SITE = PatchSite(
        name="listing3.hot_line",
        function="listing3_loop",
        file="listing3.c",
        line=4,
        description="the constantly rewritten data[] line",
    )

    def __init__(self, iterations: int = 4000, line_bytes: int = 64) -> None:
        if iterations <= 0 or line_bytes <= 0:
            raise WorkloadError("listing3 parameters must be positive")
        self.iterations = iterations
        self.line_bytes = line_bytes

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        program.spawn(self._body, program, patches.mode(self.SITE.name))

    def _body(self, t: ThreadCtx, program: Program, mode: PrestoreMode) -> Iterator[Event]:
        data = t.alloc(self.line_bytes, label="data")
        with t.function("listing3_loop", file="listing3.c", line=2):
            for _ in range(self.iterations):
                yield from t.memset(data.base, self.line_bytes)
                if mode.op is not None:
                    yield t.prestore(data.base, self.line_bytes, mode.op)
                program.add_work(1)
