"""Registry of every evaluated workload (the paper's Table 2 roster)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.kv import CLHTWorkload, MasstreeWorkload, YCSBSpec
from repro.workloads.microbench import Listing1, Listing2, Listing3
from repro.workloads.nas import (
    BTWorkload,
    CGWorkload,
    EPWorkload,
    FTWorkload,
    ISWorkload,
    LUWorkload,
    MGWorkload,
    SPWorkload,
    UAWorkload,
)
from repro.workloads.phoronix import make_phoronix_suite
from repro.workloads.tensorflow_sim import TensorFlowWorkload
from repro.workloads.x9 import X9Workload

__all__ = ["default_workloads", "make_workload", "WORKLOAD_FACTORIES"]

WORKLOAD_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "listing1": Listing1,
    "listing2": Listing2,
    "listing3": Listing3,
    "tensorflow": TensorFlowWorkload,
    "x9": X9Workload,
    "clht": lambda: CLHTWorkload(YCSBSpec(mix="A")),
    "masstree": lambda: MasstreeWorkload(YCSBSpec(mix="A")),
    "nas-mg": MGWorkload,
    "nas-ft": FTWorkload,
    "nas-sp": SPWorkload,
    "nas-ua": UAWorkload,
    "nas-bt": BTWorkload,
    "nas-is": ISWorkload,
    "nas-lu": LUWorkload,
    "nas-ep": EPWorkload,
    "nas-cg": CGWorkload,
}


def make_workload(name: str) -> Workload:
    """Instantiate a workload by its Table 2 name."""
    try:
        return WORKLOAD_FACTORIES[name]()
    except KeyError:
        phoronix = {w.name: w for w in make_phoronix_suite()}
        if name in phoronix:
            return phoronix[name]
        known = sorted(WORKLOAD_FACTORIES) + sorted(phoronix)
        raise WorkloadError(f"unknown workload {name!r}; choose from {known}") from None


def default_workloads(include_phoronix: bool = True) -> List[Workload]:
    """Every Table 2 application with default (scaled) parameters."""
    workloads: List[Workload] = [WORKLOAD_FACTORIES[name]() for name in WORKLOAD_FACTORIES]
    if include_phoronix:
        workloads.extend(make_phoronix_suite())
    return workloads
