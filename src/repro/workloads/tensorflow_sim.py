"""TensorFlow CNN-training stand-in: the Eigen tensor evaluator (§7.2.1).

The paper's whole TensorFlow result hinges on one templated function —
``Eigen::TensorEvaluator<...>::run()`` (TensorExecutor.h line 272) — whose
manually unrolled loop calls ``evalPacket`` four times per iteration
(Listing 4).  DirtBuster's findings about it, which this port reproduces
by construction:

* ~50 % of all memory writes happen here for small batch sizes, ~30 %
  for large ones (the rest come from non-sequential writers);
* the same template instantiates over **large tensors** (MBs; written
  sequentially, never re-read or re-written within the window —
  "re-read inf / re-write inf") and over **small ~240 B tensors** that
  are re-read almost immediately ("re-read 2");
* ``evalPacket`` *loads a previously written packet* before storing the
  next one (``a[x] = f(a[x - 4*PacketSize])``), which is why skipping the
  cache backfires: the dependent load then misses all the way to memory.

The workload runs training "iterations": each evaluates a mix of large
tensor ops and small (bias/scalar) tensor ops through the same evaluator
function, plus a scattered-writing optimiser step that dilutes the
evaluator's share of writes as the batch grows.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Program, ThreadCtx

__all__ = ["TensorFlowWorkload"]

#: Bytes of one evalPacket store (a SIMD packet).
PACKET = 64
#: The unrolled loop evaluates 4 packets per iteration (Listing 4).
UNROLL = 4
#: Size of the small, immediately re-read tensors DirtBuster reports.
SMALL_TENSOR = 240


class TensorFlowWorkload(Workload):
    """pts/tensorflow benchmark stand-in (Figures 7 and 8)."""

    name = "tensorflow"
    default_threads = 4

    SITE = PatchSite(
        name="tensorflow.eval_packet",
        function="Eigen::TensorEvaluator::run",
        file="TensorExecutor.h",
        line=272,
        description="the unrolled evalPacket chunk (Listing 4 line 8)",
    )

    def __init__(
        self,
        batch_size: int = 32,
        iterations: int = 3,
        threads: int = 4,
        large_tensor_kb: int = 256,
        ops_per_iteration: int = 3,
    ) -> None:
        if batch_size < 0 or iterations <= 0 or threads <= 0:
            raise WorkloadError("tensorflow parameters out of range")
        self.batch_size = batch_size
        self.iterations = iterations
        self.threads = threads
        #: Footprint of the model's large tensors (weights/gradients):
        #: fixed by the model, independent of batch size.
        self.large_tensor_kb = large_tensor_kb
        self.ops_per_iteration = ops_per_iteration

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    # -- the Eigen evaluator -----------------------------------------------------

    def _evaluator_run(
        self,
        t: ThreadCtx,
        output: int,
        input_: int,
        size: int,
        mode: PrestoreMode,
    ) -> Iterator[Event]:
        """Listing 4: the unrolled evalPacket loop over one tensor op.

        Each chunk loads the input packets and a previously written
        output packet (the ``a[x - 4*PacketSize]`` dependency), computes,
        and stores ``UNROLL`` packets; with a clean pre-store, the chunk
        is cleaned right after being written (Listing 4 line 8).
        """
        nontemporal = mode is PrestoreMode.SKIP
        chunk = UNROLL * PACKET
        with t.function("Eigen::TensorEvaluator::run", file="TensorExecutor.h", line=272):
            offset = 0
            while offset < size:
                length = min(chunk, size - offset)
                yield t.read(input_ + offset, length)
                if offset >= chunk:
                    # Each evalPacket loads a previously written output
                    # packet (a[x] = f(a[x - 4*PacketSize])) — the
                    # dependency that makes skipping the cache backfire.
                    # The previous chunk is always full, so this is one
                    # packet-granular run over it.
                    yield from t.read_block(output + offset - chunk, chunk, chunk=PACKET)
                yield t.compute(UNROLL * 2)
                yield from t.write_block(output + offset, length, nontemporal=nontemporal)
                if mode.op is not None:
                    yield t.prestore(output + offset, length, mode.op)
                offset += length

    # -- the whole training step ----------------------------------------------------

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        mode = patches.mode(self.SITE.name)
        for _ in range(self.threads):
            program.spawn(self._worker, program, mode)

    def _worker(self, t: ThreadCtx, program: Program, mode: PrestoreMode) -> Iterator[Event]:
        large_bytes = self.large_tensor_kb * 1024
        large_out = [
            t.alloc(large_bytes, label=f"tensor_out_{i}") for i in range(self.ops_per_iteration)
        ]
        large_in = [
            t.alloc(large_bytes, label=f"tensor_in_{i}") for i in range(self.ops_per_iteration)
        ]
        small_out = t.alloc(SMALL_TENSOR, label="small_tensor")
        small_in = t.alloc(SMALL_TENSOR, label="small_tensor_in")
        # Optimiser/activation state: the non-sequential writer whose
        # share grows with batch size, diluting the evaluator from ~50 %
        # of all writes (small batches) to ~30 % (large batches) — the
        # shares DirtBuster reports in Section 7.2.1.
        scatter = t.alloc(2 << 20, label="optimizer_state")
        scatter_lines = scatter.size // 64
        evaluator_lines = self.ops_per_iteration * (large_bytes // 64)
        share_growth = 1.0 + 1.33 * min(1.0, self.batch_size / 150.0)
        touches = int(evaluator_lines * share_growth)
        for _ in range(self.iterations):
            for op in range(self.ops_per_iteration):
                # Large tensor op through the evaluator.
                yield from self._evaluator_run(
                    t, large_out[op].base, large_in[op].base, large_bytes, mode
                )
                # Small (bias/scalar) tensor ops: written, then re-read
                # ~2 instructions later by the next evaluator call (the
                # paper's "re-read 2" size class).
                yield from self._evaluator_run(
                    t, small_out.base, small_in.base, SMALL_TENSOR, mode
                )
                with t.function(
                    "Eigen::TensorEvaluator::run", file="TensorExecutor.h", line=272
                ):
                    yield t.read(small_out.base, SMALL_TENSOR)
                    yield t.compute(8)
            with t.function("apply_gradient_descent", file="training_ops.cc", line=88):
                # Scattered read-modify-writes over optimiser state.
                for _ in range(touches):
                    addr = scatter.addr(t.rng.randrange(scatter_lines) * 64)
                    yield t.read(addr, 8)
                    yield t.compute(6)
                    yield t.write(addr, 8)
            program.add_work(1)
