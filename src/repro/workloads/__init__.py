"""The evaluated applications (paper Table 2), ported to the simulator.

Every workload implements :class:`repro.workloads.base.Workload`: it
declares its patch sites and spawns thread bodies onto a
:class:`~repro.workloads.memapi.Program`.  Experiments run each workload
under several :class:`~repro.core.PatchConfig` variants and compare.
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.memapi import Allocator, Program, Region, ThreadCtx

__all__ = [
    "Allocator",
    "Program",
    "Region",
    "ThreadCtx",
    "Workload",
    "WorkloadResult",
]
