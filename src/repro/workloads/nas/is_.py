"""NPB IS: integer sort (§7.4.2).

The ``rank`` function dominates the writes, but they are small,
scattered histogram-bucket increments: "the function actually writes
small amounts of data in a seemingly random pattern.  In this case,
adding a pre-store has no effect [...] DirtBuster detects the lack of
sequentiality and does not suggest using a pre-store."

The patch site exists so the §7.4.2 manual-misuse experiment can insert
the pre-store DirtBuster would have declined.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.sim.event import Event
from repro.workloads.memapi import Program, Region, ThreadCtx
from repro.workloads.nas.common import NASWorkload

__all__ = ["ISWorkload"]


class ISWorkload(NASWorkload):
    """Counting sort: sequential key reads, scattered bucket writes."""

    name = "nas-is"

    SITE = PatchSite(
        name="is.rank",
        function="rank",
        file="is.c",
        line=404,
        description="the randomly written key-count buckets (manual-misuse target)",
    )

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        num_keys = self.grid * self.grid * 16
        keys = program.allocator.alloc(num_keys * 4, label="IS_keys")
        # The bucket array vastly exceeds the cache (as in NPB IS, whose
        # key range is 2^23): a given bucket line is written roughly
        # once, so the data is "neither re-read nor re-written" (§7.4.2)
        # and cleaning it neither helps nor hurts.
        buckets = program.allocator.alloc(max(64, num_keys) * 16 * 8, label="IS_buckets")
        mode = patches.mode(self.SITE.name)
        per = max(1, num_keys // self.threads)
        for i in range(self.threads):
            start = i * per
            stop = num_keys if i == self.threads - 1 else min(num_keys, start + per)
            if start < stop:
                program.spawn(self._body, program, keys, buckets, range(start, stop), mode)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        keys: Region,
        buckets: Region,
        key_range: range,
        mode: PrestoreMode,
    ) -> Iterator[Event]:
        num_buckets = buckets.size // 8
        for _ in range(self.iterations):
            with t.function("rank", file="is.c", line=404):
                for k in key_range:
                    yield t.read(keys.addr(k * 4), 4)
                    bucket = t.rng.randrange(num_buckets)  # hash of the key
                    yield t.read(buckets.addr(bucket * 8), 8)
                    yield t.compute(2)
                    yield t.write(buckets.addr(bucket * 8), 8)
                    if mode.op is not None:
                        yield t.prestore(buckets.addr(bucket * 8), 8, mode.op)
            program.add_work(1)