"""NPB BT: block tri-diagonal solver (§7.2.2).

Like SP, BT's writes concentrate in sequential sweeps over big matrices;
the paper patched it with a clean pre-store after the written rows.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.sim.event import Event
from repro.workloads.memapi import Program, ThreadCtx
from repro.workloads.nas.common import Grid3D, NASWorkload

__all__ = ["BTWorkload"]


class BTWorkload(NASWorkload):
    """Block-matrix assembly: sequential LHS block writes."""

    name = "nas-bt"
    DEFAULT_FLOPS = 1500

    SITE = PatchSite(
        name="bt.lhsinit",
        function="lhsinit",
        file="bt.f90",
        line=201,
        description="the sequentially written LHS blocks",
    )

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        n = self.grid
        # BT's LHS holds three 5x5 block matrices per point (A, B, C):
        # model as a much wider fastest dimension.
        lhs = Grid3D(program.allocator, n * 15, n, n, "LHS")
        u = Grid3D(program.allocator, n, n, n, "U")
        mode = patches.mode(self.SITE.name)
        for planes in self.plane_slices(n - 2):
            program.spawn(self._body, program, lhs, u, planes, mode)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        lhs: Grid3D,
        u: Grid3D,
        planes: range,
        mode: PrestoreMode,
    ) -> Iterator[Event]:
        for _ in range(self.iterations):
            with t.function("lhsinit", file="bt.f90", line=201):
                for i3 in planes:
                    for i2 in range(1, lhs.n2 - 1):
                        yield t.read(u.row_addr(i2, i3 + 1), u.row_bytes)
                        yield t.read(u.row_addr(i2 - 1, i3 + 1), u.row_bytes)
                        yield self.flops_row(t, u.n1)
                        yield from t.write_block(lhs.row_addr(i2, i3 + 1), lhs.row_bytes)
                        yield from self.maybe_prestore(
                            t, mode, lhs.row_addr(i2, i3 + 1), lhs.row_bytes
                        )
            with t.function("matvec_sub", file="bt.f90", line=355):
                for i3 in planes:
                    for i2 in range(1, lhs.n2 - 1, 4):
                        yield t.read(lhs.row_addr(i2, i3 + 1), lhs.row_bytes)
                        yield self.flops_row(t, u.n1)
            program.add_work(1)