"""Shared pieces of the NAS kernel ports."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.core.prestore import PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Region, ThreadCtx

__all__ = ["Grid3D", "NASWorkload", "ELEM"]

#: Bytes per double-precision element.
ELEM = 8


class Grid3D:
    """A Fortran-style 3-D array in simulated memory (i1 fastest).

    ``mem`` is anything with an ``alloc(size, label=...) -> Region``
    method — the program-wide allocator for arrays shared by all threads
    (the OpenMP model NAS uses), or a :class:`ThreadCtx` for private
    scratch.
    """

    def __init__(self, mem, n1: int, n2: int, n3: int, label: str) -> None:
        if min(n1, n2, n3) <= 0:
            raise WorkloadError(f"{label}: grid dimensions must be positive")
        self.n1, self.n2, self.n3 = n1, n2, n3
        self.region: Region = mem.alloc(n1 * n2 * n3 * ELEM, label=label)

    @property
    def bytes(self) -> int:
        return self.region.size

    def row_addr(self, i2: int, i3: int) -> int:
        """Address of row ``(:, i2, i3)`` (a contiguous n1-vector)."""
        return self.region.addr(ELEM * (self.n1 * (i2 + self.n2 * i3)))

    @property
    def row_bytes(self) -> int:
        return self.n1 * ELEM

    def addr(self, i1: int, i2: int, i3: int) -> int:
        return self.region.addr(ELEM * (i1 + self.n1 * (i2 + self.n2 * i3)))

    def planes(self) -> Iterator[Tuple[int, int]]:
        """All (i2, i3) row coordinates, i2 fastest."""
        for i3 in range(self.n3):
            for i2 in range(self.n2):
                yield (i2, i3)


class NASWorkload(Workload):
    """Base for NPB kernel ports: OpenMP-style plane partitioning."""

    default_threads = 4
    #: Arithmetic instructions per grid point.  Per-kernel defaults are
    #: calibrated so the ports sit at a realistic compute/store balance
    #: (NPB kernels run tens of flops per point; the block solvers many
    #: more).
    DEFAULT_FLOPS = 16

    def __init__(
        self,
        grid: int = 48,
        iterations: int = 2,
        threads: int = 4,
        flops_per_point: int = None,
    ) -> None:
        if grid <= 2 or iterations <= 0 or threads <= 0:
            raise WorkloadError(f"{self.name}: parameters out of range")
        if flops_per_point is None:
            flops_per_point = type(self).DEFAULT_FLOPS
        if flops_per_point <= 0:
            raise WorkloadError(f"{self.name}: flops_per_point must be positive")
        self.grid = grid
        self.iterations = iterations
        self.threads = threads
        self.flops_per_point = flops_per_point

    def flops_row(self, t: ThreadCtx, n1: int):
        """One row's worth of kernel arithmetic."""
        return t.compute(self.flops_per_point * n1)

    def patch_sites(self) -> Sequence[PatchSite]:
        return ()

    def plane_slices(self, n3: int) -> List[range]:
        """Split the outer (i3) loop across threads (OpenMP static)."""
        per = max(1, n3 // self.threads)
        slices = []
        for i in range(self.threads):
            start = i * per
            stop = n3 if i == self.threads - 1 else min(n3, start + per)
            if start < stop:
                slices.append(range(start, stop))
        return slices

    @staticmethod
    def maybe_prestore(
        t: ThreadCtx, mode: PrestoreMode, addr: int, size: int
    ) -> Iterator[Event]:
        """Emit the configured pre-store after a row write (Listing 5)."""
        if mode.op is not None:
            yield t.prestore(addr, size, mode.op)
