"""NPB SP: scalar penta-diagonal solver (§7.2.2).

DirtBuster's finding: "SP allocates dozens of matrices, but a single
matrix (RHS) accounts for most of the writes.  The matrix is mostly
written in the compute_rhs function and is rarely reused."  The patch
cleans RHS rows after writing them.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.sim.event import Event
from repro.workloads.memapi import Program, ThreadCtx
from repro.workloads.nas.common import Grid3D, NASWorkload

__all__ = ["SPWorkload"]


class SPWorkload(NASWorkload):
    """compute_rhs sweeps over RHS, reading U/US/VS/WS/square."""

    name = "nas-sp"
    DEFAULT_FLOPS = 56

    SITE = PatchSite(
        name="sp.compute_rhs",
        function="compute_rhs",
        file="sp.f90",
        line=310,
        description="the sequentially written RHS rows",
    )

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        n = self.grid
        # RHS holds the five flow components per point, like NPB's
        # rhs(5, nx, ny, nz): rows are 5x wider than the scalar grids.
        rhs = Grid3D(program.allocator, n * 5, n, n, "RHS")
        inputs = [
            Grid3D(program.allocator, n, n, n, name)
            for name in ("U", "US", "VS", "WS", "SQUARE")
        ]
        mode = patches.mode(self.SITE.name)
        for planes in self.plane_slices(n - 2):
            program.spawn(self._body, program, rhs, inputs, planes, mode)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        rhs: Grid3D,
        inputs: List[Grid3D],
        planes: range,
        mode: PrestoreMode,
    ) -> Iterator[Event]:
        for _ in range(self.iterations):
            with t.function("compute_rhs", file="sp.f90", line=310):
                for i3 in planes:
                    for i2 in range(1, rhs.n2 - 1):
                        for grid in inputs:
                            yield t.read(grid.row_addr(i2, i3 + 1), grid.row_bytes)
                        yield self.flops_row(t, rhs.n1)
                        yield from t.write_block(rhs.row_addr(i2, i3 + 1), rhs.row_bytes)
                        yield from self.maybe_prestore(
                            t, mode, rhs.row_addr(i2, i3 + 1), rhs.row_bytes
                        )
            # The x/y/z solve phases: read-dominated at this scale.
            with t.function("x_solve", file="sp.f90", line=28):
                for i3 in planes:
                    for i2 in range(1, rhs.n2 - 1, 4):
                        yield t.read(rhs.row_addr(i2, i3 + 1), rhs.row_bytes)
                        yield self.flops_row(t, rhs.n1)
            program.add_work(1)