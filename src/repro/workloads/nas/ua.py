"""NPB UA: unstructured adaptive mesh (§7.2.2).

UA's element-wise solution updates write the solution arrays in long
sequential runs (per element), with indirection-driven reads of the mesh
connectivity in between.  Table 2 classifies it write-intensive with
sequential writes; the paper patched it with a clean pre-store.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.sim.event import Event
from repro.workloads.memapi import Program, Region, ThreadCtx
from repro.workloads.nas.common import ELEM, NASWorkload

__all__ = ["UAWorkload"]

#: Doubles per mesh element's local solution block.
_ELEMENT_DOUBLES = 128


class UAWorkload(NASWorkload):
    """Per-element sequential solution writes with indirect mesh reads."""

    name = "nas-ua"
    DEFAULT_FLOPS = 500

    SITE = PatchSite(
        name="ua.diffusion",
        function="diffusion",
        file="ua.f90",
        line=412,
        description="the per-element solution blocks",
    )

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        elements = self.grid * self.grid
        block = _ELEMENT_DOUBLES * ELEM
        solution = program.allocator.alloc(elements * block, label="UA_solution")
        mesh = program.allocator.alloc(elements * 64, label="UA_mesh")
        mode = patches.mode(self.SITE.name)
        per = max(1, elements // self.threads)
        for i in range(self.threads):
            start = i * per
            stop = elements if i == self.threads - 1 else min(elements, start + per)
            if start < stop:
                program.spawn(self._body, program, solution, mesh, range(start, stop), mode)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        solution: Region,
        mesh: Region,
        elements: range,
        mode: PrestoreMode,
    ) -> Iterator[Event]:
        block = _ELEMENT_DOUBLES * ELEM
        total = solution.size // block
        for _ in range(self.iterations):
            with t.function("diffusion", file="ua.f90", line=412):
                for e in elements:
                    # Indirect connectivity reads (a few random neighbours).
                    for _ in range(3):
                        yield t.read(mesh.addr(t.rng.randrange(total) * 64), 64)
                    yield t.compute(self.flops_per_point * _ELEMENT_DOUBLES // 4)
                    yield from t.write_block(solution.addr(e * block), block)
                    yield from self.maybe_prestore(t, mode, solution.addr(e * block), block)
            program.add_work(1)