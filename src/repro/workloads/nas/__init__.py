"""NAS Parallel Benchmarks ported as access-pattern kernels (§7.2.2).

Loop-nest ports of the nine NPB codes.  The machine and DirtBuster only
observe the memory event stream, so each port reproduces its kernel's
array shapes, read stencils and write sweeps rather than the arithmetic
(see DESIGN.md §1).  Table 2's classification: MG, FT, SP, UA and BT are
write-intensive sequential writers; IS is write-intensive but scattered;
LU, EP and CG spend <10 % of their accesses storing.
"""

from repro.workloads.nas.bt import BTWorkload
from repro.workloads.nas.cg import CGWorkload
from repro.workloads.nas.ep import EPWorkload
from repro.workloads.nas.ft import FTWorkload
from repro.workloads.nas.is_ import ISWorkload
from repro.workloads.nas.lu import LUWorkload
from repro.workloads.nas.mg import MGWorkload
from repro.workloads.nas.sp import SPWorkload
from repro.workloads.nas.ua import UAWorkload

ALL_NAS = (
    MGWorkload,
    FTWorkload,
    SPWorkload,
    UAWorkload,
    BTWorkload,
    ISWorkload,
    LUWorkload,
    EPWorkload,
    CGWorkload,
)

__all__ = [
    "ALL_NAS",
    "BTWorkload",
    "CGWorkload",
    "EPWorkload",
    "FTWorkload",
    "ISWorkload",
    "LUWorkload",
    "MGWorkload",
    "SPWorkload",
    "UAWorkload",
]
