"""NPB CG: conjugate gradient with a random sparse matrix.

The sparse matrix-vector product dominates: per output element it reads
a row of values and column indices plus gathered vector entries, writing
a single result element.  Table 2: not write-intensive.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.prestore import PatchConfig
from repro.sim.event import Event
from repro.workloads.memapi import Program, Region, ThreadCtx
from repro.workloads.nas.common import ELEM, NASWorkload

__all__ = ["CGWorkload"]

#: Non-zeros per matrix row.
_ROW_NNZ = 12


class CGWorkload(NASWorkload):
    """Sparse mat-vec iterations: gather-heavy, one write per row."""

    name = "nas-cg"

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        rows = self.grid * self.grid
        values = program.allocator.alloc(rows * _ROW_NNZ * ELEM, label="CG_values")
        colidx = program.allocator.alloc(rows * _ROW_NNZ * 4, label="CG_colidx")
        x = program.allocator.alloc(rows * ELEM, label="CG_x")
        q = program.allocator.alloc(rows * ELEM, label="CG_q")
        per = max(1, rows // self.threads)
        for i in range(self.threads):
            start = i * per
            stop = rows if i == self.threads - 1 else min(rows, start + per)
            if start < stop:
                program.spawn(
                    self._body, program, values, colidx, x, q, range(start, stop), rows
                )

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        values: Region,
        colidx: Region,
        x: Region,
        q: Region,
        rows: range,
        total_rows: int,
    ) -> Iterator[Event]:
        for _ in range(self.iterations):
            with t.function("sparse_matvec", file="cg.f90", line=556):
                for row in rows:
                    yield t.read(values.addr(row * _ROW_NNZ * ELEM), _ROW_NNZ * ELEM)
                    yield t.read(colidx.addr(row * _ROW_NNZ * 4), _ROW_NNZ * 4)
                    # Gather x entries at the (random) column indices.
                    for _ in range(3):
                        yield t.read(x.addr(t.rng.randrange(total_rows) * ELEM), ELEM)
                    yield t.compute(2 * _ROW_NNZ)
                    yield t.write(q.addr(row * ELEM), ELEM)
            program.add_work(1)