"""NPB EP: embarrassingly parallel random-number kernel.

Almost pure compute: batches of Gaussian pairs are generated and reduced
into a ten-bin histogram.  Table 2: not write-intensive.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.prestore import PatchConfig
from repro.sim.event import Event
from repro.workloads.memapi import Program, ThreadCtx
from repro.workloads.nas.common import NASWorkload

__all__ = ["EPWorkload"]


class EPWorkload(NASWorkload):
    """Batches of RNG compute with a tiny histogram reduction."""

    name = "nas-ep"

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        for _ in range(self.threads):
            program.spawn(self._body, program)

    def _body(self, t: ThreadCtx, program: Program) -> Iterator[Event]:
        hist = t.alloc(10 * 8, label="EP_hist")
        scratch = t.alloc(2 * self.grid * 8, label="EP_pairs")
        batches = self.grid * self.iterations
        for _ in range(batches):
            with t.function("vranlc", file="ep.f90", line=181):
                yield t.compute(40 * self.grid)  # the RNG chain
                yield t.read(scratch.base, min(scratch.size, 512))
            with t.function("ep_tally", file="ep.f90", line=230):
                yield t.read(hist.base, 80)
                yield t.compute(16)
                yield t.write(hist.addr(8 * (self.grid % 10)), 8)
            program.add_work(1)