"""NPB LU: lower-upper Gauss-Seidel solver.

Table 2 classifies LU as *not* write-intensive: its wavefront sweeps are
read-dominated (each point reads its full stencil neighbourhood and
writes one value).  The port preserves that ratio so the Section 7.1
store-share filter rejects it.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.prestore import PatchConfig
from repro.sim.event import Event
from repro.workloads.memapi import Program, ThreadCtx
from repro.workloads.nas.common import ELEM, Grid3D, NASWorkload

__all__ = ["LUWorkload"]


class LUWorkload(NASWorkload):
    """SSOR wavefront: many stencil reads per written point."""

    name = "nas-lu"

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        n = self.grid
        u = Grid3D(program.allocator, n, n, n, "LU_U")
        flux = Grid3D(program.allocator, n, n, n, "LU_FLUX")
        for planes in self.plane_slices(n - 2):
            program.spawn(self._body, program, u, flux, planes)

    def _body(
        self, t: ThreadCtx, program: Program, u: Grid3D, flux: Grid3D, planes: range
    ) -> Iterator[Event]:
        for _ in range(self.iterations):
            with t.function("blts", file="lu.f90", line=553):
                for i3 in planes:
                    for i2 in range(1, u.n2 - 1):
                        # Read-heavy: the point's full neighbourhood in U
                        # and FLUX plus the adjacent planes feed a single
                        # stored value — LU stays below the 10% store
                        # share that Table 2 uses as its gate.
                        for d in (-1, 0, 1):
                            yield t.read(u.row_addr(i2 + d, i3 + 1), u.row_bytes)
                            yield t.read(flux.row_addr(i2 + d, i3 + 1), flux.row_bytes)
                        for d3 in (0, 2):
                            yield t.read(u.row_addr(i2, i3 + d3), u.row_bytes)
                            yield t.read(flux.row_addr(i2, i3 + d3), flux.row_bytes)
                        yield t.read(u.row_addr(i2, i3 + 1), u.row_bytes)
                        yield t.compute(12 * u.n1)
                        yield t.write(u.addr(1 + (i2 % (u.n1 - 2)), i2, i3 + 1), ELEM)
            program.add_work(1)