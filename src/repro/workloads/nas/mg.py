"""NPB MG: multi-grid on a sequence of meshes (§7.2.2).

The paper's DirtBuster findings, reproduced here by construction:

* ``resid`` (mg.f90 line 544) writes the R grid 100 % sequentially;
  R is re-read ~23.8 K instructions later (by ``psinv``) → **clean**;
* ``psinv`` (mg.f90 line 614) writes the U grid 100 % sequentially;
  U is not re-read or re-written within the reuse horizon → **skip**
  (clean as the Fortran-friendly fallback, Listing 5).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.sim.event import Event
from repro.workloads.memapi import Program, ThreadCtx
from repro.workloads.nas.common import Grid3D, NASWorkload

__all__ = ["MGWorkload"]


class MGWorkload(NASWorkload):
    """psinv/resid sweeps over U, V and R grids."""

    name = "nas-mg"
    DEFAULT_FLOPS = 56

    RESID_SITE = PatchSite(
        name="mg.resid",
        function="resid",
        file="mg.f90",
        line=544,
        description="the sequentially written R grid rows",
    )
    PSINV_SITE = PatchSite(
        name="mg.psinv",
        function="psinv",
        file="mg.f90",
        line=614,
        description="the sequentially written U grid rows (Listing 5)",
    )

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.RESID_SITE, self.PSINV_SITE)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        n = self.grid
        u = Grid3D(program.allocator, n, n, n, "U")
        v = Grid3D(program.allocator, n, n, n, "V")
        r = Grid3D(program.allocator, n, n, n, "R")
        resid_mode = patches.mode(self.RESID_SITE.name)
        psinv_mode = patches.mode(self.PSINV_SITE.name)
        for planes in self.plane_slices(n - 2):
            program.spawn(self._body, program, u, v, r, planes, resid_mode, psinv_mode)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        u: Grid3D,
        v: Grid3D,
        r: Grid3D,
        planes: range,
        resid_mode: PrestoreMode,
        psinv_mode: PrestoreMode,
    ) -> Iterator[Event]:
        for _ in range(self.iterations):
            # The V-cycle calls resid and psinv per level back to back;
            # at plane granularity psinv consumes a plane of R shortly
            # after resid produced it (the paper's ~23.8K-instruction
            # re-read distance), while U written by psinv is not touched
            # again until the next iteration's resid — beyond any
            # cache-residency horizon ("re-read inf").
            prev = None
            for i3 in planes:
                yield from self._resid(t, u, v, r, i3, resid_mode)
                if prev is not None:
                    yield from self._psinv(t, u, r, prev, psinv_mode)
                prev = i3
            if prev is not None:
                yield from self._psinv(t, u, r, prev, psinv_mode)
            # Coarse-level work and norm computation between iterations.
            yield t.compute(12_000)
            program.add_work(1)

    def _resid(
        self, t: ThreadCtx, u: Grid3D, v: Grid3D, r: Grid3D, i3: int, mode: PrestoreMode
    ) -> Iterator[Event]:
        """One plane of r = v - A*u: stencil reads of U, sequential R writes."""
        with t.function("resid", file="mg.f90", line=544):
            for i2 in range(1, r.n2 - 1):
                # Stencil reads: the row and its 8 neighbours.  Rows
                # i2-1..i2+1 of one plane are contiguous in memory, so
                # each d3 plane contributes one 3-row run.
                for d3 in (-1, 0, 1):
                    yield from t.read_block(
                        u.row_addr(i2 - 1, i3 + 1 + d3), 3 * u.row_bytes, chunk=u.row_bytes
                    )
                yield t.read(v.row_addr(i2, i3 + 1), v.row_bytes)
                yield self.flops_row(t, r.n1)
                yield from t.write_block(r.row_addr(i2, i3 + 1), r.row_bytes)
                yield from self.maybe_prestore(t, mode, r.row_addr(i2, i3 + 1), r.row_bytes)

    def _psinv(
        self, t: ThreadCtx, u: Grid3D, r: Grid3D, i3: int, mode: PrestoreMode
    ) -> Iterator[Event]:
        """One plane of u += M*r: reads R rows, writes U rows (Listing 5)."""
        with t.function("psinv", file="mg.f90", line=614):
            for i2 in range(1, u.n2 - 1):
                for d3 in (-1, 0, 1):
                    yield t.read(r.row_addr(i2, i3 + 1 + d3), r.row_bytes)
                yield self.flops_row(t, u.n1)
                yield from t.write_block(u.row_addr(i2, i3 + 1), u.row_bytes)
                yield from self.maybe_prestore(t, mode, u.row_addr(i2, i3 + 1), u.row_bytes)
