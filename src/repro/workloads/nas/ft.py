"""NPB FT: 3-D Fast Fourier Transform (§7.2.2 and §7.4.2).

Two functions matter to the paper:

* ``cffts1`` — "sequentially transfers results from a matrix Y1 to a
  matrix XOUT": the pre-store candidate DirtBuster endorses;
* ``fftz2`` — the butterfly kernel over a small scratch buffer that is
  re-read and re-written every stage.  It *looks* like a sequential
  writer to a human profiler, but cleaning it costs ~3x (§7.4.2):
  DirtBuster's rewrite distance sees through it and declines.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.sim.event import Event
from repro.workloads.memapi import Program, ThreadCtx
from repro.workloads.nas.common import Grid3D, NASWorkload

__all__ = ["FTWorkload"]


class FTWorkload(NASWorkload):
    """cffts1 pencil sweeps + fftz2 butterfly stages."""

    name = "nas-ft"
    DEFAULT_FLOPS = 56

    CFFTS1_SITE = PatchSite(
        name="ft.cffts1",
        function="cffts1",
        file="ft.f90",
        line=612,
        description="the XOUT rows written from Y1",
    )
    FFTZ2_SITE = PatchSite(
        name="ft.fftz2",
        function="fftz2",
        file="ft.f90",
        line=688,
        description="the hot butterfly scratch (manual-misuse target, §7.4.2)",
    )

    #: Butterfly stages per pencil (log2-ish of the pencil length).
    STAGES = 6

    @property
    def scratch_bytes(self) -> int:
        """fftz2's scratch: one complex pencil (16 B per point)."""
        return max(256, self.grid * 16)

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.CFFTS1_SITE, self.FFTZ2_SITE)

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        n = self.grid
        y1 = Grid3D(program.allocator, n, n, n, "Y1")
        xout = Grid3D(program.allocator, n, n, n, "XOUT")
        cffts_mode = patches.mode(self.CFFTS1_SITE.name)
        fftz2_mode = patches.mode(self.FFTZ2_SITE.name)
        for planes in self.plane_slices(n):
            program.spawn(self._body, program, y1, xout, planes, cffts_mode, fftz2_mode)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        y1: Grid3D,
        xout: Grid3D,
        planes: range,
        cffts_mode: PrestoreMode,
        fftz2_mode: PrestoreMode,
    ) -> Iterator[Event]:
        scratch = t.alloc(self.scratch_bytes, label="fftz2_scratch")
        for _ in range(self.iterations):
            for i3 in planes:
                for i2 in range(y1.n2):
                    yield from self._fftz2(t, scratch.base, fftz2_mode)
                    yield from self._cffts1(t, y1, xout, i2, i3, cffts_mode)
            program.add_work(1)

    def _fftz2(self, t: ThreadCtx, scratch: int, mode: PrestoreMode) -> Iterator[Event]:
        """Butterfly stages over the scratch: re-read + re-write each stage."""
        with t.function("fftz2", file="ft.f90", line=688):
            half = self.scratch_bytes // 2
            for _ in range(self.STAGES):
                yield t.read(scratch, half)
                yield t.read(scratch + half, half)
                yield t.compute(48)
                yield from t.write_block(scratch, self.scratch_bytes)
                yield from self.maybe_prestore(t, mode, scratch, self.scratch_bytes)

    def _cffts1(
        self, t: ThreadCtx, y1: Grid3D, xout: Grid3D, i2: int, i3: int, mode: PrestoreMode
    ) -> Iterator[Event]:
        """Copy the transformed pencil from Y1 to XOUT, sequentially."""
        with t.function("cffts1", file="ft.f90", line=612):
            yield t.read(y1.row_addr(i2, i3), y1.row_bytes)
            yield self.flops_row(t, y1.n1)
            yield from t.write_block(xout.row_addr(i2, i3), xout.row_bytes)
            yield from self.maybe_prestore(t, mode, xout.row_addr(i2, i3), xout.row_bytes)
