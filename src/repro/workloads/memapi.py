"""The workload programming interface.

Workloads are written as ordinary Python generator functions that receive
a :class:`ThreadCtx` and ``yield`` the events it builds::

    def body(t: ThreadCtx):
        buf = t.alloc(4096, label="buf")
        with t.function("fill", file="demo.c", line=10):
            yield from t.write_block(buf, 4096)
            yield t.prestore(buf, 4096, PrestoreOp.CLEAN)
        yield t.fence()

:class:`Program` binds one :class:`ThreadCtx` per thread to a machine
core and drives the machine's time-ordered scheduler.  The allocator
hands out disjoint aligned regions of the simulated address space, and
:meth:`ThreadCtx.function` labels events with the (function, file, line)
provenance DirtBuster reports.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.prestore import PrestoreOp
from repro.errors import AllocationError, ConfigurationError, WorkloadError
from repro.sim.event import CodeSite, Event, EventKind, Mailbox, UNKNOWN_SITE
from repro.sim.machine import Machine, MachineSpec, Tracer
from repro.sim.stats import RunResult

__all__ = ["Allocator", "Mailbox", "Region", "ThreadCtx", "Program", "ThreadBodyFn"]

#: A workload thread: generator function taking its ThreadCtx.
ThreadBodyFn = Callable[["ThreadCtx"], Iterator[Event]]

#: Simulated address space: allocations start above the null page.
_BASE_ADDRESS = 1 << 20
_ADDRESS_LIMIT = 1 << 46


class Region:
    """A contiguous allocated range of simulated memory."""

    __slots__ = ("base", "size", "label")

    def __init__(self, base: int, size: int, label: str) -> None:
        self.base = base
        self.size = size
        self.label = label

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Byte address at ``offset``, bounds-checked."""
        if not 0 <= offset < self.size:
            raise AllocationError(
                f"offset {offset} outside region {self.label!r} of size {self.size}"
            )
        return self.base + offset

    def __contains__(self, address: int) -> bool:
        return self.base <= address < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.label!r}, base={self.base:#x}, size={self.size})"


class Allocator:
    """Bump allocator over the simulated address space.

    Allocations are padded to cache-line alignment so distinct objects
    never share a line (as a real allocator's size classes ensure for the
    object sizes these workloads use).
    """

    def __init__(self, line_size: int, base: int = _BASE_ADDRESS) -> None:
        if line_size <= 0:
            raise ConfigurationError("line size must be positive")
        self.line_size = line_size
        self._next = base
        self.regions: List[Region] = []

    def alloc(self, size: int, label: str = "anon", align: Optional[int] = None) -> Region:
        """Allocate ``size`` bytes, aligned to ``align`` (default: line)."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        alignment = align or self.line_size
        if alignment & (alignment - 1):
            raise AllocationError(f"alignment must be a power of two, got {alignment}")
        base = (self._next + alignment - 1) // alignment * alignment
        if base + size > _ADDRESS_LIMIT:
            raise AllocationError("simulated address space exhausted")
        # Pad to line size so neighbouring allocations never false-share.
        self._next = (base + size + self.line_size - 1) // self.line_size * self.line_size
        region = Region(base, size, label)
        self.regions.append(region)
        return region

    def region_of(self, address: int) -> Optional[Region]:
        """The region containing ``address``, if any (linear scan)."""
        for region in self.regions:
            if address in region:
                return region
        return None


class ThreadCtx:
    """Event factory bound to one simulated thread.

    All methods are cheap constructors — nothing executes until the
    generated events are consumed by the machine scheduler, which is what
    lets multiple thread bodies interleave by simulated time.
    """

    def __init__(
        self,
        tid: int,
        allocator: Allocator,
        line_size: int,
        seed: int,
        emit_streams: bool = False,
        core: Optional[object] = None,
    ) -> None:
        self.tid = tid
        self.allocator = allocator
        self.line_size = line_size
        self.rng = random.Random(seed)
        #: The machine core this thread runs on (set by Program.spawn);
        #: lets generator code read simulated time between yields.
        self.core = core
        #: When set, the block helpers emit one batched STREAM event per
        #: run instead of one READ/WRITE per chunk.  The machine expands
        #: streams with bit-identical semantics (DESIGN.md §11), so this
        #: only changes interpretation speed, never results.
        self.emit_streams = emit_streams
        self._site_stack: List[CodeSite] = []
        self._site_cache: Dict[Tuple[str, str, int], CodeSite] = {}

    # -- provenance ------------------------------------------------------------

    @contextmanager
    def function(self, name: str, file: str = "<workload>", line: int = 0) -> Iterator[None]:
        """Label subsequently built events as coming from ``name``.

        Nested uses build the callchain, innermost last — the shape perf
        reports and DirtBuster groups by (Section 6.2.1).
        """
        key = (name, file, line)
        site = self._site_cache.get(key)
        if site is None:
            site = CodeSite(function=name, file=file, line=line)
            self._site_cache[key] = site
        self._site_stack.append(site)
        try:
            yield
        finally:
            self._site_stack.pop()

    @property
    def current_site(self) -> CodeSite:
        return self._site_stack[-1] if self._site_stack else UNKNOWN_SITE

    def _provenance(self) -> Tuple[CodeSite, Tuple[CodeSite, ...]]:
        if not self._site_stack:
            return UNKNOWN_SITE, ()
        return self._site_stack[-1], tuple(self._site_stack[:-1])

    # -- simulated time -----------------------------------------------------------

    def now(self) -> float:
        """This thread's simulated clock, in cycles.

        Generator code between ``yield``s runs *after* the yielded event
        completed, so ``now()`` reads the completion time of the last
        event — identically in the reference and stream vocabularies
        (a stream resumes the generator only once fully executed).
        """
        if self.core is None:
            raise WorkloadError("ThreadCtx.now() needs a machine core (spawn via Program)")
        return self.core.clock

    # -- allocation ---------------------------------------------------------------

    def alloc(self, size: int, label: str = "anon", align: Optional[int] = None) -> Region:
        return self.allocator.alloc(size, label=label, align=align)

    # -- single events ---------------------------------------------------------------

    def read(self, addr: int, size: int = 8, relaxed: bool = False) -> Event:
        """A load; ``relaxed`` marks intentionally unsynchronised reads
        (optimistic / version-validated protocols) for the sanitizer."""
        site, chain = self._provenance()
        return Event(
            EventKind.READ, addr=addr, size=size, relaxed=relaxed, site=site, callchain=chain
        )

    def write(
        self, addr: int, size: int = 8, nontemporal: bool = False, relaxed: bool = False
    ) -> Event:
        site, chain = self._provenance()
        return Event(
            EventKind.WRITE,
            addr=addr,
            size=size,
            nontemporal=nontemporal,
            relaxed=relaxed,
            site=site,
            callchain=chain,
        )

    def compute(self, instructions: int = 1) -> Event:
        site, chain = self._provenance()
        return Event(EventKind.COMPUTE, size=instructions, site=site, callchain=chain)

    def fence(self, scope: str = "full") -> Event:
        """A memory fence; ``scope="load"`` is an acquire/read fence."""
        site, chain = self._provenance()
        return Event(EventKind.FENCE, fence_scope=scope, site=site, callchain=chain)

    def atomic(self, addr: int, size: int = 8) -> Event:
        site, chain = self._provenance()
        return Event(EventKind.ATOMIC, addr=addr, size=size, site=site, callchain=chain)

    def prestore(self, addr: int, size: int, op: PrestoreOp) -> Event:
        site, chain = self._provenance()
        return Event(EventKind.PRESTORE, addr=addr, size=size, op=op, site=site, callchain=chain)

    def post(self, mailbox: Mailbox, key: object) -> Event:
        """Publish a synchronisation timestamp (a partner's WAIT unblocks)."""
        site, chain = self._provenance()
        return Event(EventKind.POST, mailbox=mailbox, sync_key=key, site=site, callchain=chain)

    def wait(self, mailbox: Mailbox, key: object) -> Event:
        """Spin until ``key`` is posted; the clock advances to the post time."""
        site, chain = self._provenance()
        return Event(EventKind.WAIT, mailbox=mailbox, sync_key=key, site=site, callchain=chain)

    # -- compound access helpers ---------------------------------------------------

    def write_block(
        self, addr: int, size: int, nontemporal: bool = False, chunk: Optional[int] = None
    ) -> Iterator[Event]:
        """Sequential stores covering ``[addr, addr + size)``.

        Emits one store per ``chunk`` bytes (default: one per cache line),
        the granularity real store instructions dirty lines at.  With
        :attr:`emit_streams` set, multi-access runs become one batched
        STREAM_WRITE event the machine expands inline.
        """
        step = chunk or self.line_size
        if self.emit_streams and size > step:
            site, chain = self._provenance()
            yield Event.stream(
                EventKind.WRITE,
                addr=addr,
                size=size,
                chunk=step,
                nontemporal=nontemporal,
                site=site,
                callchain=chain,
            )
            return
        offset = 0
        while offset < size:
            length = min(step, size - offset)
            yield self.write(addr + offset, length, nontemporal=nontemporal)
            offset += length

    def read_block(
        self, addr: int, size: int, chunk: Optional[int] = None, relaxed: bool = False
    ) -> Iterator[Event]:
        """Sequential loads covering ``[addr, addr + size)``."""
        step = chunk or self.line_size
        if self.emit_streams and size > step:
            site, chain = self._provenance()
            yield Event.stream(
                EventKind.READ,
                addr=addr,
                size=size,
                chunk=step,
                relaxed=relaxed,
                site=site,
                callchain=chain,
            )
            return
        offset = 0
        while offset < size:
            length = min(step, size - offset)
            yield self.read(addr + offset, length, relaxed=relaxed)
            offset += length

    def memcpy(self, dst: int, src: int, size: int) -> Iterator[Event]:
        """Load-then-store copy at line granularity."""
        step = self.line_size
        offset = 0
        while offset < size:
            length = min(step, size - offset)
            yield self.read(src + offset, length)
            yield self.write(dst + offset, length)
            offset += length

    def memset(self, addr: int, size: int, nontemporal: bool = False) -> Iterator[Event]:
        """Store-only fill (``memset``) at line granularity."""
        return self.write_block(addr, size, nontemporal=nontemporal)


def _default_streams() -> bool:
    """Batched emission is the default; REPRO_SIM_REFERENCE=1 opts out.

    The reference (one event per access) vocabulary remains available
    for debugging and for the equivalence suite, which runs both paths
    and asserts bit-identical results.
    """
    return os.environ.get("REPRO_SIM_REFERENCE", "").lower() not in ("1", "true", "yes")


class Program:
    """Binds thread bodies to a machine and runs them to completion.

    ``streams`` selects the event vocabulary the block helpers use:
    batched STREAM events (True, the default) or the reference one-event-
    per-access form (False); ``None`` defers to the
    ``REPRO_SIM_REFERENCE`` environment variable.  Results are
    bit-identical either way (DESIGN.md §11).

    ``sanitize`` opts into the :mod:`repro.sanitize` dynamic passes:
    ``True`` attaches a default :class:`~repro.sanitize.Sanitizer`, or
    pass a configured instance.  ``obs`` opts into :mod:`repro.obs`
    telemetry the same way: ``True`` attaches a default
    :class:`~repro.obs.ObsCollector` (timeline + trace), or pass a
    configured collector; the sampled timeline lands on
    ``RunResult.timeline``.  Both are off by default and then cost
    nothing — the machine dispatches to an empty observer tuple.
    """

    def __init__(
        self,
        spec: MachineSpec,
        tracer: Optional[Tracer] = None,
        seed: int = 1234,
        sanitize: "bool | Tracer" = False,
        obs: "bool | Tracer" = False,
        streams: Optional[bool] = None,
    ) -> None:
        sanitizer: Optional[Tracer] = None
        if sanitize:
            if sanitize is True:
                # Imported lazily: repro.sanitize depends on this module's
                # package via the dirtbuster distance machinery.
                from repro.sanitize.runner import Sanitizer

                sanitizer = Sanitizer()
            else:
                sanitizer = sanitize
        collector: Optional[Tracer] = None
        if obs:
            if obs is True:
                from repro.obs.collector import ObsCollector

                collector = ObsCollector()
            else:
                collector = obs
        self.machine = Machine(spec, tracer=tracer, sanitizer=sanitizer)
        if collector is not None:
            self.machine.attach_observer(collector)
        self.obs = collector
        self.sanitizer = sanitizer
        self.allocator = Allocator(spec.line_size)
        #: The run seed, public so workloads can derive deterministic
        #: auxiliary state (arrival schedules, client streams) from it.
        self.seed = seed
        self.streams = _default_streams() if streams is None else bool(streams)
        self._bodies: List[Iterator[Event]] = []
        self._contexts: List[ThreadCtx] = []
        self.work_items = 0

    def spawn(self, body: ThreadBodyFn, *args: object, **kwargs: object) -> ThreadCtx:
        """Register one thread running ``body(ctx, *args, **kwargs)``."""
        if len(self._bodies) >= self.machine.spec.num_cores:
            raise WorkloadError(
                f"cannot spawn more threads than cores ({self.machine.spec.num_cores})"
            )
        ctx = ThreadCtx(
            tid=len(self._bodies),
            allocator=self.allocator,
            line_size=self.machine.line_size,
            seed=self.seed + 7919 * len(self._bodies),
            emit_streams=self.streams,
            core=self.machine.cores[len(self._bodies)],
        )
        self._contexts.append(ctx)
        self._bodies.append(body(ctx, *args, **kwargs))
        return ctx

    @property
    def bodies(self) -> List[Iterator[Event]]:
        """The spawned thread generators, in spawn order.

        Consumers other than :meth:`run` — the crashcheck IR extractor
        drains these directly, without a machine — get the live iterators;
        a program whose bodies were consumed elsewhere cannot also run.
        """
        return list(self._bodies)

    def add_work(self, items: int = 1) -> None:
        """Count completed application-level work (for throughput)."""
        self.work_items += items

    def run(self) -> RunResult:
        """Run all spawned threads; returns the machine's statistics.

        When a sanitizer is attached its findings land in
        :attr:`RunResult.diagnostics` (the run itself never raises).
        """
        if not self._bodies:
            raise WorkloadError("spawn at least one thread before run()")
        result = self.machine.run(self._bodies)
        result.work_items = self.work_items
        if self.sanitizer is not None:
            diagnostics = getattr(self.sanitizer, "diagnostics", None)
            if diagnostics is not None:
                result.diagnostics = list(diagnostics())
        return result
