"""Workload base class: the contract between applications and experiments.

A workload knows how to spawn its thread bodies onto a
:class:`~repro.workloads.memapi.Program` given a
:class:`~repro.core.PatchConfig` choosing per-site pre-store modes.  The
same object is consumed by three clients:

* experiments, which run it under several patch configs and compare;
* DirtBuster, which runs it with a tracer attached; and
* the Table 2 classifier, which inspects :attr:`Workload.write_intensive`
  ground truth against what the tools infer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.prestore import PatchConfig, PatchSite
from repro.errors import WorkloadError
from repro.sim.machine import MachineSpec, Tracer
from repro.sim.stats import RunResult
from repro.workloads.memapi import Program

__all__ = ["Workload", "WorkloadResult"]


@dataclass
class WorkloadResult:
    """A run's statistics plus workload-level context."""

    workload: str
    patch_summary: str
    run: RunResult

    @property
    def cycles(self) -> float:
        return self.run.cycles

    @property
    def write_amplification(self) -> float:
        return self.run.write_amplification

    def throughput(self) -> float:
        return self.run.throughput()


class Workload(ABC):
    """One evaluated application."""

    #: Stable name used in reports and Table 2.
    name: str = "abstract"
    #: How many threads the workload spawns by default.
    default_threads: int = 1

    @abstractmethod
    def patch_sites(self) -> Sequence[PatchSite]:
        """The locations where pre-stores can be inserted."""

    @abstractmethod
    def spawn(self, program: Program, patches: PatchConfig) -> None:
        """Register this workload's thread bodies on ``program``."""

    def result_extras(self) -> dict:
        """Workload-level measurements to fold into ``RunResult.extra``.

        Called after the program ran (clean completion *or* crash);
        override to export JSON-serialisable per-run aggregates — the
        serving layer reports latency quantiles and SLO accounting this
        way.  Values must be deterministic functions of (spec, patches,
        seed) so cached results stay bit-identical.
        """
        return {}

    def run(
        self,
        spec: MachineSpec,
        patches: Optional[PatchConfig] = None,
        tracer: Optional[Tracer] = None,
        seed: int = 1234,
        sanitize: "bool | Tracer" = False,
        obs: "bool | Tracer" = False,
        streams: Optional[bool] = None,
    ) -> WorkloadResult:
        """Build a fresh program on ``spec`` and run to completion.

        ``sanitize`` opts into the :mod:`repro.sanitize` passes; findings
        appear in ``result.run.diagnostics``.  ``obs`` opts into
        :mod:`repro.obs` telemetry; the sampled timeline appears on
        ``result.run.timeline``.  ``streams`` picks the event vocabulary
        (see :class:`~repro.workloads.memapi.Program`); results are
        identical either way.
        """
        patches = patches or PatchConfig.baseline()
        program = Program(
            spec, tracer=tracer, seed=seed, sanitize=sanitize, obs=obs, streams=streams
        )
        self.spawn(program, patches)
        result = program.run()
        result.extra.update(self.result_extras())
        enabled = patches.enabled_sites()
        summary = ", ".join(f"{k}={v}" for k, v in sorted(enabled.items())) or "baseline"
        return WorkloadResult(workload=self.name, patch_summary=summary, run=result)

    def site(self, name: str) -> PatchSite:
        """Look up one of this workload's patch sites by name."""
        for site in self.patch_sites():
            if site.name == name:
                return site
        raise WorkloadError(f"{self.name}: unknown patch site {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"
