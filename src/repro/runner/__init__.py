"""repro.runner: shard experiment cells across worker processes.

The runner turns any sweep — a registered experiment, a
``run_variants`` call, an AutoTuner measurement pair — into a list of
:class:`~repro.runner.cells.Cell` values and executes them through one
:func:`~repro.runner.pool.execute_cells` entry point, with

* **determinism** — a cell constructs its workload and machine fresh
  inside the worker, so the serialised ``RunResult`` is bit-identical
  whether it ran serially, in a 4-way pool, or came from the cache;
* **a content-addressed cache** — keyed on factory identity, machine
  spec, mode/patches, seed, and a fingerprint of the simulator sources
  (:class:`~repro.runner.cache.ResultCache`); and
* **a benchmark harness** — ``python -m repro.runner bench`` /
  ``make bench`` writes ``BENCH_runner.json``.

See DESIGN.md ("The runner") for the sharding model and cache-key
contract.
"""

from repro.errors import CellExecutionError, RunnerError
from repro.runner.cache import ResultCache
from repro.runner.cells import (
    Cell,
    CellRun,
    cache_key,
    code_fingerprint,
    describe_factory,
    run_cell,
)
from repro.runner.grid import Grid, load_journal, run_grid
from repro.runner.monitor import SweepEvent, SweepMonitor, replay_outcomes
from repro.runner.pool import (
    CellOutcome,
    RunnerSession,
    active_session,
    execute_cells,
    retry_delay,
    runner_session,
)

__all__ = [
    "Cell",
    "CellRun",
    "CellExecutionError",
    "CellOutcome",
    "Grid",
    "ResultCache",
    "RunnerError",
    "RunnerSession",
    "SweepEvent",
    "SweepMonitor",
    "active_session",
    "cache_key",
    "code_fingerprint",
    "describe_factory",
    "execute_cells",
    "load_journal",
    "replay_outcomes",
    "retry_delay",
    "run_cell",
    "run_grid",
    "runner_session",
]
