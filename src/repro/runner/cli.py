"""``python -m repro.runner``: bench and cache maintenance.

Examples::

    python -m repro.runner bench --workers 4 --out BENCH_runner.json
    python -m repro.runner bench --full --cache-dir build/runner-cache
    python -m repro.runner cache --dir build/runner-cache
    python -m repro.runner cache --dir build/runner-cache --clear

Parallel experiment sweeps live on the experiments CLI
(``prestores-experiments fig9 --workers 4 --cache-dir ...``); this
entry point owns the runner's own artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.log import basic_config
from repro.runner.bench import run_bench
from repro.runner.cache import ResultCache


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Process-pool experiment runner: benchmark and cache tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="time serial vs parallel, cold vs warm cache")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--cache-dir", default="build/runner-cache")
    bench.add_argument("--out", default="BENCH_runner.json")
    bench.add_argument("--full", action="store_true", help="bigger grids (slower)")
    bench.add_argument("--verbose", action="store_true", help="log per-cell progress")
    bench.add_argument(
        "--no-sim",
        action="store_true",
        help="skip the event-interpreter throughput summary (repro.sim.bench)",
    )

    cache = sub.add_parser("cache", help="inspect or clear a result cache")
    cache.add_argument("--dir", required=True)
    cache.add_argument("--clear", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "bench":
        if args.verbose:
            basic_config()
        doc = run_bench(
            workers=args.workers,
            cache_dir=args.cache_dir,
            out=args.out,
            full=args.full,
            sim=not args.no_sim,
        )
        print(json.dumps(doc, indent=2))
        ok = doc["deterministic"] and doc["warm_all_cached"]
        print(f"wrote {args.out}" + ("" if ok else " (FAILED invariants)"))
        return 0 if ok else 1

    store = ResultCache(args.dir)
    if args.clear:
        print(f"removed {store.clear()} entries from {args.dir}")
    else:
        print(f"{args.dir}: {len(store)} entries")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
