"""``python -m repro.runner``: bench, cache maintenance, sweep monitoring.

Examples::

    python -m repro.runner bench --workers 4 --out BENCH_runner.json
    python -m repro.runner bench --watch --monitor-jsonl build/sweep.jsonl
    python -m repro.runner bench --full --cache-dir build/runner-cache
    python -m repro.runner bench --outcomes build/outcomes.json
    python -m repro.runner cache --dir build/runner-cache
    python -m repro.runner cache --dir build/runner-cache --clear

``--watch`` attaches a :class:`~repro.runner.monitor.SweepMonitor` to
every sweep the bench runs and live-refreshes a fleet dashboard (worker
utilisation, cache hit-rate, cells/s, ETA, per-kind simulator event
rates); ``--monitor-jsonl`` appends the same event stream plus a final
metrics summary to a JSONL progress file for headless runs.  Parallel
experiment sweeps live on the experiments CLI (``prestores-experiments
fig9 --workers 4 --cache-dir ...``); this entry point owns the runner's
own artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.obs.log import basic_config
from repro.runner.bench import run_bench
from repro.runner.cache import ResultCache
from repro.runner.monitor import SweepEvent, SweepMonitor


class _WatchRenderer:
    """Event-bus tee: feed the monitor, repaint the TTY dashboard.

    On a real terminal the dashboard repaints in place (cursor-home +
    clear, throttled to ``min_interval`` host seconds); on a pipe it
    prints one dashboard per sweep end so logs stay readable.
    """

    def __init__(self, monitor: SweepMonitor, min_interval: float = 0.1) -> None:
        self.monitor = monitor
        self.min_interval = min_interval
        self._last_paint = 0.0
        self._tty = sys.stdout.isatty()

    def __call__(self, event: SweepEvent) -> None:
        self.monitor.emit(event)
        now = time.monotonic()
        if event.kind == "sweep_end":
            if self._tty:
                print("\x1b[H\x1b[J", end="")
            print(self.monitor.render_dashboard())
            return
        if self._tty and now - self._last_paint >= self.min_interval:
            self._last_paint = now
            print("\x1b[H\x1b[J", end="")
            print(self.monitor.render_dashboard())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Process-pool experiment runner: benchmark and cache tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="time serial vs parallel, cold vs warm cache")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--cache-dir", default="build/runner-cache")
    bench.add_argument("--out", default="BENCH_runner.json")
    bench.add_argument("--full", action="store_true", help="bigger grids (slower)")
    bench.add_argument("--verbose", action="store_true", help="log per-cell progress")
    bench.add_argument(
        "--no-sim",
        action="store_true",
        help="skip the event-interpreter throughput summary (repro.sim.bench)",
    )
    bench.add_argument(
        "--watch",
        action="store_true",
        help="live sweep dashboard: utilisation, hit-rate, cells/s, ETA, event rates",
    )
    bench.add_argument(
        "--monitor-jsonl",
        metavar="PATH",
        default=None,
        help="append the SweepMonitor event stream + summary lines here (JSONL)",
    )
    bench.add_argument(
        "--outcomes",
        metavar="PATH",
        default=None,
        help="write the per-cell CellOutcome list for every bench phase here (JSON)",
    )

    cache = sub.add_parser("cache", help="inspect or clear a result cache")
    cache.add_argument("--dir", required=True)
    cache.add_argument("--clear", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "bench":
        if args.verbose:
            basic_config()
        monitor: Optional[SweepMonitor] = None
        events = None
        if args.watch or args.monitor_jsonl:
            monitor = SweepMonitor(progress_path=args.monitor_jsonl)
            events = _WatchRenderer(monitor) if args.watch else monitor
        try:
            doc = run_bench(
                workers=args.workers,
                cache_dir=args.cache_dir,
                out=args.out,
                full=args.full,
                sim=not args.no_sim,
                events=events,
                outcomes_out=args.outcomes,
            )
        finally:
            if monitor is not None:
                monitor.close()
        print(json.dumps(doc, indent=2))
        ok = doc["deterministic"] and doc["warm_all_cached"]
        print(f"wrote {args.out}" + ("" if ok else " (FAILED invariants)"))
        if args.outcomes:
            print(f"wrote {args.outcomes}")
        if args.monitor_jsonl:
            print(f"wrote {args.monitor_jsonl}")
        return 0 if ok else 1

    store = ResultCache(args.dir)
    if args.clear:
        print(f"removed {store.clear()} entries from {args.dir}")
    else:
        print(f"{args.dir}: {len(store)} entries")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
