"""``python -m repro.runner``: bench, sweeps, cache maintenance, monitoring.

Examples::

    python -m repro.runner bench --workers 4 --out BENCH_runner.json
    python -m repro.runner bench --cells 64 --workers-sweep 1,2,4,8
    python -m repro.runner bench --watch --monitor-jsonl build/sweep.jsonl
    python -m repro.runner sweep --cells 64 --workers 2 --journal build/j.jsonl
    python -m repro.runner sweep --cells 64 --stop-after 20   # exits 75: resume me
    python -m repro.runner cache --dir build/runner-cache
    python -m repro.runner cache --dir build/runner-cache --gc
    python -m repro.runner cache --dir build/runner-cache --clear

``bench`` times the comparison phases and writes ``BENCH_runner.json``
(``--cells``/``--workers-sweep`` grow the grid and record a scaling
curve).  ``sweep`` executes a demo grid *resumably*: terminal outcomes
append to ``--journal`` as they land, a re-run skips completed cells,
and ``--stop-after N`` stops early on purpose (exit code 75, the
sysexits EX_TEMPFAIL convention: partial progress, run me again) — the
deterministic stand-in for a killed sweep in the CI smoke job.

``--watch`` attaches a :class:`~repro.runner.monitor.SweepMonitor` and
live-refreshes a fleet dashboard (worker utilisation, cache hit-rate,
cells/s, ETA, per-kind simulator event rates); ``--monitor-jsonl``
appends the same event stream plus a final metrics summary to a JSONL
progress file for headless runs.  Parallel experiment sweeps live on
the experiments CLI (``prestores-experiments fig9 --workers 4 ...``);
this entry point owns the runner's own artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.obs.log import basic_config
from repro.runner.bench import bench_cells, run_bench
from repro.runner.cache import ResultCache
from repro.runner.grid import run_grid
from repro.runner.monitor import SweepEvent, SweepMonitor

#: sysexits.h EX_TEMPFAIL: the sweep stopped with work remaining —
#: rerun the same command to resume from the journal.
EXIT_RESUMABLE = 75


class _WatchRenderer:
    """Event-bus tee: feed the monitor, repaint the TTY dashboard.

    On a real terminal the dashboard repaints in place (cursor-home +
    clear, throttled to ``min_interval`` host seconds); on a pipe it
    prints one dashboard per sweep end so logs stay readable.
    """

    def __init__(self, monitor: SweepMonitor, min_interval: float = 0.1) -> None:
        self.monitor = monitor
        self.min_interval = min_interval
        self._last_paint = 0.0
        self._tty = sys.stdout.isatty()

    def __call__(self, event: SweepEvent) -> None:
        self.monitor.emit(event)
        now = time.monotonic()
        if event.kind == "sweep_end":
            if self._tty:
                print("\x1b[H\x1b[J", end="")
            print(self.monitor.render_dashboard())
            return
        if self._tty and now - self._last_paint >= self.min_interval:
            self._last_paint = now
            print("\x1b[H\x1b[J", end="")
            print(self.monitor.render_dashboard())


def _parse_workers_sweep(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"worker counts must be >= 1: {text!r}")
    return values


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Process-pool experiment runner: benchmark, sweeps, cache tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="time serial vs parallel, cold vs warm cache")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument(
        "--cells",
        type=int,
        default=None,
        metavar="N",
        help="grow the grid to N cells (seed axis); default keeps the 8-cell sweep",
    )
    bench.add_argument(
        "--workers-sweep",
        type=_parse_workers_sweep,
        default=None,
        metavar="W1,W2,...",
        help="also record a cold+warm scaling curve at these worker counts",
    )
    bench.add_argument("--chunk-size", type=int, default=None, help="cells per dispatch chunk")
    bench.add_argument("--cache-dir", default="build/runner-cache")
    bench.add_argument("--out", default="BENCH_runner.json")
    bench.add_argument("--full", action="store_true", help="bigger grids (slower)")
    bench.add_argument("--verbose", action="store_true", help="log per-cell progress")
    bench.add_argument(
        "--no-sim",
        action="store_true",
        help="skip the event-interpreter throughput summary (repro.sim.bench)",
    )
    bench.add_argument(
        "--no-serving",
        action="store_true",
        help="skip the serving throughput cell (repro.traffic)",
    )
    bench.add_argument(
        "--watch",
        action="store_true",
        help="live sweep dashboard: utilisation, hit-rate, cells/s, ETA, event rates",
    )
    bench.add_argument(
        "--monitor-jsonl",
        metavar="PATH",
        default=None,
        help="append the SweepMonitor event stream + summary lines here (JSONL)",
    )
    bench.add_argument(
        "--outcomes",
        metavar="PATH",
        default=None,
        help="write the per-cell CellOutcome list for every bench phase here (JSON)",
    )

    sweep = sub.add_parser("sweep", help="run a demo grid resumably (journal + skip)")
    sweep.add_argument("--cells", type=int, default=64, metavar="N", help="grid size")
    sweep.add_argument("--workers", type=int, default=2)
    sweep.add_argument("--chunk-size", type=int, default=None, help="cells per dispatch chunk")
    sweep.add_argument("--retries", type=int, default=1)
    sweep.add_argument("--full", action="store_true", help="bigger grids (slower)")
    sweep.add_argument("--cache-dir", default=None, help="optional ResultCache directory")
    sweep.add_argument(
        "--journal",
        default="build/sweep-journal.jsonl",
        help="outcome journal path (appended as cells finish)",
    )
    sweep.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore completed cells already in the journal; re-run everything",
    )
    sweep.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N pending cells, then exit 75 if work remains",
    )
    sweep.add_argument("--verbose", action="store_true", help="log per-cell progress")
    sweep.add_argument("--watch", action="store_true", help="live sweep dashboard")
    sweep.add_argument(
        "--monitor-jsonl",
        metavar="PATH",
        default=None,
        help="append the SweepMonitor event stream + summary lines here (JSONL)",
    )

    cache = sub.add_parser("cache", help="inspect, GC, or clear a result cache")
    cache.add_argument("--dir", required=True)
    cache.add_argument("--clear", action="store_true")
    cache.add_argument(
        "--gc",
        action="store_true",
        help="adopt/migrate stray payloads, drop orphaned index entries, compact",
    )

    args = parser.parse_args(argv)

    if args.command == "bench":
        if args.verbose:
            basic_config()
        monitor: Optional[SweepMonitor] = None
        events = None
        if args.watch or args.monitor_jsonl:
            monitor = SweepMonitor(progress_path=args.monitor_jsonl)
            events = _WatchRenderer(monitor) if args.watch else monitor
        try:
            doc = run_bench(
                workers=args.workers,
                cache_dir=args.cache_dir,
                out=args.out,
                full=args.full,
                cells_count=args.cells,
                workers_sweep=args.workers_sweep,
                chunk_size=args.chunk_size,
                sim=not args.no_sim,
                serving=not args.no_serving,
                events=events,
                outcomes_out=args.outcomes,
            )
        finally:
            if monitor is not None:
                monitor.close()
        print(json.dumps(doc, indent=2))
        ok = doc["deterministic"] and doc["warm_all_cached"]
        print(f"wrote {args.out}" + ("" if ok else " (FAILED invariants)"))
        if args.outcomes:
            print(f"wrote {args.outcomes}")
        if args.monitor_jsonl:
            print(f"wrote {args.monitor_jsonl}")
        return 0 if ok else 1

    if args.command == "sweep":
        if args.verbose:
            basic_config()
        cells = bench_cells(full=args.full, count=args.cells)
        store = ResultCache(args.cache_dir) if args.cache_dir else None
        monitor = None
        events = None
        if args.watch or args.monitor_jsonl:
            monitor = SweepMonitor(progress_path=args.monitor_jsonl, cache=store)
            events = _WatchRenderer(monitor) if args.watch else monitor
        try:
            outcomes = run_grid(
                cells,
                journal=args.journal,
                resume=not args.no_resume,
                limit=args.stop_after,
                events=events,
                workers=args.workers,
                chunk_size=args.chunk_size,
                retries=args.retries,
                cache=store,
            )
        finally:
            if monitor is not None:
                monitor.close()
        resumed = sum(1 for o in outcomes if o.worker == "journal")
        failed = sum(1 for o in outcomes if o.status in ("failed", "timeout"))
        summary = {
            "cells": len(cells),
            "resumed": resumed,
            "executed": len(outcomes) - resumed,
            "cached": sum(1 for o in outcomes if o.cached) - resumed,
            "failed": failed,
            "remaining": len(cells) - len(outcomes),
            "journal": args.journal,
        }
        print(json.dumps(summary, indent=2))
        if args.monitor_jsonl:
            print(f"wrote {args.monitor_jsonl}")
        if summary["remaining"]:
            print(f"{summary['remaining']} cells pending; rerun to resume (exit 75)")
            return EXIT_RESUMABLE
        return 1 if failed else 0

    store = ResultCache(args.dir)
    if args.clear:
        print(f"removed {store.clear()} entries from {args.dir}")
    elif args.gc:
        counts = store.gc()
        stats = store.stats()
        print(json.dumps({"gc": counts, "entries": stats["entries"], "bytes": stats["bytes"]}))
    else:
        stats = store.stats()
        print(f"{args.dir}: {stats['entries']} entries, {stats['bytes']:,} bytes")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
