"""Cells: the unit of work the runner shards across worker processes.

A :class:`Cell` is one fully-specified simulation — workload factory,
machine spec, pre-store mode (or an explicit :class:`PatchConfig`),
seed, and the opt-in telemetry/sanitizer flags.  Cells are plain
picklable data: the workload itself is constructed *inside* the worker
(:func:`run_cell`), never shipped across the process boundary, which is
what makes results bit-identical regardless of worker count — every
cell starts from a fresh workload and a fresh per-cell seeded machine,
exactly as the serial path does.

:func:`describe_factory` and :func:`cache_key` derive the stable
identity used by :class:`repro.runner.cache.ResultCache`.  Factories
built from named module-level callables (classes, functions, and
:func:`functools.partial` over them) are describable; lambdas and
closures are not — those cells still run, they just never cache.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.sim.machine import MachineSpec
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["Cell", "CellRun", "run_cell", "describe_factory", "cache_key", "code_fingerprint"]


@dataclass(frozen=True)
class Cell:
    """One simulation the runner can execute, cache, and shard."""

    #: Zero-argument factory returning a fresh :class:`Workload`.
    make_workload: Callable[[], Workload]
    spec: MachineSpec
    #: Pre-store mode applied at the workload's endorsed (or all) sites.
    #: Ignored when :attr:`patches` is given.
    mode: Optional[PrestoreMode] = PrestoreMode.NONE
    seed: int = 1234
    endorsed_only: bool = True
    obs: bool = False
    sanitize: bool = False
    #: Explicit patch configuration (the AutoTuner path); overrides
    #: the mode-derived config.
    patches: Optional[PatchConfig] = field(default=None, compare=False)
    #: Statically verify crash consistency (:mod:`repro.crashcheck`) on a
    #: fresh workload instance before the run; the report lands in
    #: ``result.extra["crashcheck_report"]``.  The persistence domain
    #: follows the fault plan's (ADR without one).
    crashcheck: bool = False
    #: Owning experiment id, for log context (optional).
    experiment: Optional[str] = None
    #: Deterministic fault plan; a non-empty plan routes the cell through
    #: :func:`repro.faults.run_with_faults` and lands the crash report in
    #: ``result.extra["fault_report"]``.  None (or an empty plan) is the
    #: plain, bit-identical run.
    fault_plan: Optional["FaultPlan"] = None


@dataclass(frozen=True)
class CellRun:
    """What a worker sends back: the serialised result plus provenance."""

    #: ``RunResult.to_json()`` — the canonical, bit-stable payload.
    result_json: str
    workload: str
    run_id: str
    #: ``pid<N>`` of the executing process (the parent itself when inline).
    worker: str
    wall_s: float


def _derive_config(cell: Cell, workload: Workload) -> PatchConfig:
    if cell.patches is not None:
        return cell.patches
    if cell.mode is None or cell.mode is PrestoreMode.NONE:
        return PatchConfig.baseline()
    # Deferred import: experiments.common itself builds Cells.
    from repro.experiments.common import endorsed_patches, patch_all_sites

    patch = endorsed_patches if cell.endorsed_only else patch_all_sites
    return patch(workload, cell.mode)


def cell_run_id(cell: Cell, workload_name: str) -> str:
    """The run id stamped on log records: workload/machine/mode/seed."""
    if cell.patches is not None and cell.mode is None:
        mode = "patched"
    else:
        mode = (cell.mode or PrestoreMode.NONE).value
    return f"{workload_name}/{cell.spec.name}/{mode}/s{cell.seed}"


def run_cell(cell: Cell) -> CellRun:
    """Execute one cell; top-level so process pools can pickle it.

    Constructs the workload fresh, derives the patch config, and runs
    with the cell's seed — byte-for-byte the same computation whether
    called inline or in a pool worker.  Log records emitted during the
    run carry the run id and the worker's pid.
    """
    from repro.obs.log import run_context

    started = time.perf_counter()
    workload = cell.make_workload()
    config = _derive_config(cell, workload)
    run_id = cell_run_id(cell, workload.name)
    worker = f"pid{os.getpid()}"
    crashcheck_doc = None
    if cell.crashcheck:
        from repro.crashcheck import check_workload

        # Extraction consumes generators and appends to the durability
        # log, so the static pass gets its own fresh instance.
        adr = cell.fault_plan.combiner_persistent if cell.fault_plan is not None else True
        crashcheck_doc = check_workload(
            cell.make_workload(),
            cell.spec,
            patches=_derive_config(cell, workload),
            adr=adr,
            seed=cell.seed,
        ).to_dict()
    with run_context(run_id=run_id, experiment_id=cell.experiment, worker=worker):
        if cell.fault_plan is not None and not cell.fault_plan.is_empty():
            from repro.faults.harness import run_with_faults

            report = run_with_faults(
                workload,
                cell.spec,
                cell.fault_plan,
                patches=config,
                seed=cell.seed,
                sanitize=cell.sanitize,
                obs=cell.obs,
            )
            result = report.result
            # The report (image digest included) rides inside the
            # RunResult, so caching and determinism checks cover it.
            doc = report.to_dict(include_image=False)
            if report.image is not None:
                doc["image_digest"] = report.image.digest()
            result.extra["fault_report"] = doc
        else:
            result = workload.run(
                cell.spec, config, seed=cell.seed, sanitize=cell.sanitize, obs=cell.obs
            ).run
        if crashcheck_doc is not None:
            result.extra["crashcheck_report"] = crashcheck_doc
    return CellRun(
        result_json=result.to_json(),
        workload=workload.name,
        run_id=run_id,
        worker=worker,
        wall_s=time.perf_counter() - started,
    )


# -- stable identity (the cache key) ------------------------------------------


def describe_factory(factory: object) -> Optional[str]:
    """A stable textual identity for a workload factory, or None.

    Module-level classes and functions describe as ``module.qualname``;
    :func:`functools.partial` over a describable callable appends its
    (repr-stable) arguments.  Lambdas, closures, and arbitrary instances
    return None: they run fine but cannot be cached, because nothing
    ties their identity to what they will build.
    """
    if isinstance(factory, functools.partial):
        inner = describe_factory(factory.func)
        if inner is None:
            return None
        args = ", ".join(repr(a) for a in factory.args)
        kwargs = ", ".join(f"{k}={factory.keywords[k]!r}" for k in sorted(factory.keywords))
        return f"partial({inner})({args}|{kwargs})"
    if isinstance(factory, type) or inspect.isfunction(factory):
        name = getattr(factory, "__qualname__", "")
        if "<lambda>" in name or "<locals>" in name:
            return None
        return f"{factory.__module__}.{name}"
    return None


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file: edits invalidate the cache.

    Hashes relative path + contents of ``src/repro/**/*.py`` in sorted
    order, so cached results can never outlive the simulator code that
    produced them.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def cache_key(cell: Cell) -> Optional[str]:
    """Content-addressed key for a cell, or None when uncacheable.

    Covers everything that determines the result: the factory identity,
    the full machine spec, mode/patches, seed, the opt-in flags, and the
    :func:`code_fingerprint` of the simulator sources.
    """
    import dataclasses

    desc = describe_factory(cell.make_workload)
    if desc is None:
        return None
    patches = (
        None
        if cell.patches is None
        else sorted((s, m.value) for s, m in cell.patches.enabled_sites().items())
    )
    doc = {
        "factory": desc,
        "machine": dataclasses.asdict(cell.spec),
        "mode": None if cell.mode is None else cell.mode.value,
        "patches": patches,
        "seed": cell.seed,
        "endorsed_only": cell.endorsed_only,
        "obs": bool(cell.obs),
        "sanitize": bool(cell.sanitize),
        "faults": None if cell.fault_plan is None else cell.fault_plan.to_dict(),
        "crashcheck": bool(cell.crashcheck),
        "code": code_fingerprint(),
    }
    payload = json.dumps(doc, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()
