"""Declarative parameter grids and resumable sweep execution.

The config-matrix shape of the paper's evaluation — machines × modes ×
workloads × seeds — made first-class: a :class:`Grid` expands its axes
into the runner's :class:`~repro.runner.cells.Cell` list in a fixed
row-major order, and :func:`run_grid` executes it with an append-only
**outcome journal** so a killed sweep restarts where it stopped.

The journal protocol (DESIGN.md §16) is one JSON line per event:

* a ``begin`` line per invocation (total cells, code fingerprint), then
* one ``outcome`` line per terminal cell, appended and flushed *as the
  sweep runs* (via the pool's event-bus seam), so a ``kill -9`` loses at
  most the in-flight cells.

Completed (``ok``/``cached``) lines carry the cell's content-addressed
cache key and its canonical ``result_json`` verbatim; on re-run with
``resume=True`` those cells are skipped and their outcomes rebuilt from
the journal — byte-identical to a fresh run, because the key already
embeds the code fingerprint (a journal written by an older tree simply
never matches).  ``failed``/``timeout`` lines are recorded for
observability but never resumed: those cells run again.  A torn final
line (the kill landed mid-write) is skipped, not fatal.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.prestore import PrestoreMode
from repro.obs.log import get_logger
from repro.runner.cells import Cell, cache_key, code_fingerprint
from repro.runner.monitor import SweepEvent
from repro.runner.pool import CellOutcome, EventBus, execute_cells
from repro.sim.machine import MachineSpec
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["Grid", "run_grid", "load_journal", "JOURNAL_SCHEMA"]

_log = get_logger("grid")

JOURNAL_SCHEMA = "repro.sweep_journal/v1"

#: Terminal statuses a journal entry can resume (they carry a result).
_RESUMABLE = ("ok", "cached")


@dataclass(frozen=True)
class Grid:
    """A declarative sweep: axes that expand into a cell list.

    Cells come out in row-major order — factories slowest, seeds
    fastest — so a grid's expansion is stable across runs (the resume
    protocol and bit-identity comparisons rely on that).

    ``factories`` are the same zero-argument workload factories
    :class:`~repro.runner.cells.Cell` takes (module-level callables and
    :func:`functools.partial` over them cache and journal; lambdas run
    but do neither).
    """

    factories: Sequence[Callable[[], Workload]]
    machines: Sequence[MachineSpec]
    modes: Sequence[Optional[PrestoreMode]] = (PrestoreMode.NONE,)
    seeds: Sequence[int] = (1234,)
    endorsed_only: bool = True
    obs: bool = False
    sanitize: bool = False
    crashcheck: bool = False
    experiment: Optional[str] = None
    #: Fault-plan axis (the serving scenarios sweep steady / degraded /
    #: crash): None or an empty plan is the plain, bit-identical run.
    fault_plans: Sequence[Optional["FaultPlan"]] = (None,)

    def __post_init__(self) -> None:
        # Freeze the axes: a Grid is a value, not a mutable builder.
        for name in ("factories", "machines", "modes", "fault_plans", "seeds"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def __len__(self) -> int:
        return (
            len(self.factories)
            * len(self.machines)
            * len(self.modes)
            * len(self.fault_plans)
            * len(self.seeds)
        )

    def cells(self) -> List[Cell]:
        """The expanded cell list, row-major over the axes."""
        return [
            Cell(
                make_workload=factory,
                spec=spec,
                mode=mode,
                seed=seed,
                endorsed_only=self.endorsed_only,
                obs=self.obs,
                sanitize=self.sanitize,
                crashcheck=self.crashcheck,
                experiment=self.experiment,
                fault_plan=plan,
            )
            for factory, spec, mode, plan, seed in itertools.product(
                self.factories, self.machines, self.modes, self.fault_plans, self.seeds
            )
        ]

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells())


def load_journal(path: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Resumable entries of a journal: cache key -> newest outcome line.

    Tolerates a missing file, unparseable (torn) lines, and unknown
    kinds; only ``ok``/``cached`` outcomes with a key and a result are
    candidates, and the newest line per key wins.
    """
    entries: Dict[str, Dict[str, object]] = {}
    journal = Path(path)
    if not journal.is_file():
        return entries
    try:
        lines = journal.read_text().splitlines()
    except OSError:
        return entries
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue  # torn tail from a killed writer
        if not isinstance(doc, dict) or doc.get("kind") != "outcome":
            continue
        key = doc.get("key")
        if (
            isinstance(key, str)
            and doc.get("status") in _RESUMABLE
            and isinstance(doc.get("result_json"), str)
        ):
            entries[key] = doc
    return entries


@dataclass
class _JournalWriter:
    """Event-bus tee: forward to the user's bus, append outcome lines.

    Lives on the pool's ``events=`` seam so lines land (and flush) the
    moment each cell finishes — what makes kill-and-resume lose at most
    the in-flight cells.  A raising user subscriber is detached here
    (mirroring the pool's own policy) so journaling survives it; a
    journal write failure is logged and disables further writes rather
    than failing the sweep.
    """

    path: Path
    #: Cache key per pending cell, aligned with the sweep's indices.
    keys: Sequence[Optional[str]]
    user_bus: EventBus = None
    _fh: Optional[IO[str]] = field(default=None, repr=False)
    _broken: bool = False

    def __call__(self, event: SweepEvent) -> None:
        if self.user_bus is not None:
            try:
                self.user_bus(event)
            except Exception:
                self.user_bus = None
                _log.warning("journal tee: user subscriber raised; detaching it", exc_info=True)
        if event.kind not in ("finish", "cache_hit", "timeout", "failed"):
            return
        outcome = event.outcome
        if outcome is None or self._broken:
            return
        key = self.keys[event.index] if 0 <= event.index < len(self.keys) else None
        doc: Dict[str, object] = {
            "kind": "outcome",
            "key": key,
            "run_id": outcome.run_id,
            "status": outcome.status,
            "worker": outcome.worker,
            "wall_s": round(outcome.wall_s, 6),
            "attempts": outcome.attempts,
        }
        if outcome.status in _RESUMABLE and outcome.result_json is not None:
            doc["result_json"] = outcome.result_json
        if outcome.error:
            doc["error"] = outcome.error
        self._write(doc)

    def begin(self, total: int, resumed: int) -> None:
        self._write(
            {
                "kind": "begin",
                "schema": JOURNAL_SCHEMA,
                "total": total,
                "resumed": resumed,
                "fingerprint": code_fingerprint(),
                "t": time.time(),
            }
        )

    def _write(self, doc: Dict[str, object]) -> None:
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
            self._fh.flush()
        except OSError:
            self._broken = True
            _log.warning("journal write failed; disabling journaling", exc_info=True)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def run_grid(
    grid: Union[Grid, Sequence[Cell]],
    journal: Union[str, Path, None] = None,
    resume: bool = True,
    limit: Optional[int] = None,
    events: EventBus = None,
    **execute_kw: object,
) -> List[CellOutcome]:
    """Execute a grid (or explicit cell list), resumably.

    With a ``journal`` path, every terminal outcome is appended as the
    sweep runs; when ``resume`` is true, cells whose completed outcome
    is already journalled are *not* re-executed — their outcomes come
    back rebuilt from the journal (``worker="journal"``, ``cached``),
    with ``result_json`` byte-identical to the original run.

    ``limit`` caps how many pending cells this invocation executes
    (the rest stay pending for the next resume) — the deterministic
    stand-in for a killed sweep in tests and smoke jobs.

    Remaining keyword arguments (``workers``, ``cache``, ``chunk_size``,
    ``retries``, ``timeout_s``, ``progress``, ``on_error``) pass through
    to :func:`~repro.runner.pool.execute_cells`; outcomes return in grid
    order (resumed cells first-class among them).  Cells that were
    neither resumed nor executed (beyond ``limit``) produce no outcome.
    """
    cells = grid.cells() if isinstance(grid, Grid) else list(grid)
    keys = [cache_key(cell) for cell in cells]
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)

    resumed = 0
    if journal is not None and resume:
        from repro.sim.stats import RunResult

        journalled = load_journal(journal)
        for i, key in enumerate(keys):
            entry = journalled.get(key) if key is not None else None
            if entry is None:
                continue
            text = str(entry["result_json"])
            try:
                result = RunResult.from_json(text)
            except Exception:
                continue  # corrupt journal payload: just re-run the cell
            outcomes[i] = CellOutcome(
                cell=cells[i],
                result=result,
                result_json=text,
                run_id=str(entry.get("run_id", "")),
                worker="journal",
                cached=True,
                wall_s=0.0,
                status="cached",
                attempts=0,
            )
            resumed += 1

    pending = [i for i, outcome in enumerate(outcomes) if outcome is None]
    if limit is not None:
        pending = pending[: max(0, int(limit))]

    writer: Optional[_JournalWriter] = None
    bus: EventBus = events
    if journal is not None:
        writer = _JournalWriter(
            path=Path(journal),
            keys=[keys[i] for i in pending],
            user_bus=events,
        )
        writer.begin(total=len(cells), resumed=resumed)
        bus = writer
    try:
        if pending:
            executed = execute_cells(
                [cells[i] for i in pending], events=bus, **execute_kw  # type: ignore[arg-type]
            )
            for slot, outcome in zip(pending, executed):
                outcomes[slot] = outcome
    finally:
        if writer is not None:
            writer.close()
    return [outcome for outcome in outcomes if outcome is not None]
