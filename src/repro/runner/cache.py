"""Content-addressed on-disk cache of serialised run results.

Sharded layout (v2) under the cache root::

    <root>/<key[:2]>/<key[2:4]>/<key>.json        # RunResult.to_json()
    <root>/<key[:2]>/<key[2:4]>/<key>.meta.json   # provenance sidecar
    <root>/manifest.jsonl                         # append-only index

The two-level fan-out keeps every directory small at a million entries
(65 536 shards of ~15 files each), and the manifest makes ``__len__``,
``stats`` and eviction **O(1)** in the entry count: one JSON line per
mutation (``add``/``del``), replayed into an in-memory index on first
use — the hot path never walks a directory.  Payload files stay the
source of truth: ``load`` addresses them directly, so a lost or stale
manifest costs bookkeeping accuracy, never correctness (``gc()``
re-adopts anything untracked).

Two older layouts are read through transparently and migrated on hit:
the v1 single-level fan-out (``<root>/<key[:2]>/<key>.json``) and the
original flat layout (``<root>/<key>.json``).

The payload file holds exactly the bytes ``RunResult.to_json()``
produced, so a cache hit reproduces the serialised result *bit for
bit* — the determinism contract extends through the cache.  Writes go
through a temp file + fsync + ``os.replace`` so a crashed run never
leaves a torn entry, and concurrent writers of the same key are
idempotent; manifest appends are single ``O_APPEND`` writes, so two
sessions storing concurrently interleave whole lines, never corrupt
them.

With ``max_bytes`` set, stores evict least-recently-used entries
(recency = payload mtime, bumped on every hit) until the payload bytes
fit the budget.  Hit/miss/evict/store counters are exposed through
:meth:`stats` and published as :class:`~repro.obs.metrics.MetricsRegistry`
gauges via :meth:`publish_metrics`.

Keys come from :func:`repro.runner.cells.cache_key` and already include
the code fingerprint; a stale entry from an older tree simply never
gets looked up again (until evicted or cleared).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from repro.runner.cells import Cell, cache_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.stats import RunResult

__all__ = ["ResultCache", "MANIFEST_NAME", "MANIFEST_SCHEMA"]

MANIFEST_NAME = "manifest.jsonl"
MANIFEST_SCHEMA = "repro.cache_manifest/v1"

#: Evict below this fraction of ``max_bytes`` once over budget, so a
#: store that trips the limit does one sorted pass, not one per store.
_EVICT_HYSTERESIS = 0.9


class ResultCache:
    """Filesystem-backed map from cell key to serialised RunResult."""

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.stores = 0
        self._registry = registry
        #: key -> [payload bytes, last-use mtime]; replayed from the
        #: manifest once, then maintained by this instance's own ops.
        self._index: Dict[str, List[float]] = {}
        self._bytes = 0
        self._index_loaded = False

    # -- key plumbing -------------------------------------------------------

    def key_for(self, cell: Cell) -> Optional[str]:
        """The cell's content-addressed key (None: uncacheable factory)."""
        return cache_key(cell)

    def _shard_dir(self, key: str) -> Path:
        return self.root / key[:2] / key[2:4]

    def _payload_path(self, key: str) -> Path:
        return self._shard_dir(key) / f"{key}.json"

    def _meta_path(self, key: str) -> Path:
        return self._shard_dir(key) / f"{key}.meta.json"

    def _legacy_paths(self, key: str) -> Iterator[Tuple[Path, Path]]:
        """(payload, meta) locations of the pre-shard layouts, newest first."""
        yield self.root / key[:2] / f"{key}.json", self.root / key[:2] / f"{key}.meta.json"
        yield self.root / f"{key}.json", self.root / f"{key}.meta.json"

    @property
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    # -- manifest index -----------------------------------------------------

    def _ensure_index(self) -> None:
        if not self._index_loaded:
            self._load_index()

    def _load_index(self) -> None:
        """Replay the manifest (building one from a pre-manifest tree)."""
        self._index = {}
        self._bytes = 0
        self._index_loaded = True
        manifest = self._manifest_path
        if manifest.is_file():
            try:
                lines = manifest.read_text().splitlines()
            except OSError:
                lines = []
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    op = json.loads(line)
                except ValueError:
                    continue  # torn tail from a killed writer
                if isinstance(op, dict):
                    self._apply_op(op)
            return
        # No manifest: a pre-manifest (or hand-built) cache.  Adopt every
        # payload already on disk — the one permitted walk, paid once.
        if self.root.is_dir():
            adds = []
            for payload in self._walk_payloads():
                key = payload.name[: -len(".json")]
                try:
                    stat = payload.stat()
                except OSError:
                    continue
                op = {"op": "add", "key": key, "bytes": stat.st_size, "mtime": stat.st_mtime}
                self._apply_op(op)
                adds.append(op)
            if adds:
                self._write_manifest(adds)

    def _apply_op(self, op: Dict[str, object]) -> None:
        """Fold one manifest line into the index (idempotently)."""
        key = op.get("key")
        if not isinstance(key, str):
            return
        kind = op.get("op")
        if kind == "add":
            size = float(op.get("bytes", 0) or 0)
            mtime = float(op.get("mtime", 0) or 0)
            previous = self._index.get(key)
            if previous is not None:
                self._bytes -= int(previous[0])
            self._index[key] = [size, mtime]
            self._bytes += int(size)
        elif kind == "del":
            previous = self._index.pop(key, None)
            if previous is not None:
                self._bytes -= int(previous[0])

    def _append_op(self, op: Dict[str, object]) -> None:
        """Publish one mutation: apply in memory, append one whole line.

        ``O_APPEND`` + a single write keeps concurrent sessions' lines
        whole; replay is idempotent, so re-reading is always safe.
        """
        self._ensure_index()
        self._apply_op(op)
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(op, sort_keys=True) + "\n"
        fd = os.open(str(self._manifest_path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def _write_manifest(self, ops: List[Dict[str, object]]) -> None:
        """Atomically rewrite the manifest from scratch (compaction)."""
        header = {"op": "init", "schema": MANIFEST_SCHEMA}
        text = "".join(json.dumps(op, sort_keys=True) + "\n" for op in [header] + ops)
        self.root.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self._manifest_path, text)

    def refresh(self) -> None:
        """Re-read the manifest (pick up other sessions' stores)."""
        self._index_loaded = False
        self._load_index()

    def compact(self) -> None:
        """Rewrite the manifest as one ``add`` per live entry."""
        self._ensure_index()
        self._write_manifest(
            [
                {"op": "add", "key": key, "bytes": int(size), "mtime": mtime}
                for key, (size, mtime) in sorted(self._index.items())
            ]
        )

    def _walk_payloads(self) -> Iterator[Path]:
        """Every payload file on disk, whatever layout it uses (O(n))."""
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") and not name.endswith(".meta.json"):
                    yield Path(dirpath) / name

    # -- read/write ---------------------------------------------------------

    def load(self, key: str) -> Optional[str]:
        """The stored RunResult JSON, or None on a miss (counts stats).

        O(1): the sharded path is addressed directly, falling back to
        the two legacy layouts (whose entries are migrated in place on
        first hit).  A hit bumps the entry's recency for LRU eviction.
        """
        path = self._payload_path(key)
        try:
            text = path.read_text()
        except OSError:
            text = self._load_legacy(key)
            if text is None:
                self.misses += 1
                return None
            path = self._payload_path(key)
        self.hits += 1
        self._touch(key, path)
        return text

    def _load_legacy(self, key: str) -> Optional[str]:
        """Read-through an old-layout entry, migrating it into the shard."""
        for payload, meta in self._legacy_paths(key):
            try:
                text = payload.read_text()
            except OSError:
                continue
            new_payload = self._payload_path(key)
            new_payload.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(payload, new_payload)
                if meta.is_file():
                    os.replace(meta, self._meta_path(key))
            except OSError:
                # Lost a migration race; the bytes we read are still good.
                pass
            self._append_op(
                {"op": "add", "key": key, "bytes": len(text.encode()), "mtime": time.time()}
            )
            return text
        return None

    def _touch(self, key: str, path: Path) -> None:
        """Bump LRU recency: in-memory always, on disk best-effort."""
        now = time.time()
        self._ensure_index()
        entry = self._index.get(key)
        if entry is not None:
            entry[1] = now
        else:
            # Manifest missed this entry (e.g. adopted by another
            # session after our index loaded); re-book it.
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            self._append_op({"op": "add", "key": key, "bytes": size, "mtime": now})
        try:
            os.utime(path)
        except OSError:
            pass

    def load_result(self, key: str) -> Optional[Tuple[str, "RunResult"]]:
        """Load and *validate* an entry: ``(payload_text, RunResult)``.

        A payload that exists but does not parse back into a
        :class:`~repro.sim.stats.RunResult` (torn write from a crashed
        run, disk corruption, truncation) is treated as a miss: the
        entry is evicted so the slot gets rewritten, and ``None`` is
        returned instead of letting ``RunResult.from_json`` explode in
        the caller.
        """
        from repro.sim.stats import RunResult

        text = self.load(key)
        if text is None:
            return None
        try:
            return text, RunResult.from_json(text)
        except Exception:
            # The hit was illusory: re-book it as a miss and drop the entry.
            self.hits -= 1
            self.misses += 1
            self.corrupt += 1
            self.evict(key)
            return None

    def evict(self, key: str) -> None:
        """Remove one entry (payload + meta sidecar), ignoring races."""
        paths = [self._payload_path(key), self._meta_path(key)]
        for payload, meta in self._legacy_paths(key):
            paths += [payload, meta]
        for path in paths:
            try:
                path.unlink()
            except OSError:
                pass
        self._ensure_index()
        if key in self._index:
            self._append_op({"op": "del", "key": key})
        self.evictions += 1

    def load_meta(self, key: str) -> Dict[str, object]:
        candidates = [self._meta_path(key)] + [meta for _payload, meta in self._legacy_paths(key)]
        for path in candidates:
            try:
                return json.loads(path.read_text())
            except (OSError, ValueError):
                continue
        return {}

    def store(self, key: str, result_json: str, meta: Optional[Dict[str, object]] = None) -> None:
        """Atomically persist a result (and its provenance sidecar).

        Publishes the entry to the manifest and, when ``max_bytes`` is
        configured, evicts least-recently-used entries until the payload
        bytes fit the budget again.
        """
        payload = self._payload_path(key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(payload, result_json)
        if meta is not None:
            self._atomic_write(self._meta_path(key), json.dumps(meta, indent=2))
        self.stores += 1
        self._append_op(
            {"op": "add", "key": key, "bytes": len(result_json.encode()), "mtime": time.time()}
        )
        if self.max_bytes is not None and self._bytes > self.max_bytes:
            self._evict_lru(keep=key)

    def _evict_lru(self, keep: Optional[str] = None) -> None:
        """Drop oldest entries until under the hysteresis watermark."""
        target = int(self.max_bytes * _EVICT_HYSTERESIS) if self.max_bytes else 0
        victims = sorted(
            (item for item in self._index.items() if item[0] != keep),
            key=lambda item: item[1][1],
        )
        for key, _entry in victims:
            if self._bytes <= target:
                break
            self.evict(key)

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                # Reach the medium before the rename publishes the entry:
                # os.replace is only atomic for data already durable, and
                # this cache's whole point is surviving crashed runs.
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        """Entry count from the manifest index — no directory walk."""
        self._ensure_index()
        return len(self._index)

    @property
    def total_bytes(self) -> int:
        """Payload bytes tracked by the index (meta sidecars excluded)."""
        self._ensure_index()
        return self._bytes

    def clear(self) -> int:
        """Delete every entry; returns how many payloads were removed."""
        removed = 0
        if self.root.is_dir():
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    path = Path(dirpath) / name
                    if name.endswith(".json") and not name.endswith(".meta.json"):
                        removed += 1
                    elif not (
                        name.endswith(".meta.json")
                        or name.startswith(".tmp-")
                        or name == MANIFEST_NAME
                    ):
                        continue
                    try:
                        path.unlink()
                    except OSError:
                        pass
        self._index = {}
        self._bytes = 0
        self._index_loaded = True
        return removed

    def gc(self) -> Dict[str, int]:
        """Reconcile disk and manifest; collect temp/orphaned litter.

        One full walk (a maintenance op, never on the hot path) that

        * deletes stale ``.tmp-*`` files from crashed writers,
        * **adopts** valid payloads the manifest does not know about
          (crash between payload rename and manifest append, or entries
          written by a pre-manifest tree) — adopting, not deleting,
          because payload files are the source of truth,
        * migrates legacy-layout payloads into their shard,
        * deletes meta sidecars whose payload is gone, and
        * drops index entries whose payload vanished,

        then compacts the manifest.  Returns counts per action.
        """
        self._ensure_index()
        counts = {"tmp_removed": 0, "adopted": 0, "migrated": 0, "meta_removed": 0, "dropped": 0}
        if self.root.is_dir():
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in sorted(filenames):
                    path = Path(dirpath) / name
                    if name.startswith(".tmp-"):
                        try:
                            path.unlink()
                            counts["tmp_removed"] += 1
                        except OSError:
                            pass
                    elif name.endswith(".meta.json"):
                        key = name[: -len(".meta.json")]
                        if not (
                            self._payload_path(key).is_file()
                            or any(p.is_file() for p, _m in self._legacy_paths(key))
                        ):
                            try:
                                path.unlink()
                                counts["meta_removed"] += 1
                            except OSError:
                                pass
                    elif name.endswith(".json"):
                        key = name[: -len(".json")]
                        canonical = self._payload_path(key)
                        if path != canonical:
                            canonical.parent.mkdir(parents=True, exist_ok=True)
                            try:
                                os.replace(path, canonical)
                                counts["migrated"] += 1
                            except OSError:
                                continue
                            meta = path.with_name(f"{key}.meta.json")
                            if meta.is_file():
                                try:
                                    os.replace(meta, self._meta_path(key))
                                except OSError:
                                    pass
                        if key not in self._index:
                            try:
                                stat = canonical.stat()
                            except OSError:
                                continue
                            self._apply_op(
                                {
                                    "op": "add",
                                    "key": key,
                                    "bytes": stat.st_size,
                                    "mtime": stat.st_mtime,
                                }
                            )
                            counts["adopted"] += 1
        for key in [k for k in self._index if not self._payload_path(k).is_file()]:
            self._apply_op({"op": "del", "key": key})
            counts["dropped"] += 1
        self.compact()
        return counts

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "stores": self.stores,
            "entries": len(self),
            "bytes": self.total_bytes,
        }

    # -- metrics ------------------------------------------------------------

    def publish_metrics(self, registry: Optional["MetricsRegistry"] = None) -> "MetricsRegistry":
        """Surface the counters as ``cache.*`` gauges on ``registry``.

        Defaults to (and lazily creates) the cache's own registry, so a
        :class:`~repro.runner.monitor.SweepMonitor` — or any exporter —
        can fold cache behaviour into the fleet snapshot.
        """
        if registry is None:
            if self._registry is None:
                from repro.obs.metrics import MetricsRegistry

                self._registry = MetricsRegistry()
            registry = self._registry
        for name, value, help_text in (
            ("cache.hits", self.hits, "cache lookups that found a valid entry"),
            ("cache.misses", self.misses, "cache lookups that found nothing usable"),
            ("cache.corrupt", self.corrupt, "entries rejected as unparseable and evicted"),
            ("cache.evictions", self.evictions, "entries removed (budget, corruption, manual)"),
            ("cache.stores", self.stores, "entries written"),
            ("cache.entries", len(self), "live entries in the manifest index"),
            ("cache.bytes", self.total_bytes, "payload bytes tracked by the index"),
        ):
            registry.gauge(name, help=help_text).set(float(value))
        return registry
