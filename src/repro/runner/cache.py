"""Content-addressed on-disk cache of serialised run results.

Layout under the cache root::

    <root>/<key[:2]>/<key>.json        # RunResult.to_json(), byte-exact
    <root>/<key[:2]>/<key>.meta.json   # provenance: run id, worker, wall time

The payload file holds exactly the bytes ``RunResult.to_json()``
produced, so a cache hit reproduces the serialised result *bit for
bit* — the determinism contract extends through the cache.  Writes go
through a temp file + ``os.replace`` so a crashed run never leaves a
torn entry, and concurrent writers of the same key are idempotent.

Keys come from :func:`repro.runner.cells.cache_key` and already include
the code fingerprint; a stale entry from an older tree simply never
gets looked up again.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.runner.cells import Cell, cache_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.stats import RunResult

__all__ = ["ResultCache"]


class ResultCache:
    """Filesystem-backed map from cell key to serialised RunResult."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- key plumbing -------------------------------------------------------

    def key_for(self, cell: Cell) -> Optional[str]:
        """The cell's content-addressed key (None: uncacheable factory)."""
        return cache_key(cell)

    def _payload_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _meta_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.meta.json"

    # -- read/write ---------------------------------------------------------

    def load(self, key: str) -> Optional[str]:
        """The stored RunResult JSON, or None on a miss (counts stats)."""
        try:
            text = self._payload_path(key).read_text()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return text

    def load_result(self, key: str) -> Optional[Tuple[str, "RunResult"]]:
        """Load and *validate* an entry: ``(payload_text, RunResult)``.

        A payload that exists but does not parse back into a
        :class:`~repro.sim.stats.RunResult` (torn write from a crashed
        run, disk corruption, truncation) is treated as a miss: the
        entry is evicted so the slot gets rewritten, and ``None`` is
        returned instead of letting ``RunResult.from_json`` explode in
        the caller.
        """
        from repro.sim.stats import RunResult

        text = self.load(key)
        if text is None:
            return None
        try:
            return text, RunResult.from_json(text)
        except Exception:
            # The hit was illusory: re-book it as a miss and drop the entry.
            self.hits -= 1
            self.misses += 1
            self.corrupt += 1
            self.evict(key)
            return None

    def evict(self, key: str) -> None:
        """Remove one entry (payload + meta sidecar), ignoring races."""
        for path in (self._payload_path(key), self._meta_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def load_meta(self, key: str) -> Dict[str, object]:
        try:
            return json.loads(self._meta_path(key).read_text())
        except (OSError, ValueError):
            return {}

    def store(self, key: str, result_json: str, meta: Optional[Dict[str, object]] = None) -> None:
        """Atomically persist a result (and its provenance sidecar)."""
        payload = self._payload_path(key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(payload, result_json)
        if meta is not None:
            self._atomic_write(self._meta_path(key), json.dumps(meta, indent=2))

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                # Reach the medium before the rename publishes the entry:
                # os.replace is only atomic for data already durable, and
                # this cache's whole point is surviving crashed runs.
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for p in self.root.glob("*/*.json") if not p.name.endswith(".meta.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many payloads were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*.json"):
            if not path.name.endswith(".meta.json"):
                removed += 1
            path.unlink()
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
        }
