"""Process-pool execution of cells, with caching and progress fan-in.

:func:`execute_cells` is the one entry point: it resolves each cell
against the :class:`~repro.runner.cache.ResultCache` (when one is
configured), runs the misses — in a ``ProcessPoolExecutor`` when
``workers > 1`` and the cell pickles, inline otherwise — and returns
outcomes in cell order.  Because every cell constructs its workload
and machine fresh inside :func:`~repro.runner.cells.run_cell`, the
serialised results are bit-identical however the cells were scheduled.

:func:`runner_session` sets ambient worker-count/cache defaults so
callers several layers up (the experiment CLI) can parallelise every
``run_variants`` underneath without threading arguments through each
experiment's ``run`` method.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Union

from repro.obs.log import get_logger
from repro.runner.cache import ResultCache
from repro.runner.cells import Cell, CellRun, cell_run_id, run_cell
from repro.sim.stats import RunResult

__all__ = ["CellOutcome", "execute_cells", "runner_session", "active_session", "RunnerSession"]

_log = get_logger("runner")

Progress = Optional[Callable[[str], None]]


@dataclass
class CellOutcome:
    """One cell's result plus how it was obtained."""

    cell: Cell
    result: RunResult
    #: The canonical serialised form (what the cache stores and what
    #: determinism tests compare).
    result_json: str
    run_id: str
    #: ``pid<N>`` of the process that simulated, or ``"cache"``.
    worker: str
    cached: bool
    wall_s: float


@dataclass
class RunnerSession:
    """Ambient execution defaults installed by :func:`runner_session`."""

    workers: int = 1
    cache: Optional[ResultCache] = None
    _executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> Optional[ProcessPoolExecutor]:
        """A pool shared across the session's execute_cells calls."""
        if self.workers > 1 and self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


_session: Optional[RunnerSession] = None


def active_session() -> Optional[RunnerSession]:
    return _session


@contextmanager
def runner_session(
    workers: int = 1, cache_dir: Optional[Union[str, Path]] = None
) -> Iterator[RunnerSession]:
    """Install ambient runner defaults (and one shared process pool).

    Every :func:`execute_cells` call inside the block — including the
    ones ``run_variants`` makes on behalf of registered experiments —
    inherits ``workers`` and the cache unless explicitly overridden.
    """
    global _session
    previous = _session
    session = RunnerSession(
        workers=max(1, int(workers)),
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
    )
    _session = session
    try:
        yield session
    finally:
        _session = previous
        session.close()


def _coerce_cache(cache: Union[ResultCache, str, Path, None]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _picklable(cell: Cell) -> bool:
    try:
        pickle.dumps(cell)
        return True
    except Exception:
        return False


def execute_cells(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None] = None,
    progress: Progress = None,
) -> List[CellOutcome]:
    """Run every cell; results come back in cell order.

    ``workers``/``cache`` default to the ambient :func:`runner_session`
    (serial, uncached when none is active).  Cache hits skip simulation
    entirely — the workload factory is never called.  Cells whose
    factory cannot pickle (lambdas, closures) fall back to inline
    execution instead of failing; they produce identical results, just
    without the parallelism.
    """
    session = _session
    if workers is None:
        workers = session.workers if session is not None else 1
    workers = max(1, int(workers))
    resolved_cache = _coerce_cache(cache)
    if resolved_cache is None and session is not None:
        resolved_cache = session.cache

    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    pending: List[tuple] = []  # (index, cell, key)

    for i, cell in enumerate(cells):
        key = resolved_cache.key_for(cell) if resolved_cache is not None else None
        if key is not None:
            text = resolved_cache.load(key)
            if text is not None:
                meta = resolved_cache.load_meta(key)
                run_id = str(meta.get("run_id", key[:12]))
                outcomes[i] = CellOutcome(
                    cell=cell,
                    result=RunResult.from_json(text),
                    result_json=text,
                    run_id=run_id,
                    worker="cache",
                    cached=True,
                    wall_s=0.0,
                )
                _emit(progress, f"[{i + 1}/{total}] {run_id}: cache hit")
                continue
        pending.append((i, cell, key))

    def finish(index: int, cell: Cell, key: Optional[str], run: CellRun) -> None:
        if key is not None and resolved_cache is not None:
            resolved_cache.store(
                key,
                run.result_json,
                meta={
                    "run_id": run.run_id,
                    "workload": run.workload,
                    "machine": cell.spec.name,
                    "seed": cell.seed,
                    "worker": run.worker,
                    "wall_s": run.wall_s,
                },
            )
        result = RunResult.from_json(run.result_json)
        outcomes[index] = CellOutcome(
            cell=cell,
            result=result,
            result_json=run.result_json,
            run_id=run.run_id,
            worker=run.worker,
            cached=False,
            wall_s=run.wall_s,
        )
        _emit(
            progress,
            f"[{index + 1}/{total}] {run.run_id}: {result.cycles:,.0f} cycles, "
            f"WA={result.write_amplification:.2f}x ({run.wall_s:.2f}s wall, {run.worker})",
        )

    inline: List[tuple] = []
    if workers > 1 and pending:
        executor: Optional[ProcessPoolExecutor] = None
        own_executor = False
        if session is not None and session.workers == workers:
            executor = session.executor()
        if executor is None:
            executor = ProcessPoolExecutor(max_workers=workers)
            own_executor = True
        try:
            futures = {}
            for i, cell, key in pending:
                if _picklable(cell):
                    futures[executor.submit(run_cell, cell)] = (i, cell, key)
                else:
                    _log.info(
                        "%s", f"cell {cell_run_id(cell, '?')}: factory not picklable, running inline"
                    )
                    inline.append((i, cell, key))
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    i, cell, key = futures[future]
                    finish(i, cell, key, future.result())
        finally:
            if own_executor:
                executor.shutdown()
    else:
        inline = pending

    for i, cell, key in inline:
        finish(i, cell, key, run_cell(cell))

    return [o for o in outcomes if o is not None]


def _emit(progress: Progress, message: str) -> None:
    _log.info("%s", message)
    if progress is not None:
        progress(message)
