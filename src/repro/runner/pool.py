"""Process-pool execution of cells, with caching, retries, and fault tolerance.

:func:`execute_cells` is the one entry point: it resolves each cell
against the :class:`~repro.runner.cache.ResultCache` (when one is
configured), runs the misses — in a ``ProcessPoolExecutor`` when
``workers > 1`` and the cell pickles, inline otherwise — and returns
outcomes in cell order.  Because every cell constructs its workload
and machine fresh inside :func:`~repro.runner.cells.run_cell`, the
serialised results are bit-identical however the cells were scheduled.

Throughput comes from two mechanisms (DESIGN.md §16):

* **persistent warm workers** — pools start with
  :func:`_pool_initializer`, which pre-imports the simulator stack and
  primes per-preset construction caches (PLRU LUTs, module imports), and
  a :func:`runner_session` keeps one pool alive across every
  ``execute_cells`` call in the block, so spawn + import cost is paid
  once per session, not once per sweep;
* **chunked dispatch** — cells are submitted in size-adaptive chunks
  (:func:`_auto_chunk_size`), amortising pickle/future/IPC overhead;
  the worker runs each cell of a chunk independently and reports
  per-cell results, so one failing cell never takes its chunk-mates'
  results down — it is isolated and re-run solo through the normal
  retry path, and per-cell SweepEvents are unchanged.

A sweep is never lost to one bad cell.  Every cell produces a
:class:`CellOutcome` whose ``status`` says how it ended:

``"ok"`` / ``"cached"``
    A result, freshly simulated or bit-identical from the cache.
``"failed"``
    The cell raised (after ``retries`` bounded-backoff re-attempts) or
    repeatedly took the worker process down with it.
``"timeout"``
    The cell exceeded ``timeout_s``; its worker is abandoned, the rest
    of the sweep continues.  Timeouts are not retried.  (A timeout
    budget forces chunks of one cell, so the deadline stays per-cell.)

A worker process dying (``BrokenProcessPool``) kills every in-flight
future, so the driver rebuilds the pool — up to :data:`MAX_POOL_RESTARTS`
times — and requeues the unfinished cells; a cell that brings the pool
down :data:`MAX_CELL_BREAKS` times is marked failed instead of requeued,
and once restarts are exhausted whatever remains runs inline.  With
``on_error="raise"`` (what :func:`~repro.experiments.common.run_variants`
and the AutoTuner use) any non-ok outcome raises
:class:`~repro.errors.CellExecutionError` carrying the full outcome list.

Retry backoff is exponential with **deterministic jitter** seeded from
the cell's run id (:func:`retry_delay`), so retry timing — and the
SweepEvent order within one cell — is reproducible run to run.

:func:`runner_session` sets ambient worker-count/cache/retry/chunking
defaults so callers several layers up (the experiment CLI) can
parallelise every ``run_variants`` underneath without threading
arguments through each experiment's ``run`` method.
"""

from __future__ import annotations

import math
import pickle
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import CellExecutionError, RunnerError
from repro.obs.log import get_logger
from repro.runner.cache import ResultCache
from repro.runner.cells import Cell, CellRun, cell_run_id, run_cell
from repro.runner.monitor import SweepEvent
from repro.sim.stats import RunResult

__all__ = [
    "CellOutcome",
    "execute_cells",
    "runner_session",
    "active_session",
    "retry_delay",
    "RunnerSession",
    "MAX_POOL_RESTARTS",
    "MAX_CELL_BREAKS",
    "MAX_CHUNK_CELLS",
]

_log = get_logger("runner")

Progress = Optional[Callable[[str], None]]
#: The event-bus seam: anything callable that accepts a SweepEvent
#: (e.g. :class:`repro.runner.monitor.SweepMonitor`).
EventBus = Optional[Callable[[SweepEvent], None]]

#: How many times one ``execute_cells`` call rebuilds a broken process
#: pool before running whatever is left inline.
MAX_POOL_RESTARTS = 2
#: A cell whose worker dies with the pool this many times is marked
#: failed rather than requeued — it is almost certainly the killer.
MAX_CELL_BREAKS = 2
#: Upper bound on cells per dispatch chunk: big enough to amortise IPC,
#: small enough that a late straggler chunk cannot starve the pool.
MAX_CHUNK_CELLS = 32
#: Adaptive chunking targets this many chunks per worker, so the tail
#: of a sweep still load-balances across the pool.
_CHUNKS_PER_WORKER = 4


@dataclass
class CellOutcome:
    """One cell's result plus how it was obtained (or why it wasn't)."""

    cell: Cell
    #: None when :attr:`status` is ``"failed"`` or ``"timeout"``.
    result: Optional[RunResult]
    #: The canonical serialised form (what the cache stores and what
    #: determinism tests compare); None when there is no result.
    result_json: Optional[str]
    run_id: str
    #: ``pid<N>`` of the process that simulated, ``"cache"``, or
    #: ``"journal"`` for outcomes resumed from a sweep journal.
    worker: str
    cached: bool
    wall_s: float
    #: ``"ok"`` | ``"cached"`` | ``"failed"`` | ``"timeout"``.
    status: str = "ok"
    #: Human-readable failure description (non-ok outcomes only).
    error: Optional[str] = None
    #: Execution attempts consumed (0 for cache hits).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class _Job:
    """One pending cell: scheduling state the driver threads through."""

    index: int
    cell: Cell
    key: Optional[str]
    #: The cell pickled exactly once in the parent (None: unpicklable).
    payload: Optional[bytes] = None
    #: Execution attempts consumed so far.
    attempts: int = 0
    #: Times this job's future died with the pool (BrokenProcessPool).
    breaks: int = 0


def retry_delay(run_id: str, attempt: int, backoff_s: float) -> float:
    """Exponential backoff with jitter seeded from the cell's run id.

    The jitter factor is drawn from ``Random(f"{run_id}#{attempt}")``,
    uniform in ``[0.5, 1.5)`` — decorrelated across cells (so a burst of
    failures does not retry in lockstep) yet bit-reproducible for a
    given cell and attempt, which keeps retry timing and per-cell
    SweepEvent ordering deterministic in tests.
    """
    base = backoff_s * (2 ** (max(1, attempt) - 1))
    jitter = random.Random(f"{run_id}#{attempt}").random()
    return base * (0.5 + jitter)


def _auto_chunk_size(n_jobs: int, workers: int) -> int:
    """Cells per chunk: ~4 chunks per worker, capped, never below 1."""
    return max(1, min(MAX_CHUNK_CELLS, math.ceil(n_jobs / (workers * _CHUNKS_PER_WORKER))))


def _pool_initializer() -> None:
    """Warm a fresh worker before it takes cells (best-effort).

    Pre-imports the simulator/workload/experiment stack and constructs
    one throwaway :class:`~repro.sim.machine.Machine` per common preset,
    priming process-wide caches (tree-PLRU victim LUTs, module import
    machinery) so the first real cell pays simulation cost only.  Any
    failure here is swallowed: warming is an optimisation, never a
    correctness dependency.
    """
    try:  # pragma: no cover - exercised inside pool workers
        import repro.experiments.common  # noqa: F401
        import repro.workloads.microbench  # noqa: F401
        import repro.workloads.nas  # noqa: F401
        from repro.sim.machine import Machine, machine_a, machine_b_fast

        for preset in (machine_a, machine_b_fast):
            Machine(preset())
    except Exception:  # pragma: no cover - warming must never break a pool
        pass


def _new_executor(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, initializer=_pool_initializer)


@dataclass
class RunnerSession:
    """Ambient execution defaults installed by :func:`runner_session`."""

    workers: int = 1
    cache: Optional[ResultCache] = None
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.5
    #: None: size-adaptive (:func:`_auto_chunk_size`); 1 disables chunking.
    chunk_size: Optional[int] = None
    _executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> Optional[ProcessPoolExecutor]:
        """A warm pool shared across the session's execute_cells calls."""
        if self.workers > 1 and self._executor is None:
            self._executor = _new_executor(self.workers)
        return self._executor

    def invalidate_executor(self) -> None:
        """Drop a broken pool so the next call builds a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


_session: Optional[RunnerSession] = None


def active_session() -> Optional[RunnerSession]:
    return _session


@contextmanager
def runner_session(
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    chunk_size: Optional[int] = None,
    cache_max_bytes: Optional[int] = None,
) -> Iterator[RunnerSession]:
    """Install ambient runner defaults (and one shared warm process pool).

    Every :func:`execute_cells` call inside the block — including the
    ones ``run_variants`` makes on behalf of registered experiments —
    inherits ``workers``, the cache, chunking, and the retry policy
    unless explicitly overridden.  The pool is created once, warmed by
    :func:`_pool_initializer`, and reused by every call in the block.
    """
    global _session
    previous = _session
    session = RunnerSession(
        workers=max(1, int(workers)),
        cache=ResultCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir is not None else None,
        timeout_s=timeout_s,
        retries=max(0, int(retries)),
        backoff_s=backoff_s,
        chunk_size=chunk_size,
    )
    _session = session
    try:
        yield session
    finally:
        _session = previous
        session.close()


def _coerce_cache(cache: Union[ResultCache, str, Path, None]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _run_pickled(payload: bytes) -> CellRun:
    """Worker entry point: the parent pickled the cell exactly once.

    Shipping the pre-pickled bytes (instead of the cell object) means
    the cell graph is serialised a single time per submission — the old
    path pickled it twice, once in a probe and again inside ``submit``.
    """
    return run_cell(pickle.loads(payload))


#: Per-cell chunk result: ``("ok", CellRun)`` or ``("error", message)``.
_ChunkItem = Tuple[str, object]


def _run_chunk(payloads: Tuple[bytes, ...]) -> List[_ChunkItem]:
    """Worker entry point for a chunk: run each cell independently.

    One submission carries many cells (amortising pickle + future + IPC
    overhead), but each cell still runs in its own fresh-workload,
    fresh-machine world, so results are byte-identical to per-cell
    dispatch.  A raising cell is reported as an ``("error", message)``
    item in its slot — its chunk-mates' results survive, and the parent
    re-runs the failure solo through the normal retry path.
    """
    items: List[_ChunkItem] = []
    for payload in payloads:
        try:
            items.append(("ok", run_cell(pickle.loads(payload))))
        except Exception as exc:
            items.append(("error", f"{type(exc).__name__}: {exc}"))
    return items


class _PoolBroke(Exception):
    """Internal: the process pool died while ``chunk`` was in flight."""

    def __init__(self, chunk: List[_Job]) -> None:
        self.chunk = chunk
        super().__init__("process pool broke")


def execute_cells(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None] = None,
    progress: Progress = None,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
    on_error: str = "return",
    events: EventBus = None,
) -> List[CellOutcome]:
    """Run every cell; outcomes come back in cell order, one per cell.

    ``workers``/``cache``/retry/chunking policy default to the ambient
    :func:`runner_session` (serial, uncached, no retries, adaptive
    chunks when none is active).  Cache hits skip simulation entirely —
    the workload factory is never called — and a stored payload that
    fails to parse is treated as a miss and evicted, not an exception.
    Cells whose factory cannot pickle (lambdas, closures) fall back to
    inline execution instead of failing; they produce identical
    results, just without the parallelism.

    ``chunk_size`` bounds how many cells ride one pool submission
    (None: adaptive via :func:`_auto_chunk_size`; results are identical
    at any value).  A ``timeout_s`` budget forces chunks of one so the
    deadline applies per cell, exactly as before.

    ``on_error="return"`` reports failures as structured outcomes
    (``status``/``error``/``attempts``); ``"raise"`` raises
    :class:`~repro.errors.CellExecutionError` after the whole sweep ran,
    with every outcome attached.

    ``events`` is the observability seam (DESIGN.md §14): every
    lifecycle edge — sweep begin/end, cache hit, submit, finish, retry,
    timeout, failure, quarantine — is delivered as a
    :class:`~repro.runner.monitor.SweepEvent` to the callable, *after*
    the outcome exists, so a subscriber can never influence results
    (attaching one changes no RunResult byte).  Chunked dispatch emits
    the same per-cell events.  A subscriber that raises is detached
    with a warning rather than failing the sweep.
    """
    if on_error not in ("return", "raise"):
        raise RunnerError(f'on_error must be "return" or "raise", got {on_error!r}')
    session = _session
    if workers is None:
        workers = session.workers if session is not None else 1
    workers = max(1, int(workers))
    if timeout_s is None and session is not None:
        timeout_s = session.timeout_s
    if retries is None:
        retries = session.retries if session is not None else 0
    retries = max(0, int(retries))
    if backoff_s is None:
        backoff_s = session.backoff_s if session is not None else 0.5
    if chunk_size is None and session is not None:
        chunk_size = session.chunk_size
    resolved_cache = _coerce_cache(cache)
    if resolved_cache is None and session is not None:
        resolved_cache = session.cache

    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    jobs: List[_Job] = []

    subscriber: List[EventBus] = [events]

    def emit_event(kind: str, **kw: object) -> None:
        """Deliver one SweepEvent; a raising subscriber is detached."""
        bus = subscriber[0]
        if bus is None:
            return
        try:
            bus(SweepEvent(kind=kind, total=total, **kw))  # type: ignore[arg-type]
        except Exception:
            subscriber[0] = None
            _log.warning("sweep event subscriber raised; detaching it", exc_info=True)

    emit_event("sweep_begin")

    for i, cell in enumerate(cells):
        key = resolved_cache.key_for(cell) if resolved_cache is not None else None
        if key is not None:
            loaded = resolved_cache.load_result(key)
            if loaded is not None:
                text, result = loaded
                meta = resolved_cache.load_meta(key)
                run_id = str(meta.get("run_id", key[:12]))
                outcomes[i] = CellOutcome(
                    cell=cell,
                    result=result,
                    result_json=text,
                    run_id=run_id,
                    worker="cache",
                    cached=True,
                    wall_s=0.0,
                    status="cached",
                    attempts=0,
                )
                _emit(progress, f"[{i + 1}/{total}] {run_id}: cache hit")
                emit_event(
                    "cache_hit",
                    index=i,
                    run_id=run_id,
                    worker="cache",
                    status="cached",
                    outcome=outcomes[i],
                )
                continue
        jobs.append(_Job(index=i, cell=cell, key=key))

    def finish(job: _Job, run: CellRun) -> None:
        if job.key is not None and resolved_cache is not None:
            resolved_cache.store(
                job.key,
                run.result_json,
                meta={
                    "run_id": run.run_id,
                    "workload": run.workload,
                    "machine": job.cell.spec.name,
                    "seed": job.cell.seed,
                    "worker": run.worker,
                    "wall_s": run.wall_s,
                },
            )
        result = RunResult.from_json(run.result_json)
        outcomes[job.index] = CellOutcome(
            cell=job.cell,
            result=result,
            result_json=run.result_json,
            run_id=run.run_id,
            worker=run.worker,
            cached=False,
            wall_s=run.wall_s,
            status="ok",
            attempts=max(1, job.attempts),
        )
        _emit(
            progress,
            f"[{job.index + 1}/{total}] {run.run_id}: {result.cycles:,.0f} cycles, "
            f"WA={result.write_amplification:.2f}x ({run.wall_s:.2f}s wall, {run.worker})",
        )
        emit_event(
            "finish",
            index=job.index,
            run_id=run.run_id,
            worker=run.worker,
            status="ok",
            wall_s=run.wall_s,
            attempts=max(1, job.attempts),
            outcome=outcomes[job.index],
        )

    def fail(job: _Job, status: str, error: str) -> None:
        run_id = cell_run_id(job.cell, "?")
        outcomes[job.index] = CellOutcome(
            cell=job.cell,
            result=None,
            result_json=None,
            run_id=run_id,
            worker="none",
            cached=False,
            wall_s=0.0,
            status=status,
            error=error,
            attempts=max(1, job.attempts),
        )
        _emit(progress, f"[{job.index + 1}/{total}] {run_id}: {status.upper()} — {error}")
        emit_event(
            status if status == "timeout" else "failed",
            index=job.index,
            run_id=run_id,
            worker="none",
            status=status,
            attempts=max(1, job.attempts),
            error=error,
            outcome=outcomes[job.index],
        )

    inline: List[_Job] = []
    pooled: List[_Job] = []
    if workers > 1 and jobs:
        for job in jobs:
            try:
                job.payload = pickle.dumps(job.cell)
            except Exception:
                _log.info(
                    "%s",
                    f"cell {cell_run_id(job.cell, '?')}: factory not picklable, running inline",
                )
                inline.append(job)
            else:
                pooled.append(job)
    else:
        inline = jobs

    if pooled:
        leftovers = _drive_pool(
            pooled,
            workers,
            session,
            timeout_s,
            retries,
            backoff_s,
            chunk_size,
            finish,
            fail,
            emit_event,
        )
        inline.extend(leftovers)

    for job in inline:
        _run_inline(job, retries, backoff_s, finish, fail, emit_event)

    missing = [i for i, o in enumerate(outcomes) if o is None]
    if missing:  # pragma: no cover - every path above fills its slot
        raise RunnerError(f"internal: cells {missing} produced no outcome")
    emit_event("sweep_end")
    complete: List[CellOutcome] = [o for o in outcomes if o is not None]
    failed = [o for o in complete if not o.ok]
    if failed and on_error == "raise":
        head = "; ".join(f"{o.run_id}: {o.error}" for o in failed[:3])
        more = "" if len(failed) <= 3 else f" (+{len(failed) - 3} more)"
        raise CellExecutionError(
            f"{len(failed)}/{total} cells failed: {head}{more}", tuple(complete)
        )
    return complete


def _drive_pool(
    pooled: Sequence[_Job],
    workers: int,
    session: Optional[RunnerSession],
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    chunk_size: Optional[int],
    finish: Callable[[_Job, CellRun], None],
    fail: Callable[[_Job, str, str], None],
    emit_event: Callable[..., None],
) -> List[_Job]:
    """Run picklable jobs through a pool; returns jobs left for inline.

    Dispatch is chunked: each submission carries ``chunk_size`` cells
    (adaptive when None; forced to 1 under a per-cell timeout budget),
    the worker reports per-cell results, and the parent unpacks them
    into individual outcomes — a failure inside a chunk costs only that
    cell, which re-enters the bounded-retry path as a solo submission.

    Survives worker death.  ``BrokenProcessPool`` fails *every* in-flight
    future at once, so the killer cannot be identified from the wreckage:
    everything that was in flight goes to quarantine, the pool is rebuilt
    (bounded by :data:`MAX_POOL_RESTARTS`), and quarantined jobs are then
    re-probed **one at a time** — a solo probe that takes the pool down is
    blamed with certainty and marked failed; a probe that completes is
    exonerated.  Quarantined jobs never fall back to inline execution (a
    genuine killer would take the parent process with it); only clean
    jobs are returned for inline when restarts are exhausted.
    """
    if timeout_s is not None:
        size = 1  # the deadline is per cell; chunks would stretch it
    elif chunk_size is not None:
        size = max(1, int(chunk_size))
    else:
        size = _auto_chunk_size(len(pooled), workers)
    queue: Deque[List[_Job]] = deque(
        [list(pooled[i : i + size]) for i in range(0, len(pooled), size)]
    )
    quarantine: Deque[_Job] = deque()
    restarts = 0
    while queue or quarantine:
        executor, own = _acquire_executor(session, workers)
        futures: Dict[Future, List[_Job]] = {}
        deadlines: Dict[Future, float] = {}
        timed_out = False
        probe: Optional[_Job] = None

        def submit(chunk: List[_Job]) -> None:
            try:
                future = executor.submit(
                    _run_chunk, tuple(job.payload for job in chunk)  # type: ignore[misc]
                )
            except BrokenProcessPool:
                raise _PoolBroke(chunk)
            futures[future] = chunk
            if timeout_s is not None:
                deadlines[future] = time.monotonic() + timeout_s
            for job in chunk:
                emit_event("submit", index=job.index, run_id=cell_run_id(job.cell, "?"))

        def refill() -> None:
            nonlocal probe
            while queue and len(futures) < workers:
                submit(queue.popleft())
            if not futures and quarantine:
                probe = quarantine.popleft()
                _log.info(
                    "%s",
                    f"cell {cell_run_id(probe.cell, '?')}: re-probing solo "
                    f"after a pool break",
                )
                submit([probe])

        try:
            refill()
            while futures:
                done, _ = wait(
                    set(futures), timeout=_poll_timeout(deadlines), return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk = futures.pop(future)
                    deadlines.pop(future, None)
                    if probe is not None and any(job is probe for job in chunk):
                        probe = None
                    try:
                        items = future.result()
                    except BrokenProcessPool:
                        raise _PoolBroke(chunk)
                    except Exception as exc:
                        # The chunk itself failed to round-trip (result
                        # unpickling, executor internals): every member
                        # gets the error and its own retry budget.
                        items = [("error", f"{type(exc).__name__}: {exc}")] * len(chunk)
                    if len(items) < len(chunk):  # pragma: no cover - defensive
                        items = list(items) + [("error", "chunk returned too few results")] * (
                            len(chunk) - len(items)
                        )
                    for job, (tag, value) in zip(chunk, items):
                        if tag == "ok":
                            job.attempts += 1
                            finish(job, value)  # type: ignore[arg-type]
                            continue
                        job.attempts += 1
                        error = str(value)
                        if job.attempts <= retries:
                            run_id = cell_run_id(job.cell, "?")
                            delay = retry_delay(run_id, job.attempts, backoff_s)
                            _log.info(
                                "%s",
                                f"cell {run_id}: attempt {job.attempts} failed "
                                f"({error}); retrying in {delay:.2f}s",
                            )
                            emit_event(
                                "retry",
                                index=job.index,
                                run_id=run_id,
                                attempts=job.attempts,
                                error=error,
                            )
                            time.sleep(delay)
                            submit([job])
                        else:
                            fail(job, "failed", error)
                now = time.monotonic()
                for future in [f for f, dl in deadlines.items() if dl <= now]:
                    chunk = futures.pop(future)
                    deadlines.pop(future)
                    if probe is not None and any(job is probe for job in chunk):
                        probe = None
                    future.cancel()  # queued: cancelled; running: abandoned
                    timed_out = True
                    for job in chunk:
                        job.attempts += 1
                        fail(job, "timeout", f"cell exceeded timeout_s={timeout_s}")
                refill()
        except _PoolBroke as broke:
            restarts += 1
            broke_ids = {id(job) for job in broke.chunk}
            in_flight = list(broke.chunk) + [
                job
                for chunk in futures.values()
                for job in chunk
                if id(job) not in broke_ids
            ]
            solo_probe_broke = len(broke.chunk) == 1 and broke.chunk[0] is probe
            futures.clear()
            deadlines.clear()
            _log.warning(
                "%s",
                f"process pool broke (restart {restarts}/{MAX_POOL_RESTARTS}); "
                f"{len(in_flight)} cells were in flight",
            )
            if own:
                executor.shutdown(wait=False, cancel_futures=True)
            elif session is not None:
                session.invalidate_executor()
            for job in sorted(in_flight, key=lambda j: j.index):
                job.breaks += 1
                if solo_probe_broke and job is probe:
                    # It was alone in the pool: certain blame.
                    fail(
                        job,
                        "failed",
                        f"worker process died while running this cell "
                        f"(solo probe, {job.breaks} pool break(s))",
                    )
                elif job.breaks >= MAX_CELL_BREAKS:
                    fail(
                        job,
                        "failed",
                        f"worker process died with this cell in flight "
                        f"{job.breaks} times",
                    )
                else:
                    quarantine.append(job)
                    emit_event(
                        "quarantine",
                        index=job.index,
                        run_id=cell_run_id(job.cell, "?"),
                        attempts=job.attempts,
                        error=f"pool break {job.breaks}",
                    )
            if restarts > MAX_POOL_RESTARTS:
                for job in sorted(quarantine, key=lambda j: j.index):
                    fail(
                        job,
                        "failed",
                        "pool restarts exhausted; cell was in flight during a "
                        "break and is not safe to run inline",
                    )
                clean = sorted((job for chunk in queue for job in chunk), key=lambda j: j.index)
                _log.warning(
                    "%s",
                    f"pool restarts exhausted; running {len(clean)} clean cells inline",
                )
                return clean
        else:
            if own:
                # A timed-out worker may still be running; don't block on it.
                executor.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return []


def _acquire_executor(
    session: Optional[RunnerSession], workers: int
) -> Tuple[ProcessPoolExecutor, bool]:
    """The session's shared warm pool when it matches, else a private one."""
    if session is not None and session.workers == workers:
        executor = session.executor()
        if executor is not None:
            return executor, False
    return _new_executor(workers), True


def _poll_timeout(deadlines: Dict[Future, float]) -> Optional[float]:
    """How long ``wait`` may block before a deadline needs checking."""
    if not deadlines:
        return None
    return max(0.0, min(deadlines.values()) - time.monotonic())


def _run_inline(
    job: _Job,
    retries: int,
    backoff_s: float,
    finish: Callable[[_Job, CellRun], None],
    fail: Callable[[_Job, str, str], None],
    emit_event: Callable[..., None],
) -> None:
    """Serial execution with the same bounded-retry policy as the pool."""
    while True:
        emit_event("submit", index=job.index, run_id=cell_run_id(job.cell, "?"))
        try:
            run = run_cell(job.cell)
        except Exception as exc:
            job.attempts += 1
            if job.attempts <= retries:
                run_id = cell_run_id(job.cell, "?")
                emit_event(
                    "retry",
                    index=job.index,
                    run_id=run_id,
                    attempts=job.attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
                time.sleep(retry_delay(run_id, job.attempts, backoff_s))
                continue
            fail(job, "failed", f"{type(exc).__name__}: {exc}")
            return
        else:
            job.attempts += 1
            finish(job, run)
            return


def _emit(progress: Progress, message: str) -> None:
    _log.info("%s", message)
    if progress is not None:
        progress(message)
