"""Process-pool execution of cells, with caching, retries, and fault tolerance.

:func:`execute_cells` is the one entry point: it resolves each cell
against the :class:`~repro.runner.cache.ResultCache` (when one is
configured), runs the misses — in a ``ProcessPoolExecutor`` when
``workers > 1`` and the cell pickles, inline otherwise — and returns
outcomes in cell order.  Because every cell constructs its workload
and machine fresh inside :func:`~repro.runner.cells.run_cell`, the
serialised results are bit-identical however the cells were scheduled.

A sweep is never lost to one bad cell.  Every cell produces a
:class:`CellOutcome` whose ``status`` says how it ended:

``"ok"`` / ``"cached"``
    A result, freshly simulated or bit-identical from the cache.
``"failed"``
    The cell raised (after ``retries`` bounded-backoff re-attempts) or
    repeatedly took the worker process down with it.
``"timeout"``
    The cell exceeded ``timeout_s``; its worker is abandoned, the rest
    of the sweep continues.  Timeouts are not retried.

A worker process dying (``BrokenProcessPool``) kills every in-flight
future, so the driver rebuilds the pool — up to :data:`MAX_POOL_RESTARTS`
times — and requeues the unfinished cells; a cell that brings the pool
down :data:`MAX_CELL_BREAKS` times is marked failed instead of requeued,
and once restarts are exhausted whatever remains runs inline.  With
``on_error="raise"`` (what :func:`~repro.experiments.common.run_variants`
and the AutoTuner use) any non-ok outcome raises
:class:`~repro.errors.CellExecutionError` carrying the full outcome list.

:func:`runner_session` sets ambient worker-count/cache/retry defaults so
callers several layers up (the experiment CLI) can parallelise every
``run_variants`` underneath without threading arguments through each
experiment's ``run`` method.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import CellExecutionError, RunnerError
from repro.obs.log import get_logger
from repro.runner.cache import ResultCache
from repro.runner.cells import Cell, CellRun, cell_run_id, run_cell
from repro.runner.monitor import SweepEvent
from repro.sim.stats import RunResult

__all__ = [
    "CellOutcome",
    "execute_cells",
    "runner_session",
    "active_session",
    "RunnerSession",
    "MAX_POOL_RESTARTS",
    "MAX_CELL_BREAKS",
]

_log = get_logger("runner")

Progress = Optional[Callable[[str], None]]
#: The event-bus seam: anything callable that accepts a SweepEvent
#: (e.g. :class:`repro.runner.monitor.SweepMonitor`).
EventBus = Optional[Callable[[SweepEvent], None]]

#: How many times one ``execute_cells`` call rebuilds a broken process
#: pool before running whatever is left inline.
MAX_POOL_RESTARTS = 2
#: A cell whose worker dies with the pool this many times is marked
#: failed rather than requeued — it is almost certainly the killer.
MAX_CELL_BREAKS = 2


@dataclass
class CellOutcome:
    """One cell's result plus how it was obtained (or why it wasn't)."""

    cell: Cell
    #: None when :attr:`status` is ``"failed"`` or ``"timeout"``.
    result: Optional[RunResult]
    #: The canonical serialised form (what the cache stores and what
    #: determinism tests compare); None when there is no result.
    result_json: Optional[str]
    run_id: str
    #: ``pid<N>`` of the process that simulated, or ``"cache"``.
    worker: str
    cached: bool
    wall_s: float
    #: ``"ok"`` | ``"cached"`` | ``"failed"`` | ``"timeout"``.
    status: str = "ok"
    #: Human-readable failure description (non-ok outcomes only).
    error: Optional[str] = None
    #: Execution attempts consumed (0 for cache hits).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class _Job:
    """One pending cell: scheduling state the driver threads through."""

    index: int
    cell: Cell
    key: Optional[str]
    #: The cell pickled exactly once in the parent (None: unpicklable).
    payload: Optional[bytes] = None
    #: Execution attempts consumed so far.
    attempts: int = 0
    #: Times this job's future died with the pool (BrokenProcessPool).
    breaks: int = 0


@dataclass
class RunnerSession:
    """Ambient execution defaults installed by :func:`runner_session`."""

    workers: int = 1
    cache: Optional[ResultCache] = None
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.5
    _executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> Optional[ProcessPoolExecutor]:
        """A pool shared across the session's execute_cells calls."""
        if self.workers > 1 and self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def invalidate_executor(self) -> None:
        """Drop a broken pool so the next call builds a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


_session: Optional[RunnerSession] = None


def active_session() -> Optional[RunnerSession]:
    return _session


@contextmanager
def runner_session(
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
) -> Iterator[RunnerSession]:
    """Install ambient runner defaults (and one shared process pool).

    Every :func:`execute_cells` call inside the block — including the
    ones ``run_variants`` makes on behalf of registered experiments —
    inherits ``workers``, the cache, and the retry policy unless
    explicitly overridden.
    """
    global _session
    previous = _session
    session = RunnerSession(
        workers=max(1, int(workers)),
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        timeout_s=timeout_s,
        retries=max(0, int(retries)),
        backoff_s=backoff_s,
    )
    _session = session
    try:
        yield session
    finally:
        _session = previous
        session.close()


def _coerce_cache(cache: Union[ResultCache, str, Path, None]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _run_pickled(payload: bytes) -> CellRun:
    """Worker entry point: the parent pickled the cell exactly once.

    Shipping the pre-pickled bytes (instead of the cell object) means
    the cell graph is serialised a single time per submission — the old
    path pickled it twice, once in a probe and again inside ``submit``.
    """
    return run_cell(pickle.loads(payload))


class _PoolBroke(Exception):
    """Internal: the process pool died while ``job`` was in flight."""

    def __init__(self, job: _Job) -> None:
        self.job = job
        super().__init__("process pool broke")


def execute_cells(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None] = None,
    progress: Progress = None,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    on_error: str = "return",
    events: EventBus = None,
) -> List[CellOutcome]:
    """Run every cell; outcomes come back in cell order, one per cell.

    ``workers``/``cache``/retry policy default to the ambient
    :func:`runner_session` (serial, uncached, no retries when none is
    active).  Cache hits skip simulation entirely — the workload factory
    is never called — and a stored payload that fails to parse is
    treated as a miss and evicted, not an exception.  Cells whose
    factory cannot pickle (lambdas, closures) fall back to inline
    execution instead of failing; they produce identical results, just
    without the parallelism.

    ``on_error="return"`` reports failures as structured outcomes
    (``status``/``error``/``attempts``); ``"raise"`` raises
    :class:`~repro.errors.CellExecutionError` after the whole sweep ran,
    with every outcome attached.

    ``events`` is the observability seam (DESIGN.md §14): every
    lifecycle edge — sweep begin/end, cache hit, submit, finish, retry,
    timeout, failure, quarantine — is delivered as a
    :class:`~repro.runner.monitor.SweepEvent` to the callable, *after*
    the outcome exists, so a subscriber can never influence results
    (attaching one changes no RunResult byte).  A subscriber that
    raises is detached with a warning rather than failing the sweep.
    """
    if on_error not in ("return", "raise"):
        raise RunnerError(f'on_error must be "return" or "raise", got {on_error!r}')
    session = _session
    if workers is None:
        workers = session.workers if session is not None else 1
    workers = max(1, int(workers))
    if timeout_s is None and session is not None:
        timeout_s = session.timeout_s
    if retries is None:
        retries = session.retries if session is not None else 0
    retries = max(0, int(retries))
    if backoff_s is None:
        backoff_s = session.backoff_s if session is not None else 0.5
    resolved_cache = _coerce_cache(cache)
    if resolved_cache is None and session is not None:
        resolved_cache = session.cache

    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    jobs: List[_Job] = []

    subscriber: List[EventBus] = [events]

    def emit_event(kind: str, **kw: object) -> None:
        """Deliver one SweepEvent; a raising subscriber is detached."""
        bus = subscriber[0]
        if bus is None:
            return
        try:
            bus(SweepEvent(kind=kind, total=total, **kw))  # type: ignore[arg-type]
        except Exception:
            subscriber[0] = None
            _log.warning("sweep event subscriber raised; detaching it", exc_info=True)

    emit_event("sweep_begin")

    for i, cell in enumerate(cells):
        key = resolved_cache.key_for(cell) if resolved_cache is not None else None
        if key is not None:
            loaded = resolved_cache.load_result(key)
            if loaded is not None:
                text, result = loaded
                meta = resolved_cache.load_meta(key)
                run_id = str(meta.get("run_id", key[:12]))
                outcomes[i] = CellOutcome(
                    cell=cell,
                    result=result,
                    result_json=text,
                    run_id=run_id,
                    worker="cache",
                    cached=True,
                    wall_s=0.0,
                    status="cached",
                    attempts=0,
                )
                _emit(progress, f"[{i + 1}/{total}] {run_id}: cache hit")
                emit_event(
                    "cache_hit",
                    index=i,
                    run_id=run_id,
                    worker="cache",
                    status="cached",
                    outcome=outcomes[i],
                )
                continue
        jobs.append(_Job(index=i, cell=cell, key=key))

    def finish(job: _Job, run: CellRun) -> None:
        if job.key is not None and resolved_cache is not None:
            resolved_cache.store(
                job.key,
                run.result_json,
                meta={
                    "run_id": run.run_id,
                    "workload": run.workload,
                    "machine": job.cell.spec.name,
                    "seed": job.cell.seed,
                    "worker": run.worker,
                    "wall_s": run.wall_s,
                },
            )
        result = RunResult.from_json(run.result_json)
        outcomes[job.index] = CellOutcome(
            cell=job.cell,
            result=result,
            result_json=run.result_json,
            run_id=run.run_id,
            worker=run.worker,
            cached=False,
            wall_s=run.wall_s,
            status="ok",
            attempts=max(1, job.attempts),
        )
        _emit(
            progress,
            f"[{job.index + 1}/{total}] {run.run_id}: {result.cycles:,.0f} cycles, "
            f"WA={result.write_amplification:.2f}x ({run.wall_s:.2f}s wall, {run.worker})",
        )
        emit_event(
            "finish",
            index=job.index,
            run_id=run.run_id,
            worker=run.worker,
            status="ok",
            wall_s=run.wall_s,
            attempts=max(1, job.attempts),
            outcome=outcomes[job.index],
        )

    def fail(job: _Job, status: str, error: str) -> None:
        run_id = cell_run_id(job.cell, "?")
        outcomes[job.index] = CellOutcome(
            cell=job.cell,
            result=None,
            result_json=None,
            run_id=run_id,
            worker="none",
            cached=False,
            wall_s=0.0,
            status=status,
            error=error,
            attempts=max(1, job.attempts),
        )
        _emit(progress, f"[{job.index + 1}/{total}] {run_id}: {status.upper()} — {error}")
        emit_event(
            status if status == "timeout" else "failed",
            index=job.index,
            run_id=run_id,
            worker="none",
            status=status,
            attempts=max(1, job.attempts),
            error=error,
            outcome=outcomes[job.index],
        )

    inline: List[_Job] = []
    pooled: List[_Job] = []
    if workers > 1 and jobs:
        for job in jobs:
            try:
                job.payload = pickle.dumps(job.cell)
            except Exception:
                _log.info(
                    "%s",
                    f"cell {cell_run_id(job.cell, '?')}: factory not picklable, running inline",
                )
                inline.append(job)
            else:
                pooled.append(job)
    else:
        inline = jobs

    if pooled:
        leftovers = _drive_pool(
            pooled, workers, session, timeout_s, retries, backoff_s, finish, fail, emit_event
        )
        inline.extend(leftovers)

    for job in inline:
        _run_inline(job, retries, backoff_s, finish, fail, emit_event)

    missing = [i for i, o in enumerate(outcomes) if o is None]
    if missing:  # pragma: no cover - every path above fills its slot
        raise RunnerError(f"internal: cells {missing} produced no outcome")
    emit_event("sweep_end")
    complete: List[CellOutcome] = [o for o in outcomes if o is not None]
    failed = [o for o in complete if not o.ok]
    if failed and on_error == "raise":
        head = "; ".join(f"{o.run_id}: {o.error}" for o in failed[:3])
        more = "" if len(failed) <= 3 else f" (+{len(failed) - 3} more)"
        raise CellExecutionError(
            f"{len(failed)}/{total} cells failed: {head}{more}", tuple(complete)
        )
    return complete


def _drive_pool(
    pooled: Sequence[_Job],
    workers: int,
    session: Optional[RunnerSession],
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    finish: Callable[[_Job, CellRun], None],
    fail: Callable[[_Job, str, str], None],
    emit_event: Callable[..., None],
) -> List[_Job]:
    """Run picklable jobs through a pool; returns jobs left for inline.

    Survives worker death.  ``BrokenProcessPool`` fails *every* in-flight
    future at once, so the killer cannot be identified from the wreckage:
    everything that was in flight goes to quarantine, the pool is rebuilt
    (bounded by :data:`MAX_POOL_RESTARTS`), and quarantined jobs are then
    re-probed **one at a time** — a solo probe that takes the pool down is
    blamed with certainty and marked failed; a probe that completes is
    exonerated.  Quarantined jobs never fall back to inline execution (a
    genuine killer would take the parent process with it); only clean
    jobs are returned for inline when restarts are exhausted.
    """
    queue: Deque[_Job] = deque(pooled)
    quarantine: Deque[_Job] = deque()
    restarts = 0
    while queue or quarantine:
        executor, own = _acquire_executor(session, workers)
        futures: Dict[Future, _Job] = {}
        deadlines: Dict[Future, float] = {}
        timed_out = False
        probe: Optional[_Job] = None

        def submit(job: _Job) -> None:
            try:
                future = executor.submit(_run_pickled, job.payload)
            except BrokenProcessPool:
                raise _PoolBroke(job)
            futures[future] = job
            if timeout_s is not None:
                deadlines[future] = time.monotonic() + timeout_s
            emit_event("submit", index=job.index, run_id=cell_run_id(job.cell, "?"))

        def refill() -> None:
            nonlocal probe
            while queue and len(futures) < workers:
                submit(queue.popleft())
            if not futures and quarantine:
                probe = quarantine.popleft()
                _log.info(
                    "%s",
                    f"cell {cell_run_id(probe.cell, '?')}: re-probing solo "
                    f"after a pool break",
                )
                submit(probe)

        try:
            refill()
            while futures:
                done, _ = wait(
                    set(futures), timeout=_poll_timeout(deadlines), return_when=FIRST_COMPLETED
                )
                for future in done:
                    job = futures.pop(future)
                    deadlines.pop(future, None)
                    if job is probe:
                        probe = None
                    try:
                        run = future.result()
                    except BrokenProcessPool:
                        raise _PoolBroke(job)
                    except Exception as exc:
                        job.attempts += 1
                        if job.attempts <= retries:
                            delay = backoff_s * (2 ** (job.attempts - 1))
                            _log.info(
                                "%s",
                                f"cell {cell_run_id(job.cell, '?')}: attempt "
                                f"{job.attempts} failed ({exc!r}); retrying in {delay:.2f}s",
                            )
                            emit_event(
                                "retry",
                                index=job.index,
                                run_id=cell_run_id(job.cell, "?"),
                                attempts=job.attempts,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            time.sleep(delay)
                            submit(job)
                        else:
                            fail(job, "failed", f"{type(exc).__name__}: {exc}")
                    else:
                        job.attempts += 1
                        finish(job, run)
                now = time.monotonic()
                for future in [f for f, dl in deadlines.items() if dl <= now]:
                    job = futures.pop(future)
                    deadlines.pop(future)
                    if job is probe:
                        probe = None
                    future.cancel()  # queued: cancelled; running: abandoned
                    timed_out = True
                    job.attempts += 1
                    fail(job, "timeout", f"cell exceeded timeout_s={timeout_s}")
                refill()
        except _PoolBroke as broke:
            restarts += 1
            in_flight = [broke.job] + [j for j in futures.values() if j is not broke.job]
            futures.clear()
            deadlines.clear()
            _log.warning(
                "%s",
                f"process pool broke (restart {restarts}/{MAX_POOL_RESTARTS}); "
                f"{len(in_flight)} cells were in flight",
            )
            if own:
                executor.shutdown(wait=False, cancel_futures=True)
            elif session is not None:
                session.invalidate_executor()
            for job in sorted(in_flight, key=lambda j: j.index):
                job.breaks += 1
                if job is broke.job and probe is broke.job:
                    # It was alone in the pool: certain blame.
                    fail(
                        job,
                        "failed",
                        f"worker process died while running this cell "
                        f"(solo probe, {job.breaks} pool break(s))",
                    )
                elif job.breaks >= MAX_CELL_BREAKS:
                    fail(
                        job,
                        "failed",
                        f"worker process died with this cell in flight "
                        f"{job.breaks} times",
                    )
                else:
                    quarantine.append(job)
                    emit_event(
                        "quarantine",
                        index=job.index,
                        run_id=cell_run_id(job.cell, "?"),
                        attempts=job.attempts,
                        error=f"pool break {job.breaks}",
                    )
            if restarts > MAX_POOL_RESTARTS:
                for job in sorted(quarantine, key=lambda j: j.index):
                    fail(
                        job,
                        "failed",
                        "pool restarts exhausted; cell was in flight during a "
                        "break and is not safe to run inline",
                    )
                _log.warning(
                    "%s",
                    f"pool restarts exhausted; running {len(queue)} clean cells inline",
                )
                return sorted(queue, key=lambda j: j.index)
        else:
            if own:
                # A timed-out worker may still be running; don't block on it.
                executor.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return []


def _acquire_executor(
    session: Optional[RunnerSession], workers: int
) -> Tuple[ProcessPoolExecutor, bool]:
    """The session's shared pool when it matches, else a private one."""
    if session is not None and session.workers == workers:
        executor = session.executor()
        if executor is not None:
            return executor, False
    return ProcessPoolExecutor(max_workers=workers), True


def _poll_timeout(deadlines: Dict[Future, float]) -> Optional[float]:
    """How long ``wait`` may block before a deadline needs checking."""
    if not deadlines:
        return None
    return max(0.0, min(deadlines.values()) - time.monotonic())


def _run_inline(
    job: _Job,
    retries: int,
    backoff_s: float,
    finish: Callable[[_Job, CellRun], None],
    fail: Callable[[_Job, str, str], None],
    emit_event: Callable[..., None],
) -> None:
    """Serial execution with the same bounded-retry policy as the pool."""
    while True:
        emit_event("submit", index=job.index, run_id=cell_run_id(job.cell, "?"))
        try:
            run = run_cell(job.cell)
        except Exception as exc:
            job.attempts += 1
            if job.attempts <= retries:
                emit_event(
                    "retry",
                    index=job.index,
                    run_id=cell_run_id(job.cell, "?"),
                    attempts=job.attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
                time.sleep(backoff_s * (2 ** (job.attempts - 1)))
                continue
            fail(job, "failed", f"{type(exc).__name__}: {exc}")
            return
        else:
            job.attempts += 1
            finish(job, run)
            return


def _emit(progress: Progress, message: str) -> None:
    _log.info("%s", message)
    if progress is not None:
        progress(message)
