"""Sweep-scale observability: the runner's event bus and fleet monitor.

:func:`~repro.runner.pool.execute_cells` emits a :class:`SweepEvent` at
every lifecycle edge of every cell — sweep begin/end, cache hit, submit
(≈ start: for pooled cells the parent cannot see the worker pick the
job up, so submission is the observable start), finish, retry, timeout,
failure, and quarantine after a pool break — to whatever callable is
passed as its ``events=`` seam.  The seam is deliberately minimal (one
callable, plain-data events, emission *after* the result bytes exist)
so the future sharded sweep service (ROADMAP open item 2) can feed the
same events over a socket without touching the pool.

:class:`SweepMonitor` is the reference subscriber: it aggregates the
event stream into a fleet :class:`~repro.obs.metrics.MetricsRegistry`
(cells by status, attempts/retries, per-worker utilisation, cell-latency
histogram, cache hit-rate, throughput and ETA, per-kind simulator event
rates), renders a live TTY dashboard (``--watch`` on the runner CLI),
and can append a JSONL progress file for headless runs — one line per
event plus a final ``summary`` line holding the exported registry, so
every dashboard number is recoverable from the file afterwards.

Two hard rules keep the monitor honest:

* **Determinism** — the monitor only ever *reads* outcomes; attaching
  one changes no ``RunResult`` byte at any worker count (the acceptance
  invariant, enforced by ``tests/test_sweep_monitor.py``).
* **Isolation** — a raising subscriber must not take the sweep down;
  the pool wraps emission and logs instead of propagating.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.obs.export import export_snapshot, nullsafe_value, render_jsonl
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.cache import ResultCache
    from repro.runner.pool import CellOutcome

__all__ = ["SweepEvent", "SweepMonitor", "replay_outcomes", "EVENT_KINDS"]

_log = get_logger("monitor")

#: Every lifecycle edge the pool emits, in rough temporal order.
EVENT_KINDS = (
    "sweep_begin",
    "cache_hit",
    "submit",
    "finish",
    "retry",
    "timeout",
    "failed",
    "quarantine",
    "sweep_end",
)

#: Simulator vocabulary kinds surfaced as per-kind event rates, read off
#: the per-core counters every ``RunResult`` already carries (so the
#: monitor needs no obs collector inside the workers).
_SIM_KINDS = ("reads", "writes", "nontemporal_writes", "fences", "atomics", "prestores")

#: Cell wall-clock latency buckets (seconds).
_LATENCY_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


@dataclass(frozen=True)
class SweepEvent:
    """One lifecycle edge of one cell (or of the sweep itself)."""

    kind: str
    #: Cell position in the sweep (-1 for sweep_begin/sweep_end).
    index: int = -1
    total: int = 0
    run_id: str = ""
    worker: str = ""
    #: Outcome status for terminal cell events ("ok"/"cached"/...).
    status: str = ""
    wall_s: float = 0.0
    attempts: int = 0
    error: Optional[str] = None
    #: The full outcome, attached to terminal events only.  Carried for
    #: subscribers; never serialised into the JSONL stream wholesale.
    outcome: Optional["CellOutcome"] = field(default=None, compare=False, repr=False)


class SweepMonitor:
    """Aggregate a sweep's event stream into fleet metrics.

    Pass the instance straight as ``execute_cells(..., events=monitor)``
    — it is callable.  One monitor may observe several consecutive
    sweeps (the bench harness runs three); per-sweep state resets on
    each ``sweep_begin`` while the JSONL file keeps appending with an
    incrementing ``sweep`` sequence number.

    ``clock`` is injectable for tests (defaults to
    :func:`time.monotonic`); everything the monitor measures is *host*
    wall time — simulated time stays untouched.
    """

    def __init__(
        self,
        progress_path: Union[str, Path, None] = None,
        clock: Callable[[], float] = time.monotonic,
        cache: Optional["ResultCache"] = None,
    ) -> None:
        self.clock = clock
        self.progress_path = Path(progress_path) if progress_path is not None else None
        self._fh: Optional[IO[str]] = None
        self.sweep_seq = 0
        self.events_seen = 0
        #: Optional ResultCache whose hit/miss/evict counters are folded
        #: into every published snapshot (set by the bench/CLI harness).
        self.cache = cache
        self._reset_sweep(total=0)

    # -- per-sweep state -----------------------------------------------------

    def _reset_sweep(self, total: int) -> None:
        # A fresh registry per sweep: histograms and per-worker gauges
        # must not leak between consecutive sweeps observed by one
        # monitor (the bench harness runs three back to back).
        self.registry = MetricsRegistry()
        self.total = total
        self.started_at = self.clock()
        self.finished_at: Optional[float] = None
        self.counts: Dict[str, int] = {k: 0 for k in ("ok", "cached", "failed", "timeout")}
        self.retries = 0
        self.quarantined = 0
        self.attempts = 0
        self.inflight = 0
        #: worker tag -> [cells, busy seconds]; "cache" never appears.
        self.workers: Dict[str, List[float]] = {}
        self.sim_counts: Dict[str, int] = {k: 0 for k in _SIM_KINDS}
        self.sim_instructions = 0
        self.sim_wall_s = 0.0
        self.serving_ops = 0
        self.serving_violations = 0

    @property
    def done(self) -> int:
        return sum(self.counts.values())

    @property
    def elapsed_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.clock()
        return max(0.0, end - self.started_at)

    @property
    def cells_per_sec(self) -> float:
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 and self.done else float("nan")

    @property
    def cache_hit_rate(self) -> float:
        if self.done == 0:
            return float("nan")
        return self.counts["cached"] / self.done

    @property
    def eta_s(self) -> float:
        """Remaining wall time at the observed throughput (NaN early)."""
        remaining = self.total - self.done
        rate = self.cells_per_sec
        if remaining <= 0:
            return 0.0
        if math.isnan(rate) or rate <= 0:
            return float("nan")
        return remaining / rate

    def worker_utilization(self) -> Dict[str, float]:
        """Busy-fraction per worker: simulated wall seconds / elapsed."""
        elapsed = self.elapsed_s
        if elapsed <= 0:
            return {w: float("nan") for w in self.workers}
        return {w: busy / elapsed for w, (_cells, busy) in sorted(self.workers.items())}

    def sim_event_rates(self) -> Dict[str, float]:
        """Simulated events per host second, per vocabulary kind.

        Derived from the per-core counters of freshly-simulated cells
        (cache hits simulate nothing and are excluded).  NaN before the
        first simulated cell lands, per the §10 convention.
        """
        if self.sim_wall_s <= 0:
            return {k: float("nan") for k in _SIM_KINDS}
        return {k: v / self.sim_wall_s for k, v in self.sim_counts.items()}

    # -- event intake --------------------------------------------------------

    def emit(self, event: SweepEvent) -> None:
        self.events_seen += 1
        if event.kind == "sweep_begin":
            self.sweep_seq += 1
            self._reset_sweep(total=event.total)
        elif event.kind == "submit":
            self.inflight += 1
        elif event.kind == "retry":
            # The failed attempt is no longer in flight; the follow-up
            # submission (pool and inline both re-emit "submit") re-adds it.
            self.retries += 1
            self.inflight = max(0, self.inflight - 1)
        elif event.kind == "quarantine":
            self.quarantined += 1
            self.inflight = max(0, self.inflight - 1)
        elif event.kind in ("finish", "cache_hit", "timeout", "failed"):
            self._terminal(event)
        elif event.kind == "sweep_end":
            self.finished_at = self.clock()
        self._publish()
        self._append_progress(event)

    __call__ = emit

    def _terminal(self, event: SweepEvent) -> None:
        status = event.status or {
            "finish": "ok", "cache_hit": "cached", "timeout": "timeout", "failed": "failed",
        }[event.kind]
        self.counts[status] = self.counts.get(status, 0) + 1
        self.attempts += event.attempts
        if event.kind != "cache_hit":
            self.inflight = max(0, self.inflight - 1)
        if status in ("ok", "cached"):
            completed = event.outcome
            if completed is not None and completed.result is not None:
                self._fold_serving(completed.result)
        if status == "ok":
            self.registry.histogram(
                "sweep.cell_wall_s", bounds=_LATENCY_BOUNDS,
                help="wall-clock latency of freshly simulated cells (s)",
            ).observe(event.wall_s)
            stats = self.workers.setdefault(event.worker, [0, 0.0])
            stats[0] += 1
            stats[1] += event.wall_s
            outcome = event.outcome
            if outcome is not None and outcome.result is not None and event.wall_s > 0:
                self.sim_wall_s += event.wall_s
                self.sim_instructions += outcome.result.instructions
                for core in outcome.result.cores:
                    for kind in _SIM_KINDS:
                        self.sim_counts[kind] += getattr(core, kind)

    def _fold_serving(self, result: object) -> None:
        """Fold one cell's ``extra["serving"]`` aggregates fleet-wide.

        Cached outcomes count too — the serving panel describes the
        sweep's *results*, not how they were obtained.  The per-cell
        latency histograms merge into one fleet histogram when every
        cell shares the same SLO-scaled bucket bounds; a sweep mixing
        SLO configurations keeps the op/violation counters but refuses
        the silent re-bucketing a merge would imply.
        """
        serving = getattr(result, "extra", {}).get("serving")
        if not isinstance(serving, dict):
            return
        self.serving_ops += int(serving.get("ops_completed") or 0)
        self.serving_violations += int(serving.get("slo_violations") or 0)
        doc = serving.get("histogram")
        if not isinstance(doc, dict):
            return
        bounds = tuple(float(b) for b in doc.get("bounds", ()))
        counts = doc.get("counts", ())
        if not bounds or len(counts) != len(bounds) + 1:
            return
        hist = self.registry.histogram(
            "serving.latency_cycles",
            bounds=bounds,
            help="request latency across the sweep's serving cells (cycles)",
        )
        if hist.bounds != bounds:
            return
        folded = 0
        for i, n in enumerate(counts):
            hist.bucket_counts[i] += int(n)
            folded += int(n)
        hist.count += folded
        mean = serving.get("latency_mean")
        if isinstance(mean, (int, float)):
            # The extra carries mean, not sum; reconstructing keeps the
            # fleet histogram's own mean meaningful.
            hist.total += float(mean) * folded

    # -- registry publication ------------------------------------------------

    def _publish(self) -> None:
        reg = self.registry
        reg.gauge("sweep.seq", help="1-based sweep sequence number").set(self.sweep_seq)
        reg.gauge("sweep.cells_total", help="cells in the current sweep").set(self.total)
        reg.gauge("sweep.inflight", help="cells submitted but not finished").set(self.inflight)
        for status, count in sorted(self.counts.items()):
            reg.gauge(f"sweep.cells_{status}", help=f"cells that ended {status}").set(count)
        reg.gauge("sweep.retries", help="retry attempts across the sweep").set(self.retries)
        reg.gauge("sweep.quarantined", help="cells quarantined after pool breaks").set(
            self.quarantined
        )
        reg.gauge("sweep.attempts", help="execution attempts consumed").set(self.attempts)
        reg.gauge("sweep.elapsed_s", help="host seconds since sweep begin").set(self.elapsed_s)
        reg.gauge("sweep.cells_per_sec", help="finished cells per host second").set(
            self.cells_per_sec
        )
        reg.gauge("sweep.cache_hit_rate", help="cached / finished").set(self.cache_hit_rate)
        reg.gauge("sweep.eta_s", help="estimated host seconds to completion").set(self.eta_s)
        for worker, util in self.worker_utilization().items():
            reg.gauge(
                f"sweep.worker.{worker}.utilization",
                help="busy fraction: simulated wall seconds / elapsed",
            ).set(util)
            reg.gauge(f"sweep.worker.{worker}.cells", help="cells simulated by this worker").set(
                self.workers[worker][0]
            )
        from repro.workloads.memapi import _default_streams

        reg.gauge("sim.fast_path", help="1 when the batched stream vocabulary is active").set(
            0.0 if not _default_streams() else 1.0
        )
        if self.sim_wall_s > 0:
            reg.gauge(
                "sim.instructions_per_sec", help="simulated instructions per host second"
            ).set(self.sim_instructions / self.sim_wall_s)
        for kind, rate in sorted(self.sim_event_rates().items()):
            reg.gauge(
                f"sim.events_per_sec.{kind}",
                help="simulated events of this vocabulary kind per host second",
            ).set(rate)
        if self.serving_ops:
            reg.gauge(
                "serving.ops", help="completed serving requests across the sweep"
            ).set(self.serving_ops)
            reg.gauge(
                "serving.slo_violations", help="serving requests over their SLO"
            ).set(self.serving_violations)
        if self.cache is not None:
            self.cache.publish_metrics(reg)

    def snapshot(self) -> Dict[str, object]:
        """The exported (sanitised, NaN→null) fleet metrics view."""
        return export_snapshot(self.registry)

    # -- JSONL progress file -------------------------------------------------

    def _append_progress(self, event: SweepEvent) -> None:
        if self.progress_path is None:
            return
        if self._fh is None:
            self.progress_path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.progress_path.open("a")
        doc: Dict[str, object] = {
            "event": event.kind,
            "sweep": self.sweep_seq,
            "t_s": round(self.elapsed_s, 6),
        }
        if event.index >= 0:
            doc.update(index=event.index, run_id=event.run_id)
        if event.kind in ("finish", "cache_hit", "timeout", "failed"):
            doc.update(
                status=event.status,
                worker=event.worker,
                wall_s=round(event.wall_s, 6),
                attempts=event.attempts,
                done=self.done,
                total=self.total,
            )
            if event.error:
                doc["error"] = event.error
        if event.kind == "sweep_begin":
            doc["total"] = event.total
        self._fh.write(json.dumps(doc, sort_keys=True, allow_nan=False) + "\n")
        if event.kind == "sweep_end":
            summary = {"event": "summary", "sweep": self.sweep_seq, "metrics": self.snapshot()}
            self._fh.write(json.dumps(summary, sort_keys=True, allow_nan=False) + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepMonitor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- rendering -----------------------------------------------------------

    def render_dashboard(self, width: int = 72) -> str:
        """The ``--watch`` TTY view: progress bar + fleet aggregates."""

        def fmt(value: float, suffix: str = "") -> str:
            # Dash on *any* non-finite ratio, not just NaN: an instant
            # sweep (100% cache hits, elapsed ~ 0) must never print inf.
            return f"{value:,.2f}{suffix}" if math.isfinite(value) else "-"

        done, total = self.done, self.total
        frac = done / total if total else 0.0
        bar_w = max(10, width - 24)
        filled = int(round(frac * bar_w))
        bar = "#" * filled + "-" * (bar_w - filled)
        lines = [
            f"sweep {self.sweep_seq}  [{bar}] {done}/{total} ({frac:6.1%})",
            (
                f"  ok {self.counts['ok']}  cached {self.counts['cached']}  "
                f"failed {self.counts['failed']}  timeout {self.counts['timeout']}  "
                f"inflight {self.inflight}  retries {self.retries}  "
                f"quarantined {self.quarantined}"
            ),
            (
                f"  elapsed {self.elapsed_s:7.2f}s   cells/s {fmt(self.cells_per_sec)}   "
                f"ETA {fmt(self.eta_s, 's')}   cache hit-rate {fmt(self.cache_hit_rate)}"
            ),
        ]
        if self.workers:
            lines.append("  workers (cells, busy, util):")
            for worker, util in self.worker_utilization().items():
                cells, busy = self.workers[worker]
                lines.append(
                    f"    {worker:>10s}  {int(cells):4d}  {busy:7.2f}s  {fmt(util)}"
                )
        if self.cache is not None:
            cs = self.cache.stats()
            lines.append(
                f"  cache: {cs['entries']} entries  {cs['bytes']:,}B  "
                f"hits {cs['hits']}  misses {cs['misses']}  evictions {cs['evictions']}"
            )
        rates = self.sim_event_rates()
        if not all(math.isnan(r) for r in rates.values()):
            path = "fast" if self.registry.gauge("sim.fast_path").value == 1.0 else "reference"
            pairs = "  ".join(f"{k} {fmt(v, '/s')}" for k, v in sorted(rates.items()))
            lines.append(f"  sim events ({path} path): {pairs}")
        if self.serving_ops:
            line = (
                f"  serving: {self.serving_ops} ops  "
                f"SLO violations {self.serving_violations}"
            )
            hist = self.registry.get("serving.latency_cycles")
            if hist is not None and getattr(hist, "count", 0):
                line += (
                    f"  latency p50 {fmt(hist.quantile(0.5))}  "
                    f"p99 {fmt(hist.quantile(0.99))}  p999 {fmt(hist.quantile(0.999))}"
                )
            lines.append(line)
        return "\n".join(lines)

    def render_openmetrics(self) -> str:
        """OpenMetrics exposition of the fleet registry (scrapeable)."""
        from repro.obs.export import render_openmetrics

        return render_openmetrics(self.registry)

    def render_jsonl(self) -> str:
        return render_jsonl(self.registry, extra={"sweep": self.sweep_seq})


def replay_outcomes(
    outcomes: Sequence["CellOutcome"],
    progress_path: Union[str, Path, None] = None,
    clock: Callable[[], float] = time.monotonic,
) -> SweepMonitor:
    """Rebuild a monitor from a finished sweep's outcome list.

    What makes ``python -m repro.runner bench --outcomes out.json``
    reproducible: anything derived from per-cell facts (status counts,
    attempts, worker cells/busy time, latency histogram, cache hit-rate,
    sim event rates) is recomputed exactly; only the live wall-clock
    gauges (elapsed, cells/s, ETA) differ, since replay is instant.
    """
    monitor = SweepMonitor(progress_path=progress_path, clock=clock)
    monitor.emit(SweepEvent(kind="sweep_begin", total=len(outcomes)))
    for i, outcome in enumerate(outcomes):
        kind = {
            "ok": "finish", "cached": "cache_hit", "timeout": "timeout", "failed": "failed",
        }[outcome.status]
        if kind == "finish":
            monitor.emit(SweepEvent(kind="submit", index=i, total=len(outcomes),
                                    run_id=outcome.run_id))
        monitor.emit(
            SweepEvent(
                kind=kind,
                index=i,
                total=len(outcomes),
                run_id=outcome.run_id,
                worker=outcome.worker,
                status=outcome.status,
                wall_s=outcome.wall_s,
                attempts=outcome.attempts,
                error=outcome.error,
                outcome=outcome,
            )
        )
    monitor.emit(SweepEvent(kind="sweep_end"))
    return monitor


def outcome_to_dict(outcome: "CellOutcome") -> Dict[str, object]:
    """Plain-data view of a :class:`CellOutcome` for ``--outcomes`` files.

    Carries the per-cell facts the monitor aggregates (not the full
    RunResult JSON — archives stay small); result-derived fields are
    NaN-safe per the §10 null convention.
    """
    doc: Dict[str, object] = {
        "run_id": outcome.run_id,
        "status": outcome.status,
        "cached": outcome.cached,
        "worker": outcome.worker,
        "wall_s": round(outcome.wall_s, 6),
        "attempts": outcome.attempts,
        "error": outcome.error,
    }
    result = outcome.result
    if result is not None:
        doc["cycles"] = nullsafe_value(result.cycles)
        doc["instructions"] = result.instructions
        doc["write_amplification"] = nullsafe_value(result.write_amplification)
    return doc
