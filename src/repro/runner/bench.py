"""Benchmark harness: serial vs. parallel, cold vs. warm, scaling curve.

``python -m repro.runner bench`` (or ``make bench``) times the same
cell set four ways —

1. **serial cold** — one process, no cache (the pre-runner baseline);
2. **parallel cold** — a fresh worker pool, filling an empty cache
   (pays pool spawn + warmup once);
3. **parallel cold, warm pool** — the cache cleared but the *same*
   session pool reused, isolating what persistent warm workers and
   chunked dispatch save over respawning per sweep;
4. **parallel warm** — the same sweep again, expecting 100% cache hits

— checks every parallel phase is byte-identical to the serial one, and
writes the measurements to ``BENCH_runner.json``.  ``--workers-sweep``
additionally records a scaling curve (cold + warm wall time per worker
count), and ``--cells`` grows the grid beyond the default 8 cells so
pool overheads stop dominating.  On a single-core container the
speedups hover around 1.0; the numbers that must always hold are the
determinism booleans and the warm run's zero simulations.
"""

from __future__ import annotations

import functools
import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.prestore import PrestoreMode
from repro.runner.cache import ResultCache
from repro.runner.cells import Cell, code_fingerprint
from repro.runner.grid import Grid
from repro.runner.monitor import SweepMonitor, outcome_to_dict
from repro.runner.pool import EventBus, execute_cells, runner_session
from repro.sim.machine import machine_a

__all__ = ["bench_cells", "bench_grid", "run_bench"]


def bench_grid(full: bool = False, count: Optional[int] = None) -> Grid:
    """The bench's declarative grid: NAS kernels × modes × seeds.

    ``count`` scales the sweep by adding seeds (8 cells per seed); the
    expansion is row-major and deterministic, so the same ``count``
    always names the same cells.
    """
    from repro.workloads.nas import FTWorkload, MGWorkload, SPWorkload, UAWorkload

    kernels = (MGWorkload, FTWorkload, SPWorkload, UAWorkload)
    grid = 24 if full else 16
    iterations = 2 if full else 1
    per_seed = len(kernels) * 2
    seeds = 1 if count is None else max(1, math.ceil(count / per_seed))
    return Grid(
        factories=[
            functools.partial(cls, grid=grid, iterations=iterations, threads=4)
            for cls in kernels
        ],
        machines=[machine_a()],
        modes=(PrestoreMode.NONE, PrestoreMode.CLEAN),
        seeds=range(1234, 1234 + seeds),
    )


def bench_cells(full: bool = False, count: Optional[int] = None) -> List[Cell]:
    """A reduced fig9-style sweep: NAS kernels x (baseline, clean).

    With ``count``, the grid grows seed-wise to at least that many
    cells and is truncated to exactly ``count``.
    """
    cells = bench_grid(full=full, count=count).cells()
    return cells if count is None else cells[:count]


def _timed(cells: Sequence[Cell], **kwargs) -> Dict[str, object]:
    started = time.perf_counter()
    outcomes = execute_cells(cells, **kwargs)
    elapsed = time.perf_counter() - started
    return {
        "wall_s": elapsed,
        "jsons": [o.result_json for o in outcomes],
        "cached": sum(1 for o in outcomes if o.cached),
        "workers_seen": sorted({o.worker for o in outcomes}),
        "outcomes": outcomes,
    }


def _ratio(numerator: float, denominator: float) -> float:
    """NaN, not inf, when the denominator measured no time (§9)."""
    return numerator / denominator if denominator > 0 else float("nan")


def _sim_summary() -> Dict[str, object]:
    """Quick interpreter throughput numbers from :mod:`repro.sim.bench`.

    One preset, two benchmarks, quick sizes — enough to track the
    event-interpreter speedup alongside the runner's own numbers.
    """
    from repro.sim.bench import BENCHMARKS, PRESETS, _measure

    summary: Dict[str, object] = {}
    preset = PRESETS["machine-A"]
    for bname in ("seq_write_warm", "seq_write_cold"):
        body, _full_sizes, quick_sizes = BENCHMARKS[bname]
        entry = _measure(preset, body, quick_sizes, repeats=1)
        summary[bname] = {
            "reference_events_per_sec": round(entry["reference"]["events_per_sec"], 1),
            "fast_events_per_sec": round(entry["fast"]["events_per_sec"], 1),
            "speedup": round(entry["speedup"], 3),
            "identical": entry["identical"],
        }
    return summary


def _serving_summary() -> Dict[str, object]:
    """Serving throughput cell: one run per event vocabulary.

    A small open-loop :class:`~repro.traffic.serving.ServingWorkload`
    run, timed under the fast (batched streams) and reference
    interpreters.  ``events_per_sec`` rides the history gate's ±30%
    throughput rule and ``identical`` its exact boolean rule;
    ``fast_over_reference`` is trend-only.
    """
    from repro.core.prestore import PrestoreMode as Mode
    from repro.experiments.common import endorsed_patches
    from repro.traffic.arrivals import ArrivalSpec
    from repro.traffic.serving import ServingWorkload
    from repro.workloads.kv.ycsb import YCSBSpec

    def make() -> ServingWorkload:
        return ServingWorkload(
            spec=YCSBSpec(mix="A", num_keys=512, operations=600, value_size=512),
            clients=4,
            arrival=ArrivalSpec(kind="poisson", rate_per_kcycle=0.25),
            slo_cycles=10_000.0,
        )

    timings: Dict[bool, Dict[str, object]] = {}
    for streams in (True, False):
        workload = make()
        started = time.perf_counter()
        run = workload.run(
            machine_a(),
            endorsed_patches(workload, Mode.CLEAN),
            seed=1234,
            streams=streams,
        ).run
        wall = time.perf_counter() - started
        timings[streams] = {
            "json": run.to_json(),
            "events_per_sec": _ratio(run.instructions, wall),
            "ops": run.extra["serving"]["ops_completed"],
        }
    fast, reference = timings[True], timings[False]
    return {
        "events_per_sec": round(float(fast["events_per_sec"]), 1),
        "reference_events_per_sec": round(float(reference["events_per_sec"]), 1),
        "fast_over_reference": round(
            _ratio(float(fast["events_per_sec"]), float(reference["events_per_sec"])), 3
        ),
        "ops": fast["ops"],
        "identical": fast["json"] == reference["json"],
    }


def run_bench(
    workers: int = 4,
    cache_dir: Union[str, Path] = "build/runner-cache",
    out: Union[str, Path] = "BENCH_runner.json",
    full: bool = False,
    cells: Optional[List[Cell]] = None,
    cells_count: Optional[int] = None,
    workers_sweep: Optional[Sequence[int]] = None,
    chunk_size: Optional[int] = None,
    sim: bool = True,
    serving: bool = True,
    events: EventBus = None,
    outcomes_out: Union[str, Path, None] = None,
) -> Dict[str, object]:
    """Run the comparison phases and write ``out``; returns the doc.

    ``cells_count`` sizes the grid (None keeps the historical 8-cell
    sweep); ``workers_sweep`` appends a cold+warm scaling curve, one
    entry per worker count, each measured with its own fresh-then-warm
    cache.  ``events`` (e.g. a :class:`~repro.runner.monitor.SweepMonitor`)
    observes every sweep through the pool's event-bus seam;
    ``outcomes_out`` archives each phase's per-cell
    :class:`~repro.runner.pool.CellOutcome` list as JSON, so monitor
    aggregates can be replayed from a finished bench
    (:func:`~repro.runner.monitor.replay_outcomes`).
    """
    cells = cells if cells is not None else bench_cells(full=full, count=cells_count)
    cache = ResultCache(cache_dir)
    cache.root.mkdir(parents=True, exist_ok=True)
    cache.clear()  # cold means cold

    # Fold cache hit/miss/evict counters into an attached monitor's
    # registry (the dashboard and the JSONL summary lines pick them up).
    monitor = getattr(events, "monitor", events)
    if isinstance(monitor, SweepMonitor):
        monitor.cache = cache

    serial = _timed(cells, workers=1, cache=None, events=events)
    with runner_session(workers=workers, chunk_size=chunk_size):
        # Phase 2 pays pool spawn + worker warmup; phase 3 reuses the
        # session's live pool against a re-cleared cache, so the delta
        # is exactly the persistent-warm-worker saving.
        parallel_cold = _timed(cells, workers=workers, cache=cache, events=events)
        warm_entries = len(cache)
        cache.clear()
        parallel_cold_warm_pool = _timed(cells, workers=workers, cache=cache, events=events)
        parallel_warm = _timed(cells, workers=workers, cache=cache, events=events)

    deterministic = (
        serial["jsons"] == parallel_cold["jsons"] == parallel_cold_warm_pool["jsons"]
        and serial["jsons"] == parallel_warm["jsons"]
    )
    warm_all_cached = parallel_warm["cached"] == len(cells)

    doc: Dict[str, object] = {
        "bench": "repro.runner",
        "cells": len(cells),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "code_fingerprint": code_fingerprint(),
        "serial_cold_s": round(serial["wall_s"], 4),
        "parallel_cold_s": round(parallel_cold["wall_s"], 4),
        "parallel_cold_warm_pool_s": round(parallel_cold_warm_pool["wall_s"], 4),
        "parallel_warm_s": round(parallel_warm["wall_s"], 4),
        "parallel_speedup": round(_ratio(serial["wall_s"], parallel_cold["wall_s"]), 3),
        "warm_pool_speedup": round(
            _ratio(serial["wall_s"], parallel_cold_warm_pool["wall_s"]), 3
        ),
        "warm_worker_gain": round(
            _ratio(parallel_cold["wall_s"], parallel_cold_warm_pool["wall_s"]), 3
        ),
        "warm_cache_hits": parallel_warm["cached"],
        "warm_all_cached": warm_all_cached,
        "deterministic": deterministic,
        "cache_entries": warm_entries,
    }

    if workers_sweep:
        scaling: Dict[str, object] = {}
        for w in workers_sweep:
            w = max(1, int(w))
            cache.clear()
            with runner_session(workers=w, chunk_size=chunk_size):
                cold = _timed(cells, workers=w, cache=cache, events=events)
                warm = _timed(cells, workers=w, cache=cache, events=events)
            deterministic = (
                deterministic
                and cold["jsons"] == serial["jsons"]
                and warm["jsons"] == serial["jsons"]
            )
            scaling[f"w{w}"] = {
                "workers": w,
                "cold_s": round(cold["wall_s"], 4),
                # Milliseconds, and deliberately not named *_s: an
                # all-cached replay is a few ms, far inside the regress
                # gate's noise floor, so it tracks as trend-only.
                "warm_ms": round(warm["wall_s"] * 1000, 2),
                "cold_speedup": round(_ratio(serial["wall_s"], cold["wall_s"]), 3),
                "warm_all_cached": warm["cached"] == len(cells),
            }
        doc["scaling"] = scaling
        doc["deterministic"] = deterministic
        doc["warm_all_cached"] = warm_all_cached and all(
            entry["warm_all_cached"] for entry in scaling.values()  # type: ignore[index]
        )

    doc["cache_stats"] = {
        k: v for k, v in cache.stats().items() if k in ("hits", "misses", "evictions", "stores")
    }
    if sim:
        doc["sim"] = _sim_summary()
    if serving:
        doc["serving"] = _serving_summary()
    if outcomes_out is not None:
        outcomes_doc = {
            "schema": "repro.bench_outcomes/v1",
            "code_fingerprint": doc["code_fingerprint"],
            "phases": {
                phase: [outcome_to_dict(o) for o in timing["outcomes"]]
                for phase, timing in (
                    ("serial_cold", serial),
                    ("parallel_cold", parallel_cold),
                    ("parallel_cold_warm_pool", parallel_cold_warm_pool),
                    ("parallel_warm", parallel_warm),
                )
            },
        }
        outcomes_path = Path(outcomes_out)
        if outcomes_path.parent != Path("."):
            outcomes_path.parent.mkdir(parents=True, exist_ok=True)
        outcomes_path.write_text(json.dumps(outcomes_doc, indent=2, sort_keys=True) + "\n")
    out = Path(out)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return doc
