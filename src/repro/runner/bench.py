"""Benchmark harness: serial vs. parallel, cold vs. warm cache.

``python -m repro.runner bench`` (or ``make bench``) times the same
cell set three ways —

1. **serial cold** — one process, no cache (the pre-runner baseline);
2. **parallel cold** — the worker pool, filling an empty cache;
3. **parallel warm** — the same sweep again, expecting 100% cache hits

— checks the parallel results are byte-identical to the serial ones,
and writes the measurements to ``BENCH_runner.json``.  On a single-core
container the speedup hovers around (or below) 1.0; the number that
must always hold is the warm run's zero simulations.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.prestore import PrestoreMode
from repro.runner.cache import ResultCache
from repro.runner.cells import Cell, code_fingerprint
from repro.runner.monitor import outcome_to_dict
from repro.runner.pool import EventBus, execute_cells
from repro.sim.machine import machine_a

__all__ = ["bench_cells", "run_bench"]


def bench_cells(full: bool = False) -> List[Cell]:
    """A reduced fig9-style sweep: NAS kernels x (baseline, clean)."""
    from repro.workloads.nas import FTWorkload, MGWorkload, SPWorkload, UAWorkload

    kernels = (MGWorkload, FTWorkload, SPWorkload, UAWorkload)
    grid = 24 if full else 16
    iterations = 2 if full else 1
    spec = machine_a()
    return [
        Cell(
            make_workload=functools.partial(cls, grid=grid, iterations=iterations, threads=4),
            spec=spec,
            mode=mode,
            seed=1234,
        )
        for cls in kernels
        for mode in (PrestoreMode.NONE, PrestoreMode.CLEAN)
    ]


def _timed(cells: Sequence[Cell], **kwargs) -> Dict[str, object]:
    started = time.perf_counter()
    outcomes = execute_cells(cells, **kwargs)
    elapsed = time.perf_counter() - started
    return {
        "wall_s": elapsed,
        "jsons": [o.result_json for o in outcomes],
        "cached": sum(1 for o in outcomes if o.cached),
        "workers_seen": sorted({o.worker for o in outcomes}),
        "outcomes": outcomes,
    }


def _sim_summary() -> Dict[str, object]:
    """Quick interpreter throughput numbers from :mod:`repro.sim.bench`.

    One preset, two benchmarks, quick sizes — enough to track the
    event-interpreter speedup alongside the runner's own numbers.
    """
    from repro.sim.bench import BENCHMARKS, PRESETS, _measure

    summary: Dict[str, object] = {}
    preset = PRESETS["machine-A"]
    for bname in ("seq_write_warm", "seq_write_cold"):
        body, _full_sizes, quick_sizes = BENCHMARKS[bname]
        entry = _measure(preset, body, quick_sizes, repeats=1)
        summary[bname] = {
            "reference_events_per_sec": round(entry["reference"]["events_per_sec"], 1),
            "fast_events_per_sec": round(entry["fast"]["events_per_sec"], 1),
            "speedup": round(entry["speedup"], 3),
            "identical": entry["identical"],
        }
    return summary


def run_bench(
    workers: int = 4,
    cache_dir: Union[str, Path] = "build/runner-cache",
    out: Union[str, Path] = "BENCH_runner.json",
    full: bool = False,
    cells: Optional[List[Cell]] = None,
    sim: bool = True,
    events: EventBus = None,
    outcomes_out: Union[str, Path, None] = None,
) -> Dict[str, object]:
    """Run the three-way comparison and write ``out``; returns the doc.

    ``events`` (e.g. a :class:`~repro.runner.monitor.SweepMonitor`)
    observes all three sweeps through the pool's event-bus seam;
    ``outcomes_out`` archives each phase's per-cell
    :class:`~repro.runner.pool.CellOutcome` list as JSON, so monitor
    aggregates can be replayed from a finished bench
    (:func:`~repro.runner.monitor.replay_outcomes`).
    """
    cells = cells if cells is not None else bench_cells(full=full)
    cache = ResultCache(cache_dir)
    cache.root.mkdir(parents=True, exist_ok=True)
    cache.clear()  # cold means cold

    serial = _timed(cells, workers=1, cache=None, events=events)
    parallel_cold = _timed(cells, workers=workers, cache=cache, events=events)
    parallel_warm = _timed(cells, workers=workers, cache=cache, events=events)

    deterministic = serial["jsons"] == parallel_cold["jsons"]
    warm_all_cached = parallel_warm["cached"] == len(cells)
    # NaN, not inf, when the parallel phase measured no time: the ratio
    # has no data (DESIGN.md §9), and inf would read as an infinitely
    # good speedup in the regression gate.
    speedup = (
        serial["wall_s"] / parallel_cold["wall_s"] if parallel_cold["wall_s"] > 0 else float("nan")
    )

    doc = {
        "bench": "repro.runner",
        "cells": len(cells),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "code_fingerprint": code_fingerprint(),
        "serial_cold_s": round(serial["wall_s"], 4),
        "parallel_cold_s": round(parallel_cold["wall_s"], 4),
        "parallel_warm_s": round(parallel_warm["wall_s"], 4),
        "parallel_speedup": round(speedup, 3),
        "warm_cache_hits": parallel_warm["cached"],
        "warm_all_cached": warm_all_cached,
        "deterministic": deterministic,
        "cache_entries": len(cache),
    }
    if sim:
        doc["sim"] = _sim_summary()
    if outcomes_out is not None:
        outcomes_doc = {
            "schema": "repro.bench_outcomes/v1",
            "code_fingerprint": doc["code_fingerprint"],
            "phases": {
                phase: [outcome_to_dict(o) for o in timing["outcomes"]]
                for phase, timing in (
                    ("serial_cold", serial),
                    ("parallel_cold", parallel_cold),
                    ("parallel_warm", parallel_warm),
                )
            },
        }
        outcomes_path = Path(outcomes_out)
        if outcomes_path.parent != Path("."):
            outcomes_path.parent.mkdir(parents=True, exist_ok=True)
        outcomes_path.write_text(json.dumps(outcomes_doc, indent=2, sort_keys=True) + "\n")
    out = Path(out)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return doc
