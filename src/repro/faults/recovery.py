"""Recovery checks: replay durability invariants against a crash image.

Workloads that participate in crash testing keep a
:class:`DurabilityLog`: every time they acknowledge an operation to
their (simulated) client — a KV ``put`` returning, a log append
completing — they append an :class:`AckRecord` naming the cache lines
the operation's data lives in and the store versions the device had
accepted responsibility for at that point.

After a crash, :func:`check_durability` replays the log against the
captured :class:`~repro.faults.image.PersistentImage`:

* ``kv`` — every acknowledged key must be readable: all of its lines
  durable at (or past) the acked version.  The classic persist-protocol
  invariant (clwb + sfence before the ack).
* ``prefix`` — a sequential log must be durable *as a prefix* of ack
  order: the first lost record bounds what recovery may trust, and any
  later record that happens to be durable is an out-of-order hole the
  recovery code must discard.

Checks report structured dictionaries (JSON-stable, sorted) rather than
raising: experiments compare them across pre-store modes, and tests
assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.image import PersistentImage

__all__ = ["AckRecord", "DurabilityLog", "check_durability"]

#: Cap on how many offending keys/indices a report enumerates.
_REPORT_LIMIT = 32


@dataclass(frozen=True)
class AckRecord:
    """One acknowledged operation: its data's lines and store versions."""

    index: int
    key: str
    lines: Tuple[int, ...]
    #: line -> store version the ack promises durable (0 = any version).
    versions: Tuple[Tuple[int, int], ...] = ()

    def required_version(self, line: int) -> int:
        for recorded, version in self.versions:
            if recorded == line:
                return version
        return 0


class DurabilityLog:
    """Ack stream a workload emits while running (in simulated order)."""

    def __init__(self) -> None:
        self.records: List[AckRecord] = []

    def ack(self, key: str, lines: Iterable[int], device: object = None) -> AckRecord:
        """Record an acknowledgement for the data on ``lines``.

        When ``device`` is a fault-tracking device its per-line store
        versions are snapshotted, pinning exactly *which* write the ack
        covers (later rewrites of the same line don't retroactively
        satisfy it).  Under a plain device versions default to 0, which
        :meth:`AckRecord.required_version` treats as "latest".
        """
        line_tuple = tuple(sorted(set(lines)))
        versions = getattr(device, "line_versions", None) or {}
        record = AckRecord(
            index=len(self.records),
            key=str(key),
            lines=line_tuple,
            versions=tuple((line, versions.get(line, 0)) for line in line_tuple),
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def to_dict(self) -> Dict[str, object]:
        return {
            "records": [
                {
                    "index": r.index,
                    "key": r.key,
                    "lines": list(r.lines),
                    "versions": [list(pair) for pair in r.versions],
                }
                for r in self.records
            ]
        }


def _record_durable(record: AckRecord, image: PersistentImage) -> bool:
    return all(
        image.is_durable(line, record.required_version(line) or image.line_versions.get(line, 0))
        for line in record.lines
    )


def _check_kv(log: DurabilityLog, image: PersistentImage) -> Dict[str, object]:
    lost: List[str] = []
    for record in log.records:
        if not _record_durable(record, image):
            lost.append(record.key)
    lost_sorted = sorted(set(lost))
    return {
        "kind": "kv",
        "ok": not lost_sorted,
        "acked": len(log.records),
        "lost_count": len(lost_sorted),
        "lost_keys": lost_sorted[:_REPORT_LIMIT],
    }


def _check_prefix(log: DurabilityLog, image: PersistentImage) -> Dict[str, object]:
    durable_flags = [_record_durable(record, image) for record in log.records]
    prefix_len = 0
    for flag in durable_flags:
        if not flag:
            break
        prefix_len += 1
    #: Records durable *past* the first gap: out-of-order survivors the
    #: recovery procedure must truncate away.
    holes = [i for i in range(prefix_len, len(durable_flags)) if durable_flags[i]]
    lost = [i for i, flag in enumerate(durable_flags) if not flag]
    return {
        "kind": "prefix",
        "ok": prefix_len == len(log.records),
        "acked": len(log.records),
        "durable_prefix": prefix_len,
        "lost_count": len(lost),
        "lost_indices": lost[:_REPORT_LIMIT],
        "holes": holes[:_REPORT_LIMIT],
    }


_CHECKS = {"kv": _check_kv, "prefix": _check_prefix}


def check_durability(
    kind: str, log: Optional[DurabilityLog], image: PersistentImage
) -> Dict[str, object]:
    """Run the named recovery check; returns a JSON-stable report."""
    check = _CHECKS.get(kind)
    if check is None:
        raise ConfigurationError(
            f"unknown recovery kind {kind!r} (expected one of {sorted(_CHECKS)})"
        )
    if log is None:
        log = DurabilityLog()
    return check(log, image)
