"""``python -m repro.faults``: faulted runs and the crash-consistency matrix.

Examples::

    # Crash a persistent KV store mid-run, protocol on, and check recovery:
    python -m repro.faults run --workload kvpersist --mode clean \\
        --machine a --crash-frac 0.5

    # Unsafe baseline on Machine B-slow: see what a crash loses:
    python -m repro.faults run --workload logappend --mode none \\
        --machine b-slow --crash-frac 0.5 --no-adr

    # The CI self-check: small matrix on machine A and B-slow, asserting
    # protocol durability, baseline vulnerability, determinism, and the
    # empty-plan identity:
    python -m repro.faults matrix
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.faults.harness import run_with_faults
from repro.faults.plan import CrashPoint, FaultPlan
from repro.faults.workloads import KVPersistWorkload, LogAppendWorkload
from repro.obs.log import basic_config
from repro.sim.machine import (
    MachineSpec,
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)
from repro.workloads.base import Workload

MACHINES: Dict[str, Callable[[], MachineSpec]] = {
    "a": machine_a,
    "a-cxl": machine_a_cxl,
    "dram": machine_dram,
    "b-fast": machine_b_fast,
    "b-slow": machine_b_slow,
}

WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "kvpersist": KVPersistWorkload,
    "logappend": LogAppendWorkload,
}


def _build_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(f"unknown workload {name!r} (expected one of {sorted(WORKLOADS)})")


def _patches_for(workload: Workload, mode: PrestoreMode) -> PatchConfig:
    config = PatchConfig.baseline()
    for site in workload.patch_sites():
        config.set_mode(site.name, mode)
    return config


def _crash_instruction(
    workload: Workload,
    fraction: float,
    line_size: int = 64,
    mode: PrestoreMode = PrestoreMode.NONE,
) -> int:
    """Place the crash a fraction of the way through the op stream.

    Defaults to the ``none``-mode event count — the smallest of any mode —
    so the same boundary lands inside the run whatever protocol is on.
    """
    if isinstance(workload, KVPersistWorkload):
        total = workload.operations * workload.events_per_op(line_size, mode)
    elif isinstance(workload, LogAppendWorkload):
        total = workload.records * workload.events_per_op(line_size, mode)
    else:  # pragma: no cover - CLI only builds the two above
        total = 1000
    return max(1, int(total * fraction))


def _run_one(
    workload_name: str,
    machine_key: str,
    mode: PrestoreMode,
    crash_instruction: Optional[int],
    adr: bool,
    seed: int,
    obs: "bool | object" = False,
):
    workload = _build_workload(workload_name)
    spec = MACHINES[machine_key]()
    crash = None if crash_instruction is None else CrashPoint(at_instruction=crash_instruction)
    plan = FaultPlan(crash=crash, combiner_persistent=adr)
    return run_with_faults(
        workload, spec, plan, patches=_patches_for(workload, mode), seed=seed, obs=obs
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.machine not in MACHINES:
        raise SystemExit(f"unknown machine {args.machine!r} (expected one of {sorted(MACHINES)})")
    mode = PrestoreMode(args.mode)
    workload = _build_workload(args.workload)
    if args.crash_at_instr is not None:
        crash_instruction: Optional[int] = args.crash_at_instr
    elif args.crash_frac is not None:
        crash_instruction = _crash_instruction(
            workload, args.crash_frac, MACHINES[args.machine]().line_size, mode
        )
    else:
        crash_instruction = None
    collector = None
    if args.trace:
        from repro.obs.collector import ObsCollector

        collector = ObsCollector()
    report = _run_one(
        args.workload,
        args.machine,
        mode,
        crash_instruction,
        adr=not args.no_adr,
        seed=args.seed,
        obs=collector if collector is not None else False,
    )
    doc = report.to_dict(include_image=args.full_image)
    print(json.dumps(doc, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}", file=sys.stderr)
    if collector is not None:
        collector.write_trace(args.trace)
        print(f"wrote {args.trace}", file=sys.stderr)
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    """The self-check: protocol durability + determinism + identity."""
    machines = ["a", "b-slow"]
    failures: List[str] = []
    checks = 0

    def check(label: str, ok: bool) -> None:
        nonlocal checks
        checks += 1
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {label}")
        if not ok:
            failures.append(label)

    for machine_key in machines:
        for workload_name in sorted(WORKLOADS):
            workload = _build_workload(workload_name)
            crash_at = _crash_instruction(workload, 0.5, MACHINES[machine_key]().line_size)
            print(f"{workload_name} on {machine_key} (crash at instr {crash_at}):")

            # 1. Protocol on (clean + fence before ack): nothing acked is lost.
            report = _run_one(
                workload_name, machine_key, PrestoreMode.CLEAN, crash_at, True, args.seed
            )
            recovery = report.recovery or {}
            check("crashed at the plan's boundary", report.crashed)
            check("clean+fence protocol: recovery ok", bool(recovery.get("ok")))

            # 2. Baseline (ack without persist): the crash must cost something —
            #    that lost data *is* the vulnerable window pre-stores shrink.
            baseline = _run_one(
                workload_name, machine_key, PrestoreMode.NONE, crash_at, True, args.seed
            )
            base_recovery = baseline.recovery or {}
            check(
                "unsafe baseline: crash loses acked data",
                int(base_recovery.get("lost_count", 0)) > 0,
            )

            # 3. Determinism: same plan + seed => bit-identical report JSON.
            again = _run_one(
                workload_name, machine_key, PrestoreMode.CLEAN, crash_at, True, args.seed
            )
            check("deterministic report JSON", again.to_json() == report.to_json())

            # 4. Empty plan is the identity: harness result == plain run.
            plain_workload = _build_workload(workload_name)
            plain = plain_workload.run(
                MACHINES[machine_key](),
                _patches_for(plain_workload, PrestoreMode.CLEAN),
                seed=args.seed,
            ).run
            empty = _run_one(workload_name, machine_key, PrestoreMode.CLEAN, None, True, args.seed)
            check("empty plan: RunResult JSON identical", empty.result.to_json() == plain.to_json())

    print(f"{checks} checks, {len(failures)} failures")
    if failures:
        for name in failures:
            print(f"FAILED: {name}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault injection and crash-consistency checks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one faulted run, report as JSON")
    run.add_argument("--workload", default="kvpersist", help=f"one of {sorted(WORKLOADS)}")
    run.add_argument("--machine", default="a", help=f"one of {sorted(MACHINES)}")
    run.add_argument("--mode", default="clean", choices=[m.value for m in PrestoreMode])
    run.add_argument("--crash-at-instr", type=int, default=None)
    run.add_argument(
        "--crash-frac",
        type=float,
        default=None,
        help="crash this fraction of the way through the op stream",
    )
    run.add_argument(
        "--no-adr",
        action="store_true",
        help="media-only persistence domain (open combiner entries are lost)",
    )
    run.add_argument("--seed", type=int, default=1234)
    run.add_argument("--json", default=None, help="also write the full report here")
    run.add_argument("--full-image", action="store_true", help="print per-line version maps")
    run.add_argument(
        "--trace", default=None, help="write a Perfetto trace with fault instant markers"
    )
    run.add_argument("--verbose", action="store_true")

    matrix = sub.add_parser("matrix", help="crash-consistency self-check (the CI job)")
    matrix.add_argument("--seed", type=int, default=1234)
    matrix.add_argument("--verbose", action="store_true")

    args = parser.parse_args(argv)
    if getattr(args, "verbose", False):
        basic_config()

    if args.command == "run":
        return _cmd_run(args)
    return _cmd_matrix(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
