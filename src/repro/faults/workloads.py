"""Crash-consistency workloads: persist protocols under the fault harness.

Both workloads acknowledge operations through a
:class:`~repro.faults.recovery.DurabilityLog` the harness checks after a
crash.  The pre-store mode *is* the persistence protocol knob:

``none``
    Ack straight after the stores — the unsafe baseline.  Whatever the
    caches still hold at the crash is lost; the recovery check reports
    the damage, which is exactly the crash-vulnerable dirty window the
    ``faults_window`` experiment measures.
``clean``
    ``prestore(CLEAN)`` (clwb) the data, fence, then ack — the paper's
    persist protocol.  Every acked operation must survive any crash on
    an ADR device.
``demote``
    Demote + fence: makes the data *visible* (pushed to the point of
    unification) but not durable — demotion never leaves the cache
    hierarchy.  Included deliberately: visibility is not persistence.
``skip``
    Non-temporal stores + fence: the data bypasses the caches entirely
    and is accepted by the device before the ack.

Acks execute at true event boundaries: generator code between ``yield``
statements runs after the previously yielded event completed, so a
record's versions are snapshotted only once its fence has executed.
Threads own disjoint key/log slices, so version snapshots never race.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.core.prestore import PatchConfig, PatchSite, PrestoreMode
from repro.errors import WorkloadError
from repro.faults.recovery import DurabilityLog
from repro.sim.event import Event
from repro.workloads.base import Workload
from repro.workloads.memapi import Program, ThreadCtx

__all__ = ["KVPersistWorkload", "LogAppendWorkload"]


def _lines_of(addr: int, size: int, line_size: int) -> List[int]:
    first = addr // line_size
    last = (addr + max(size, 1) - 1) // line_size
    return list(range(first, last + 1))


class KVPersistWorkload(Workload):
    """Persistent KV store front: put = write value slot, persist, ack.

    Each thread owns a disjoint slice of the key space and rewrites
    seeded-random slots within it; the recovery invariant is that every
    acknowledged put's value is readable after a crash (``kv`` check).
    """

    name = "kvpersist"
    recovery_kind = "kv"

    SITE = PatchSite(
        name="kvpersist.value",
        function="kv_put",
        file="kvpersist.c",
        line=7,
        description="the just-written value slot, persisted before the ack",
    )

    def __init__(
        self,
        keys: int = 64,
        value_size: int = 256,
        operations: int = 160,
        threads: int = 1,
        compute_per_op: int = 0,
    ) -> None:
        if keys <= 0 or value_size <= 0 or operations <= 0 or threads <= 0:
            raise WorkloadError("kvpersist parameters must be positive")
        if threads > keys:
            raise WorkloadError("kvpersist needs at least one key per thread")
        self.keys = keys
        self.value_size = value_size
        self.operations = operations
        self.threads = threads
        self.compute_per_op = compute_per_op
        self.durability_log = DurabilityLog()

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def events_per_op(
        self, line_size: int = 64, mode: PrestoreMode = PrestoreMode.CLEAN
    ) -> int:
        """Events one put issues under ``mode`` (for crash placement)."""
        lines = max(1, -(-self.value_size // line_size))
        extra = 1 if mode.op is not None else 0  # prestore
        extra += 1 if mode is not PrestoreMode.NONE else 0  # fence
        extra += 1 if self.compute_per_op else 0
        return lines + extra

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        mode = patches.mode(self.SITE.name)
        per_thread = max(1, self.operations // self.threads)
        keys_per_thread = self.keys // self.threads
        for tid in range(self.threads):
            program.spawn(self._body, program, mode, tid, keys_per_thread, per_thread)

    def _body(
        self,
        t: ThreadCtx,
        program: Program,
        mode: PrestoreMode,
        tid: int,
        nkeys: int,
        operations: int,
    ) -> Iterator[Event]:
        values = t.alloc(nkeys * self.value_size, label=f"kv_values_t{tid}")
        nontemporal = mode is PrestoreMode.SKIP
        line_size = t.line_size
        log = self.durability_log
        device = program.machine.device
        with t.function("kv_put", file="kvpersist.c", line=3):
            for _ in range(operations):
                k = t.rng.randrange(nkeys)
                addr = values.addr(k * self.value_size)
                yield from t.write_block(addr, self.value_size, nontemporal=nontemporal)
                if mode.op is not None:
                    yield t.prestore(addr, self.value_size, mode.op)
                if mode is not PrestoreMode.NONE:
                    yield t.fence()
                if self.compute_per_op:
                    yield t.compute(self.compute_per_op)
                # The put returns to its client here — only now is the
                # operation "acknowledged persisted".
                log.ack(f"t{tid}/k{k}", _lines_of(addr, self.value_size, line_size), device)
                program.add_work(1)


class LogAppendWorkload(Workload):
    """Sequential write-ahead log: append record, persist, ack.

    A single writer appends fixed-size records; recovery must find a
    durable *prefix* of the acked sequence (``prefix`` check).  This is
    the listing-style pattern the paper's clwb/sfence discussion covers:
    without cleaning, eviction order scrambles which records reach the
    medium, so a crash leaves holes recovery has to truncate.
    """

    name = "logappend"
    recovery_kind = "prefix"

    SITE = PatchSite(
        name="logappend.record",
        function="log_append",
        file="logappend.c",
        line=5,
        description="the just-appended record, persisted before the ack",
    )

    def __init__(self, record_size: int = 256, records: int = 200) -> None:
        if record_size <= 0 or records <= 0:
            raise WorkloadError("logappend parameters must be positive")
        self.record_size = record_size
        self.records = records
        self.durability_log = DurabilityLog()

    def patch_sites(self) -> Sequence[PatchSite]:
        return (self.SITE,)

    def events_per_op(
        self, line_size: int = 64, mode: PrestoreMode = PrestoreMode.CLEAN
    ) -> int:
        lines = max(1, -(-self.record_size // line_size))
        extra = 1 if mode.op is not None else 0
        extra += 1 if mode is not PrestoreMode.NONE else 0
        return lines + extra

    def spawn(self, program: Program, patches: PatchConfig) -> None:
        mode = patches.mode(self.SITE.name)
        program.spawn(self._body, program, mode)

    def _body(self, t: ThreadCtx, program: Program, mode: PrestoreMode) -> Iterator[Event]:
        log_region = t.alloc(self.records * self.record_size, label="wal")
        nontemporal = mode is PrestoreMode.SKIP
        line_size = t.line_size
        log = self.durability_log
        device = program.machine.device
        with t.function("log_append", file="logappend.c", line=2):
            for i in range(self.records):
                addr = log_region.addr(i * self.record_size)
                yield from t.write_block(addr, self.record_size, nontemporal=nontemporal)
                if mode.op is not None:
                    yield t.prestore(addr, self.record_size, mode.op)
                if mode is not PrestoreMode.NONE:
                    yield t.fence()
                log.ack(f"rec{i}", _lines_of(addr, self.record_size, line_size), device)
                program.add_work(1)
