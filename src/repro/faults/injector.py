"""Fault injection: the crash trigger and the persistence-tracking device.

Two cooperating pieces realise a :class:`~repro.faults.plan.FaultPlan`:

* :class:`FaultInjector` wraps ``machine.step`` with a pre-event hook.
  Registering as an observer (with ``accepts_streams = False``) forces
  the machine to unroll batched STREAM events through ``step``, so the
  hook sees every individual access exactly as the reference vocabulary
  would — crash points land at true event boundaries on both the fast
  and reference interpreters.  The hook bumps per-line store version
  counters *before* the store executes (so a non-temporal store's
  device writeback observes its own version) and raises
  :class:`CrashSignal` when the plan's crash point is reached.

* :class:`FaultDevice` replaces the machine's
  :class:`~repro.sim.memory.MemoryDevice` and tracks, per cache line,
  which store version has been *accepted* (reached a write-combiner
  entry — Optane's ADR persistence domain) and which is *media-committed*
  (its combiner entry closed).  The
  :attr:`~repro.sim.memory.WriteCombiner.on_close` hook tells it the
  exact moment an entry closes.  It also injects the plan's transient
  read faults and degraded-bandwidth phases.

Timing side effects of the tracking itself are zero: the device delegates
all accounting to the base class and only adds bookkeeping, so a run
under an *empty* plan never constructs these objects at all and stays
bit-identical to a plain run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import BandwidthPhase, FaultPlan
from repro.sim.event import Event, EventKind
from repro.sim.machine import Machine
from repro.sim.memory import DeviceSpec, MemoryDevice

__all__ = ["CrashSignal", "FaultDevice", "FaultInjector"]


class CrashSignal(Exception):
    """Control-flow signal: simulated power failed at an event boundary.

    Raised out of the scheduler loop by :class:`FaultInjector`; the
    harness catches it, snapshots partial statistics and captures the
    persistent image.  Not a :class:`~repro.errors.ReproError` — it is
    not a failure of the simulation, it *is* the simulation.
    """

    def __init__(self, core_id: int, cycle: float, instruction: int) -> None:
        super().__init__(
            f"simulated power failure on core {core_id} at cycle {cycle:.0f} "
            f"(instruction {instruction})"
        )
        self.core_id = core_id
        self.cycle = cycle
        self.instruction = instruction


class FaultDevice(MemoryDevice):
    """A :class:`MemoryDevice` that tracks durability and injects faults."""

    def __init__(self, spec: DeviceSpec, plan: FaultPlan, line_size: int) -> None:
        super().__init__(spec)
        self.plan = plan
        self.line_size = line_size
        #: line -> latest version the program stored (injector-bumped).
        self.line_versions: Dict[int, int] = {}
        #: line -> newest version accepted into the combiner (ADR domain).
        self.accepted_versions: Dict[int, int] = {}
        #: line -> newest version whose combiner entry closed to media.
        self.media_versions: Dict[int, int] = {}
        #: open combiner entries: block -> {line: accepted version}.
        self.pending_blocks: Dict[int, Dict[int, int]] = {}
        self.combiner.on_close = self._promote_block
        self._read_index = 0
        self._read_faults = {f.at_read: f for f in plan.read_faults}
        self._phases: Tuple[BandwidthPhase, ...] = plan.bandwidth_phases
        self._phases_hit: List[bool] = [False] * len(self._phases)
        self.read_faults_injected = 0
        self.degraded_accesses = 0
        #: (cycle, kind, detail) markers for the obs trace/log.
        self.fault_events: List[Tuple[float, str, str]] = []

    # -- version bookkeeping -------------------------------------------------

    def bump_versions(self, lines: "range | List[int]") -> None:
        """A store to ``lines`` is about to execute (injector pre-hook)."""
        versions = self.line_versions
        for line in lines:
            versions[line] = versions.get(line, 0) + 1

    def _promote_block(self, block: int) -> None:
        """A combiner entry closed: its pending bytes are media-durable."""
        pending = self.pending_blocks.pop(block, None)
        if not pending:
            return
        media = self.media_versions
        for line, version in pending.items():
            if media.get(line, 0) < version:
                media[line] = version

    # -- faulty/tracked device operations ------------------------------------

    def write_back(self, addr: int, size: int, now: float) -> float:
        # Register acceptance *before* delegating: the combiner may close
        # the very entry this writeback opens (capacity-1 thrash), and the
        # on_close callback must already see these lines as pending.
        first = addr // self.line_size
        last = (addr + max(size, 1) - 1) // self.line_size
        gran = self.spec.internal_granularity
        for line in range(first, last + 1):
            version = self.line_versions.get(line, 0)
            if self.accepted_versions.get(line, 0) < version:
                self.accepted_versions[line] = version
            block = (line * self.line_size) // gran
            entry = self.pending_blocks.setdefault(block, {})
            if entry.get(line, 0) < version:
                entry[line] = version
        return super().write_back(addr, size, now)

    def read(self, addr: int, size: int, now: float) -> float:
        self._read_index += 1
        fault = self._read_faults.get(self._read_index)
        done = super().read(addr, size, now)
        if fault is not None:
            self.read_faults_injected += 1
            self.fault_events.append(
                (now, "read_fault", f"read #{fault.at_read}: +{fault.extra_latency:g} cycles")
            )
            done += fault.extra_latency
        return done

    def _media_occupancy_bytes(self, now: float, nbytes: int) -> int:
        # Every media-consuming access routes through this seam — demand
        # reads, combiner closes, and the final flush — so a degraded
        # phase slows *live* traffic, not just the drain (its window is
        # simulated time, which under open-loop load is arrival time).
        phase = self._phase_at(now)
        if phase is not None and nbytes > 0:
            self.degraded_accesses += 1
            nbytes = int(nbytes * phase.slowdown)
        return nbytes

    def _phase_at(self, now: float) -> Optional[BandwidthPhase]:
        for i, phase in enumerate(self._phases):
            if phase.start_cycle <= now < phase.end_cycle:
                if not self._phases_hit[i]:
                    self._phases_hit[i] = True
                    self.fault_events.append(
                        (
                            now,
                            "degraded_phase",
                            f"media bandwidth /{phase.slowdown:g} until "
                            f"cycle {phase.end_cycle:g}",
                        )
                    )
                return phase
        return None


class FaultInjector:
    """Observer + ``step`` pre-hook realising a plan's crash point.

    The observer registration is what forces stream unrolling (fidelity:
    crash points are per-access); the actual work happens in the wrapped
    ``machine.step``, which runs *before* each event executes.
    """

    #: Per-access records required — the machine must unroll streams.
    accepts_streams = False

    def __init__(self, plan: FaultPlan, device: FaultDevice) -> None:
        self.plan = plan
        self.device = device
        self.machine: Optional[Machine] = None
        self.crashed = False
        self._orig_step = None

    def install(self, machine: Machine) -> None:
        """Attach to ``machine``: observer + shadowed ``step``."""
        self.machine = machine
        machine.attach_observer(self)
        self._orig_step = machine.step
        machine.step = self._wrapped_step  # type: ignore[method-assign]

    def _wrapped_step(self, core, event: Event) -> None:
        self._before_event(core, event)
        assert self._orig_step is not None
        self._orig_step(core, event)

    def _before_event(self, core, event: Event) -> None:
        machine = self.machine
        assert machine is not None
        crash = self.plan.crash
        if crash is not None and not self.crashed:
            if (
                crash.at_instruction is not None
                and machine.instruction_count >= crash.at_instruction
            ) or (crash.at_cycle is not None and core.clock >= crash.at_cycle):
                self.crashed = True
                self.device.fault_events.append(
                    (core.clock, "crash", f"power failure on core {core.stats.core_id}")
                )
                raise CrashSignal(core.stats.core_id, core.clock, machine.instruction_count)
        kind = event.kind
        if kind is EventKind.WRITE or kind is EventKind.ATOMIC:
            self.device.bump_versions(event.lines(machine.line_size))

    # -- observer interface (bookkeeping only) -------------------------------

    def record(self, core_id: int, event: Event, instr_index: int, cycles: float) -> None:
        """All real work happens pre-event; nothing to do post-event."""
