"""The fault harness: run a workload under a plan, crash, check recovery.

:func:`run_with_faults` is the subsystem's one entry point (the CLI, the
runner's :class:`~repro.runner.cells.Cell` fault branch and the
``faults_window`` experiment all call it).  It builds the program the
same way :meth:`Workload.run` does, but — for a non-empty plan — swaps
the machine's device for a :class:`~repro.faults.injector.FaultDevice`
and installs a :class:`~repro.faults.injector.FaultInjector` before
spawning the workload.  A crash surfaces as
:class:`~repro.faults.injector.CrashSignal`; the harness then snapshots
partial statistics via :meth:`Machine.abort` (no drain: nothing else
reaches the medium), captures the
:class:`~repro.faults.image.PersistentImage` and replays the workload's
durability log against it.

Under an *empty* plan nothing is swapped or attached and the run is the
plain :meth:`Workload.run` computation — bit-identical results, fast
path included.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.prestore import PatchConfig
from repro.faults.image import PersistentImage
from repro.faults.injector import CrashSignal, FaultDevice, FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import check_durability
from repro.obs.log import get_logger
from repro.sim.machine import Machine, MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload
from repro.workloads.memapi import Program

__all__ = ["FaultRunReport", "run_with_faults", "capture_image"]

_log = get_logger("faults")


@dataclass
class FaultRunReport:
    """Everything one faulted run produced."""

    workload: str
    machine: str
    seed: int
    patch_summary: str
    plan: Dict[str, object]
    crashed: bool
    crash_core: Optional[int]
    crash_cycle: Optional[float]
    crash_instruction: Optional[int]
    read_faults_injected: int
    degraded_accesses: int
    image: Optional[PersistentImage]
    recovery: Optional[Dict[str, object]]
    result: RunResult

    def to_dict(self, include_image: bool = True) -> Dict[str, object]:
        """JSON-stable dict (sorted keys at serialisation time)."""
        doc: Dict[str, object] = {
            "workload": self.workload,
            "machine": self.machine,
            "seed": self.seed,
            "patch_summary": self.patch_summary,
            "plan": self.plan,
            "crashed": self.crashed,
            "crash_core": self.crash_core,
            "crash_cycle": self.crash_cycle,
            "crash_instruction": self.crash_instruction,
            "read_faults_injected": self.read_faults_injected,
            "degraded_accesses": self.degraded_accesses,
            "image_summary": None if self.image is None else self.image.summary(),
            "recovery": self.recovery,
        }
        if include_image:
            doc["image"] = None if self.image is None else self.image.to_dict()
        return doc

    def to_json(self, include_image: bool = True) -> str:
        return json.dumps(self.to_dict(include_image=include_image), sort_keys=True)


def capture_image(
    machine: Machine,
    device: FaultDevice,
    plan: FaultPlan,
    crashed: bool,
    crash_cycle: float,
    crash_instruction: int,
) -> PersistentImage:
    """Freeze the media-visible state plus everything the crash loses.

    Call *after* the run ended (``finish()`` for clean termination —
    its drain/flush legitimately promotes bytes — or ``abort()`` after a
    crash, which promotes nothing).
    """
    store_buffer_lines = [sorted(core.store_buffer.pending_lines()) for core in machine.cores]
    dirty: set = set()
    for level in machine.hierarchy.levels:
        for line in level.resident_lines():
            if level.is_dirty(line):
                dirty.add(line)
    return PersistentImage(
        machine_name=machine.spec.name,
        line_size=machine.line_size,
        adr=plan.combiner_persistent,
        crashed=crashed,
        crash_cycle=crash_cycle,
        crash_instruction=crash_instruction,
        line_versions=dict(device.line_versions),
        accepted_versions=dict(device.accepted_versions),
        media_versions=dict(device.media_versions),
        store_buffer_lines=store_buffer_lines,
        dirty_cache_lines=sorted(dirty),
        combiner_pending={
            block: sorted(entry) for block, entry in device.pending_blocks.items()
        },
    )


def run_with_faults(
    workload: Workload,
    spec: MachineSpec,
    plan: FaultPlan,
    patches: Optional[PatchConfig] = None,
    seed: int = 1234,
    sanitize: bool = False,
    obs: "bool | object" = False,
    streams: Optional[bool] = None,
) -> FaultRunReport:
    """Run ``workload`` on ``spec`` under ``plan``; returns the report.

    Deterministic: the same (workload parameters, spec, plan, seed)
    produce bit-identical report JSON in any process.  With an empty
    plan the computation — and its ``RunResult`` JSON — is exactly the
    plain :meth:`Workload.run` one.
    """
    patches = patches or PatchConfig.baseline()
    program = Program(spec, seed=seed, sanitize=sanitize, obs=obs, streams=streams)
    machine = program.machine
    device: Optional[FaultDevice] = None
    injector: Optional[FaultInjector] = None
    if not plan.is_empty():
        device = FaultDevice(spec.device, plan, line_size=spec.line_size)
        machine.device = device
        injector = FaultInjector(plan, device)
        injector.install(machine)
    workload.spawn(program, patches)
    crash: Optional[CrashSignal] = None
    try:
        result = program.run()
    except CrashSignal as signal:
        crash = signal
        result = machine.abort()
        result.work_items = program.work_items
        if program.sanitizer is not None:
            diagnostics = getattr(program.sanitizer, "diagnostics", None)
            if diagnostics is not None:
                result.diagnostics = list(diagnostics())
    result.extra.update(workload.result_extras())
    image: Optional[PersistentImage] = None
    recovery: Optional[Dict[str, object]] = None
    if device is not None:
        image = capture_image(
            machine,
            device,
            plan,
            crashed=crash is not None,
            crash_cycle=crash.cycle if crash is not None else result.cycles,
            crash_instruction=(
                crash.instruction if crash is not None else machine.instruction_count
            ),
        )
        kind = getattr(workload, "recovery_kind", None)
        if kind:
            recovery = check_durability(
                kind, getattr(workload, "durability_log", None), image
            )
        _publish_obs(program, device, crash)
    enabled = patches.enabled_sites()
    summary = ", ".join(f"{k}={v}" for k, v in sorted(enabled.items())) or "baseline"
    report = FaultRunReport(
        workload=workload.name,
        machine=spec.name,
        seed=seed,
        patch_summary=summary,
        plan=plan.to_dict(),
        crashed=crash is not None,
        crash_core=crash.core_id if crash is not None else None,
        crash_cycle=crash.cycle if crash is not None else None,
        crash_instruction=crash.instruction if crash is not None else None,
        read_faults_injected=device.read_faults_injected if device is not None else 0,
        degraded_accesses=device.degraded_accesses if device is not None else 0,
        image=image,
        recovery=recovery,
        result=result,
    )
    if crash is not None and image is not None:
        _log.info(
            "crash at cycle %.0f (instr %d): %d/%d written lines durable, recovery %s",
            crash.cycle,
            crash.instruction,
            len(image.line_versions) - len(image.lost_lines()),
            len(image.line_versions),
            "n/a" if recovery is None else ("ok" if recovery["ok"] else "FAILED"),
        )
    return report


def _publish_obs(program: Program, device: FaultDevice, crash: Optional[CrashSignal]) -> None:
    """Mirror fault/crash events into the attached obs collector's trace."""
    collector = program.obs
    if collector is None:
        return
    trace = getattr(collector, "trace", None)
    if trace is None:
        return
    for cycle, kind, detail in device.fault_events:
        trace.instant(f"fault.{kind}", cycle, args={"detail": detail})
        _log.info("fault event @%.0f %s: %s", cycle, kind, detail)
