"""Fault plans: the seeded, picklable description of what goes wrong.

A :class:`FaultPlan` is plain frozen data — like
:class:`~repro.runner.cells.Cell` it crosses process boundaries and
feeds the cache key, so the same plan must mean the same faults on
every worker.  It can describe:

* one **crash point** (:class:`CrashPoint`): power fails at an event
  boundary, selected by retired-instruction count or by core clock;
* **transient read faults** (:class:`ReadFault`): the Nth device read
  pays a recovery penalty (on-die ECC retry / media re-read);
* **degraded-bandwidth phases** (:class:`BandwidthPhase`): windows of
  simulated time where the media is partly busy with internal work
  (refresh, wear levelling, thermal throttling), multiplying the
  occupancy of every access;
* the **persistence domain** (:attr:`FaultPlan.combiner_persistent`):
  whether bytes accepted into the device's write combiner survive power
  failure (ADR-style, Machine A's Optane DIMMs) or only bytes the media
  committed do (the conservative model for cache-coherent FPGA / CXL
  devices without capacitor backing).

:meth:`FaultPlan.generate` derives all of it deterministically from a
seed, so sweeps can scatter faults without hand-placing each one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["CrashPoint", "ReadFault", "BandwidthPhase", "FaultPlan"]


@dataclass(frozen=True)
class CrashPoint:
    """Where power fails.  Exactly one selector should be set."""

    #: Crash when the machine-wide retired-instruction counter reaches
    #: this value (checked at event boundaries, before the event runs).
    at_instruction: Optional[int] = None
    #: Crash when the executing core's clock reaches this cycle count.
    at_cycle: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {"at_instruction": self.at_instruction, "at_cycle": self.at_cycle}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CrashPoint":
        cycle = data.get("at_cycle")
        instr = data.get("at_instruction")
        return cls(
            at_instruction=None if instr is None else int(instr),  # type: ignore[arg-type]
            at_cycle=None if cycle is None else float(cycle),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ReadFault:
    """The ``at_read``-th device read (1-based) pays a recovery penalty."""

    at_read: int
    extra_latency: float = 500.0

    def to_dict(self) -> Dict[str, object]:
        return {"at_read": self.at_read, "extra_latency": self.extra_latency}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReadFault":
        return cls(at_read=int(data["at_read"]), extra_latency=float(data["extra_latency"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class BandwidthPhase:
    """A window of degraded device bandwidth.

    While ``start_cycle <= now < end_cycle`` every access's media
    occupancy is multiplied by ``slowdown`` (the extra share models
    internal maintenance traffic stealing the medium).
    """

    start_cycle: float
    end_cycle: float
    slowdown: float = 2.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BandwidthPhase":
        return cls(
            start_cycle=float(data["start_cycle"]),  # type: ignore[arg-type]
            end_cycle=float(data["end_cycle"]),  # type: ignore[arg-type]
            slowdown=float(data["slowdown"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, as frozen data."""

    crash: Optional[CrashPoint] = None
    read_faults: Tuple[ReadFault, ...] = field(default=())
    bandwidth_phases: Tuple[BandwidthPhase, ...] = field(default=())
    #: True: bytes accepted by the device's write combiner are inside the
    #: persistence domain (ADR); False: only media-committed bytes are.
    combiner_persistent: bool = True
    #: Provenance when built by :meth:`generate`; informational only.
    seed: Optional[int] = None

    def is_empty(self) -> bool:
        """True when the plan injects nothing (the identity plan)."""
        return not (self.crash or self.read_faults or self.bandwidth_phases)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "crash": None if self.crash is None else self.crash.to_dict(),
            "read_faults": [f.to_dict() for f in self.read_faults],
            "bandwidth_phases": [p.to_dict() for p in self.bandwidth_phases],
            "combiner_persistent": self.combiner_persistent,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        crash = data.get("crash")
        seed = data.get("seed")
        return cls(
            crash=None if crash is None else CrashPoint.from_dict(crash),  # type: ignore[arg-type]
            read_faults=tuple(ReadFault.from_dict(f) for f in data.get("read_faults", ())),  # type: ignore[union-attr]
            bandwidth_phases=tuple(
                BandwidthPhase.from_dict(p) for p in data.get("bandwidth_phases", ())  # type: ignore[union-attr]
            ),
            combiner_persistent=bool(data.get("combiner_persistent", True)),
            seed=None if seed is None else int(seed),  # type: ignore[arg-type]
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def crash_at(cls, instruction: int, combiner_persistent: bool = True) -> "FaultPlan":
        """A plan that only crashes, at the given instruction count."""
        return cls(
            crash=CrashPoint(at_instruction=int(instruction)),
            combiner_persistent=combiner_persistent,
        )

    @classmethod
    def crash_at_cycle(cls, cycle: float, combiner_persistent: bool = True) -> "FaultPlan":
        """A plan that only crashes, at the given core clock cycle.

        The natural selector for open-loop serving runs, where the
        interesting crash points are expressed against arrival time
        (simulated cycles), not instruction counts.
        """
        return cls(
            crash=CrashPoint(at_cycle=float(cycle)),
            combiner_persistent=combiner_persistent,
        )

    @classmethod
    def degraded_window(
        cls,
        start_cycle: float,
        length: float,
        slowdown: float = 2.0,
        combiner_persistent: bool = True,
    ) -> "FaultPlan":
        """A plan with one degraded-bandwidth phase and nothing else.

        ``[start_cycle, start_cycle + length)`` in simulated time — which
        for open-loop traffic is arrival time, so the phase lands on a
        known slice of the offered load.
        """
        start = float(start_cycle)
        return cls(
            bandwidth_phases=(
                BandwidthPhase(
                    start_cycle=start, end_cycle=start + float(length), slowdown=float(slowdown)
                ),
            ),
            combiner_persistent=combiner_persistent,
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        crash_window: Optional[Tuple[int, int]] = None,
        read_fault_count: int = 0,
        read_window: Tuple[int, int] = (1, 2000),
        phase_count: int = 0,
        phase_window: Tuple[float, float] = (0.0, 200_000.0),
        phase_length: float = 20_000.0,
        slowdown: float = 2.0,
        combiner_persistent: bool = True,
    ) -> "FaultPlan":
        """Derive a plan deterministically from ``seed``.

        ``crash_window`` picks the crash instruction uniformly inside
        ``[lo, hi)``; ``read_fault_count`` read faults are scattered over
        ``read_window`` (1-based read indices); ``phase_count`` degraded
        phases of ``phase_length`` cycles start inside ``phase_window``.
        """
        rng = random.Random(seed)
        crash = None
        if crash_window is not None:
            lo, hi = crash_window
            crash = CrashPoint(at_instruction=rng.randrange(int(lo), int(hi)))
        reads = tuple(
            ReadFault(at_read=idx)
            for idx in sorted(rng.sample(range(read_window[0], read_window[1]), read_fault_count))
        )
        phases = []
        for _ in range(phase_count):
            start = rng.uniform(phase_window[0], phase_window[1])
            phases.append(
                BandwidthPhase(
                    start_cycle=round(start, 3),
                    end_cycle=round(start + phase_length, 3),
                    slowdown=slowdown,
                )
            )
        phases.sort(key=lambda p: p.start_cycle)
        return cls(
            crash=crash,
            read_faults=reads,
            bandwidth_phases=tuple(phases),
            combiner_persistent=combiner_persistent,
            seed=seed,
        )
