"""The persistent image: what the medium holds at the moment of a crash.

Durability in this simulator is *version*-based.  Every store to a cache
line bumps the line's version counter (the injector does this at the
event boundary, before the store executes); the device tracker records
which version of each line has been

* **accepted** — handed to the device and sitting in a write-combiner
  entry (Optane's ADR persistence domain: capacitors guarantee these
  bytes reach the media on power fail), and
* **media-committed** — written by the media itself when the combiner
  entry closed.

The persistent image is the pair of those maps, plus everything the
crash *loses*: stores parked in CPU store buffers (TSO: visibility
round trips in flight; weak: possibly not even started), dirty lines
still resident in the caches, and the contents of open combiner entries
when the device is not capacitor-backed.  Both machine models reduce to
the same rule — a byte is durable iff it travelled past the point the
model's fence/clean semantics push it to — because the tracking happens
at the device boundary, below both visibility models.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["PersistentImage"]


def _int_key_dict(data: Dict[int, int]) -> Dict[str, int]:
    return {str(k): data[k] for k in sorted(data)}


def _parse_int_keys(data: Dict[str, int]) -> Dict[int, int]:
    return {int(k): int(v) for k, v in data.items()}


@dataclass
class PersistentImage:
    """Media-visible state captured at a crash (or at clean shutdown)."""

    machine_name: str
    line_size: int
    #: Whether write-combiner contents count as durable (ADR domain).
    adr: bool
    crashed: bool
    crash_cycle: float
    crash_instruction: int
    #: line -> latest version the program wrote (the ground truth).
    line_versions: Dict[int, int] = field(default_factory=dict)
    #: line -> newest version accepted into the device's buffers.
    accepted_versions: Dict[int, int] = field(default_factory=dict)
    #: line -> newest version the media committed (combiner entry closed).
    media_versions: Dict[int, int] = field(default_factory=dict)
    #: Per-core lines whose stores sat in the store buffer at the crash.
    store_buffer_lines: List[List[int]] = field(default_factory=list)
    #: Lines dirty somewhere in the cache hierarchy at the crash.
    dirty_cache_lines: List[int] = field(default_factory=list)
    #: Open combiner entries at the crash: block -> lines pending in it.
    combiner_pending: Dict[int, List[int]] = field(default_factory=dict)

    # -- durability queries --------------------------------------------------

    def durable_version(self, line: int) -> int:
        """The newest version of ``line`` that survives the crash."""
        media = self.media_versions.get(line, 0)
        if not self.adr:
            return media
        return max(media, self.accepted_versions.get(line, 0))

    def is_durable(self, line: int, version: int = 0) -> bool:
        """Whether ``version`` (default: the latest written) survived."""
        required = version or self.line_versions.get(line, 0)
        return self.durable_version(line) >= required

    def lost_lines(self) -> List[int]:
        """Lines whose latest written version did not survive, sorted."""
        return sorted(
            line
            for line, version in self.line_versions.items()
            if self.durable_version(line) < version
        )

    def vulnerable_bytes(self) -> int:
        """Bytes of written-but-lost data (the crash-vulnerable window)."""
        return len(self.lost_lines()) * self.line_size

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine_name": self.machine_name,
            "line_size": self.line_size,
            "adr": self.adr,
            "crashed": self.crashed,
            "crash_cycle": self.crash_cycle,
            "crash_instruction": self.crash_instruction,
            "line_versions": _int_key_dict(self.line_versions),
            "accepted_versions": _int_key_dict(self.accepted_versions),
            "media_versions": _int_key_dict(self.media_versions),
            "store_buffer_lines": [sorted(lines) for lines in self.store_buffer_lines],
            "dirty_cache_lines": sorted(self.dirty_cache_lines),
            "combiner_pending": {
                str(block): sorted(self.combiner_pending[block])
                for block in sorted(self.combiner_pending)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PersistentImage":
        return cls(
            machine_name=str(data["machine_name"]),
            line_size=int(data["line_size"]),  # type: ignore[arg-type]
            adr=bool(data["adr"]),
            crashed=bool(data["crashed"]),
            crash_cycle=float(data["crash_cycle"]),  # type: ignore[arg-type]
            crash_instruction=int(data["crash_instruction"]),  # type: ignore[arg-type]
            line_versions=_parse_int_keys(data.get("line_versions", {})),  # type: ignore[arg-type]
            accepted_versions=_parse_int_keys(data.get("accepted_versions", {})),  # type: ignore[arg-type]
            media_versions=_parse_int_keys(data.get("media_versions", {})),  # type: ignore[arg-type]
            store_buffer_lines=[list(map(int, lines)) for lines in data.get("store_buffer_lines", [])],  # type: ignore[union-attr]
            dirty_cache_lines=list(map(int, data.get("dirty_cache_lines", []))),  # type: ignore[arg-type]
            combiner_pending={
                int(block): list(map(int, lines))
                for block, lines in data.get("combiner_pending", {}).items()  # type: ignore[union-attr]
            },
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def digest(self) -> str:
        """Stable content hash — what the determinism tests compare."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]

    def summary(self) -> Dict[str, object]:
        """Small human/report-facing digest of the image."""
        lost = self.lost_lines()
        return {
            "crashed": self.crashed,
            "adr": self.adr,
            "written_lines": len(self.line_versions),
            "durable_lines": len(self.line_versions) - len(lost),
            "lost_lines": len(lost),
            "vulnerable_bytes": self.vulnerable_bytes(),
            "store_buffer_parked": sum(len(lines) for lines in self.store_buffer_lines),
            "dirty_cache_lines": len(self.dirty_cache_lines),
            "combiner_open_entries": len(self.combiner_pending),
            "digest": self.digest(),
        }
