"""repro.faults: deterministic fault injection and crash consistency.

The paper's mechanism — pre-stores controlling *when* dirty data reaches
the persistent device — implies a question it never answers directly:
what survives a crash?  This subsystem answers it:

* a seeded, picklable :class:`~repro.faults.plan.FaultPlan` describes
  crash points (event/cycle boundaries), transient read faults,
  degraded-bandwidth phases, and the persistence domain (ADR combiner
  vs media-only);
* :func:`~repro.faults.harness.run_with_faults` runs any workload under
  a plan, catches the simulated power failure, and captures the
  :class:`~repro.faults.image.PersistentImage` — what the medium holds,
  versus what was parked in store buffers, caches, and open combiner
  entries;
* :mod:`~repro.faults.recovery` replays workload durability logs
  against the image (KV: every acked key readable; logs: prefix
  durability per clwb/sfence rules);
* :class:`~repro.faults.workloads.KVPersistWorkload` and
  :class:`~repro.faults.workloads.LogAppendWorkload` implement the
  persist protocols, with the pre-store mode as the protocol knob;
* ``python -m repro.faults`` runs one faulted run or the
  crash-consistency self-check matrix (the CI job).

Runner integration: ``Cell(fault_plan=...)`` routes a cell through the
harness; the report (image digest included) lands in
``RunResult.extra["fault_report"]``, so pooled execution and the result
cache see ordinary bit-stable RunResult JSON.  An empty plan is the
identity: results are bit-identical to a plain run.

See DESIGN.md §12 for the fault model and the persistence-image
semantics on both machines.
"""

from repro.faults.harness import FaultRunReport, capture_image, run_with_faults
from repro.faults.image import PersistentImage
from repro.faults.injector import CrashSignal, FaultDevice, FaultInjector
from repro.faults.plan import BandwidthPhase, CrashPoint, FaultPlan, ReadFault
from repro.faults.recovery import AckRecord, DurabilityLog, check_durability
from repro.faults.workloads import KVPersistWorkload, LogAppendWorkload

__all__ = [
    "AckRecord",
    "BandwidthPhase",
    "CrashPoint",
    "CrashSignal",
    "DurabilityLog",
    "FaultDevice",
    "FaultInjector",
    "FaultPlan",
    "FaultRunReport",
    "KVPersistWorkload",
    "LogAppendWorkload",
    "PersistentImage",
    "ReadFault",
    "capture_image",
    "check_durability",
    "run_with_faults",
]
