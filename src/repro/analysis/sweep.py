"""Parameter-sweep helper used by examples and ad-hoc studies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List

from repro.core.prestore import PatchConfig, PrestoreMode
from repro.sim.machine import MachineSpec
from repro.sim.stats import RunResult
from repro.workloads.base import Workload

__all__ = ["SweepPoint", "sweep"]


@dataclass
class SweepPoint:
    """One (parameter value, mode) measurement."""

    parameter: object
    mode: PrestoreMode
    run: RunResult

    @property
    def cycles(self) -> float:
        return self.run.cycles_with_drain

    @property
    def write_amplification(self) -> float:
        return self.run.write_amplification


def sweep(
    make_workload: Callable[[object], Workload],
    spec: MachineSpec,
    values: Iterable[object],
    modes: Iterable[PrestoreMode] = (PrestoreMode.NONE, PrestoreMode.CLEAN),
    seed: int = 1234,
) -> List[SweepPoint]:
    """Run ``make_workload(value)`` for every value x mode combination.

    Pre-store modes are applied uniformly at every patch site the
    workload declares.
    """
    points: List[SweepPoint] = []
    for value in values:
        for mode in modes:
            workload = make_workload(value)
            config = PatchConfig.baseline()
            if mode is not PrestoreMode.NONE:
                config = PatchConfig()
                for site in workload.patch_sites():
                    config.set_mode(site.name, mode)
            result = workload.run(spec, config, seed=seed)
            points.append(SweepPoint(parameter=value, mode=mode, run=result.run))
    return points
