"""Aligned text-table rendering for reports and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows under headers, right-aligning numbers.

    >>> print(format_table(["name", "x"], [["a", 1.5], ["bb", 20]]))
    name     x
    a      1.5
    bb      20
    """
    materialised: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        materialised.append(cells)
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()]
    for raw, row in zip(materialised, materialised):
        rendered = []
        for i, cell in enumerate(row):
            numeric = cell.replace(".", "", 1).replace("-", "", 1).isdigit()
            rendered.append(cell.rjust(widths[i]) if numeric else cell.ljust(widths[i]))
        lines.append("  ".join(rendered).rstrip())
    return "\n".join(lines)
