"""perf-style store-time profiling (the Section 7.1 filter).

"Some applications spend less than 10% of their time issuing store
instructions (we used perf to get this information).  Adding pre-stores
to these applications would have no effect."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dirtbuster.sampling import SampleProfile, WRITE_INTENSIVE_APP_THRESHOLD
from repro.dirtbuster.trace import SamplingTracer
from repro.sim.machine import MachineSpec
from repro.workloads.base import Workload

__all__ = ["StoreTimeProfile", "profile_store_time"]


@dataclass
class StoreTimeProfile:
    """Application-level store-share verdict plus the top functions."""

    workload: str
    store_share: float
    write_intensive: bool
    #: (function, share of sampled stores) for the heaviest writers.
    top_functions: List[Tuple[str, float]]

    def render(self) -> str:
        lines = [
            f"{self.workload}: {100.0 * self.store_share:.1f}% of sampled accesses "
            f"are stores -> {'write-intensive' if self.write_intensive else 'not write-intensive'}"
        ]
        for function, share in self.top_functions:
            lines.append(f"  {100.0 * share:5.1f}%  {function}")
        return "\n".join(lines)


def profile_store_time(
    workload: Workload,
    spec: MachineSpec,
    sampling_period: int = 229,
    threshold: float = WRITE_INTENSIVE_APP_THRESHOLD,
    seed: int = 1234,
    top: int = 5,
) -> StoreTimeProfile:
    """Sample one run and compute the store-time share."""
    tracer = SamplingTracer(period=sampling_period)
    workload.run(spec, tracer=tracer, seed=seed)
    profile = SampleProfile.from_tracer(tracer)
    total_stores = max(1, profile.total_stores)
    tops = [
        (p.function, p.stores / total_stores)
        for p in profile.functions()[:top]
        if p.stores > 0
    ]
    return StoreTimeProfile(
        workload=workload.name,
        store_share=profile.application_store_fraction,
        write_intensive=profile.application_write_intensive(threshold),
        top_functions=tops,
    )
