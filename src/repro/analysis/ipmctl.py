"""ipmctl-style media counters (paper ref. [15]).

The paper measures write amplification "by comparing the number of 64B
cache lines evicted from the cache to the amount of data actually
written (both numbers are collected using the ipmctl tool)".  This module
exposes the simulated device's counters through the same two numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.timeline import Timeline
from repro.sim.stats import RunResult

__all__ = ["MediaCounters", "read_media_counters"]


@dataclass(frozen=True)
class MediaCounters:
    """The two ipmctl counters the paper's methodology uses."""

    #: Bytes received from the CPU (cache-line writebacks).
    bytes_received: int
    #: Bytes the medium actually wrote (after internal read-modify-write).
    media_bytes_written: int
    #: Demand-read bytes (for completeness; not used for WA).
    bytes_read: int

    @property
    def write_amplification(self) -> float:
        """Media bytes written per received byte (>=1.0 in steady state).

        NaN when nothing was received (zero-denominator convention).
        """
        if self.bytes_received == 0:
            return float("nan")
        return self.media_bytes_written / self.bytes_received

    @classmethod
    def from_timeline(cls, timeline: Timeline) -> "MediaCounters":
        """Integrate the sampled per-interval device bytes back to totals.

        The :mod:`repro.obs` cross-check: for any run these integrals
        must equal :func:`read_media_counters` of the same run's final
        ``RunResult`` exactly (the sampler's tail sample captures the
        end-of-run drain; ring-evicted samples stay counted in
        ``Timeline.cumulative``).
        """
        return cls(
            bytes_received=int(timeline.cumulative["device_bytes_received"]),
            media_bytes_written=int(timeline.cumulative["device_media_bytes_written"]),
            bytes_read=int(timeline.cumulative["device_bytes_read"]),
        )

    def render(self) -> str:
        return (
            f"MediaReads.bytes      : {self.bytes_read}\n"
            f"WriteRequests.bytes   : {self.bytes_received}\n"
            f"MediaWrites.bytes     : {self.media_bytes_written}\n"
            f"WriteAmplification    : {self.write_amplification:.2f}x"
        )


def read_media_counters(run: RunResult) -> MediaCounters:
    """Extract the ipmctl view from a finished run."""
    return MediaCounters(
        bytes_received=run.device_bytes_received,
        media_bytes_written=run.device_media_bytes_written,
        bytes_read=run.device_bytes_read,
    )
