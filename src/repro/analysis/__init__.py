"""Measurement utilities mirroring the paper's tooling.

* :mod:`repro.analysis.perf` — the ``perf``-style profile used for the
  Section 7.1 "time issuing stores" filter;
* :mod:`repro.analysis.ipmctl` — the ``ipmctl``-style media counters used
  to measure write amplification;
* :mod:`repro.analysis.sweep` — parameter-sweep helpers;
* :mod:`repro.analysis.tables` — text-table rendering.
"""

from repro.analysis.ipmctl import MediaCounters, read_media_counters
from repro.analysis.perf import StoreTimeProfile, profile_store_time
from repro.analysis.sweep import SweepPoint, sweep
from repro.analysis.tables import format_table

__all__ = [
    "MediaCounters",
    "StoreTimeProfile",
    "SweepPoint",
    "format_table",
    "profile_store_time",
    "read_media_counters",
    "sweep",
]
