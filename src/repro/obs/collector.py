"""The obs facade: one observer bundling sampler, trace, profile, metrics.

:class:`ObsCollector` follows the same opt-in pattern as
:class:`repro.sanitize.Sanitizer`: attach it with
``Program(..., obs=True)``, ``Workload.run(..., obs=True)`` or
``Machine(..., observers=[ObsCollector()])`` and it observes the run
without touching simulated time.  Off (the default) is genuinely free —
the machine then iterates an empty observer tuple, which is a single
falsy check per event.

One collector observes one run (like a Machine, single-use).  After the
run, read:

* ``collector.timeline`` — the sampled :class:`~repro.obs.timeline.Timeline`
  (also published as ``RunResult.timeline``);
* ``collector.trace`` — a :class:`~repro.obs.trace.TraceBuilder`, ready
  to ``write("out.trace.json")`` for Perfetto / ``chrome://tracing``;
* ``collector.registry`` — event/run metrics
  (:class:`~repro.obs.metrics.MetricsRegistry`);
* ``collector.profiler`` — wall-clock span stats for the simulator's
  hot loops, when constructed with ``profile=True``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.obs.log import SpanProfiler, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import TimelineSampler
from repro.obs.timeline import DEFAULT_CAPACITY, DEFAULT_INTERVAL, Timeline
from repro.obs.trace import TraceBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.event import Event
    from repro.sim.machine import Machine
    from repro.sim.stats import RunResult

__all__ = ["ObsCollector"]

_log = get_logger("collector")


class ObsCollector:
    """Fan-out observer: timeline sampling + trace building + metrics.

    ``trace=False`` skips slice collection (cheaper for long sweeps
    where only the timeline matters); ``profile=True`` additionally
    wraps the simulator's hot methods — event dispatch
    (``Machine.step``), cache lookup (``CacheHierarchy.access_line``),
    store-buffer drain (``StoreBuffer.drain``) and device writeback
    (``MemoryDevice.write_back``) — in wall-clock span timers on *this
    machine instance only*.
    """

    #: The collector needs per-access records (timeline samples weight
    #: individual events); the machine therefore unrolls batched stream
    #: events before fan-out whenever one is attached.
    accepts_streams = False

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        trace: bool = True,
        profile: bool = False,
    ) -> None:
        self.sampler = TimelineSampler(interval=interval, capacity=capacity)
        self.trace: Optional[TraceBuilder] = TraceBuilder() if trace else None
        self.profiler: Optional[SpanProfiler] = SpanProfiler() if profile else None
        self.registry = MetricsRegistry()
        self._event_counts: Dict[str, int] = {}
        self._finished = False

    @property
    def timeline(self) -> Timeline:
        return self.sampler.timeline

    # -- observer interface -------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        self.sampler.attach(machine)
        if self.trace is not None:
            self.trace.attach(machine)
        if self.profiler is not None:
            self._instrument(machine)

    def _instrument(self, machine: "Machine") -> None:
        profiler = self.profiler
        assert profiler is not None
        profiler.wrap(machine, "step", "sim.dispatch")
        profiler.wrap(machine.hierarchy, "access_line", "sim.cache_lookup")
        profiler.wrap(machine.device, "write_back", "sim.device_writeback")
        profiler.wrap(machine.device, "read", "sim.device_read")
        for core in machine.cores:
            profiler.wrap(core.store_buffer, "drain", "sim.store_drain")

    def record(self, core_id: int, event: "Event", instr_index: int, cycles: float) -> None:
        kind = event.kind.value
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        self.sampler.record(core_id, event, instr_index, cycles)
        if self.trace is not None:
            self.trace.record(core_id, event, instr_index, cycles)

    def finish(self, machine: "Machine", result: "RunResult") -> None:
        if self._finished:  # pragma: no cover - machines are single-use
            return
        self._finished = True
        self.sampler.finish(machine, result)
        if self.trace is not None:
            self.trace.finish(machine, result)
        if self.profiler is not None:
            self.profiler.unwrap_all()
        self._publish_metrics(machine, result)
        _log.debug(
            "run finished: %s cycles=%.0f samples=%d",
            result.machine_name, result.cycles, len(self.timeline),
        )

    # -- metrics ------------------------------------------------------------

    def _publish_metrics(self, machine: "Machine", result: "RunResult") -> None:
        reg = self.registry
        for kind, count in sorted(self._event_counts.items()):
            reg.counter(f"events.{kind}", help="executed events of this kind").value = float(count)
        reg.gauge("run.cycles").set(result.cycles)
        reg.gauge("run.cycles_with_drain").set(result.cycles_with_drain)
        reg.counter("run.instructions").value = float(result.instructions)
        reg.gauge("device.write_amplification").set(result.write_amplification)
        reg.counter("device.bytes_received").value = float(result.device_bytes_received)
        reg.counter("device.media_bytes_written").value = float(result.device_media_bytes_written)
        reg.counter("device.bytes_read").value = float(result.device_bytes_read)
        reg.gauge("stalls.fence_cycles").set(result.total_fence_stall_cycles)
        reg.gauge("stalls.backpressure_cycles").set(result.total_backpressure_stall_cycles)
        occupancy = reg.histogram("store_buffer.occupancy", bounds=(0, 1, 2, 4, 8, 16, 32, 56, 128))
        for sample in self.timeline:
            for occ in sample.store_buffer_occupancy:
                occupancy.observe(occ)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Timeline aggregates (see :meth:`Timeline.summary`)."""
        return self.timeline.summary()

    def write_trace(self, path: str) -> None:
        if self.trace is None:
            raise RuntimeError("collector was built with trace=False")
        self.trace.write(path)
