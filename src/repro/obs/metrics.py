"""Low-overhead metrics primitives: counters, gauges, histograms.

The serving-stack half of :mod:`repro.obs`: named instruments collected
in a :class:`MetricsRegistry`.  Everything here is plain attribute
arithmetic — no locks, no callbacks, no string formatting on the hot
path — so a collector can increment per-event counters without moving
the simulator's wall-clock needle, and the whole subsystem costs nothing
when no collector is attached (the machine then dispatches to an empty
observer tuple; see DESIGN.md §9).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc by {amount})")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (occupancy, backlog, temperature)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


#: Default histogram bucket upper bounds (cycles-ish scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """Fixed-bucket histogram with count/sum, Prometheus style.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in the implicit +inf bucket.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty bucket bounds")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf

    def snapshot(self) -> Dict[str, float]:
        return {"count": float(self.count), "sum": self.total, "mean": self.mean,
                "p50": self.quantile(0.5), "p99": self.quantile(0.99),
                "p999": self.quantile(0.999)}


Metric = Union[Counter, Gauge, Histogram]


def _validate_name(name: str) -> None:
    """Registry names are free-form but must be exposable: non-empty,
    printable, no whitespace — the exporter (:mod:`repro.obs.export`)
    later sanitises them into the OpenMetrics charset."""
    if not name or any(c.isspace() or not c.isprintable() for c in name):
        raise ValueError(f"invalid metric name {name!r}: empty, whitespace, or unprintable")


class MetricsRegistry:
    """Named instruments, created on first use (``registry.counter(...)``)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type, **kwargs: object) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            _validate_name(name)
            metric = kind(name, **kwargs)  # type: ignore[arg-type]
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get(name, Histogram, bounds=bounds, help=help)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered instrument names, sorted."""
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one; returns ``self``.

        The fleet-aggregation primitive: per-worker registries merge into
        one without double-counting — counters and histograms *add*
        (bucket counts, count, and sum element-wise; mismatched bucket
        bounds are an error, not a silent re-bucketing), while gauges
        take the other registry's value when it is set (non-NaN), since a
        gauge is a last-observation, not an accumulation.  Instruments
        registered under the same name with different types raise
        ``TypeError`` (the same collision rule as first use).
        """
        for name in other.names():
            metric = other._metrics[name]
            if isinstance(metric, Counter):
                mine = self.counter(name, help=metric.help)
                mine.value += metric.value
            elif isinstance(metric, Gauge):
                mine_g = self.gauge(name, help=metric.help)
                if not math.isnan(metric.value):
                    mine_g.value = metric.value
            else:
                assert isinstance(metric, Histogram)
                mine_h = self.histogram(name, bounds=metric.bounds, help=metric.help)
                if mine_h.bounds != metric.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ "
                        f"({mine_h.bounds} vs {metric.bounds}); refusing to merge"
                    )
                for i, n in enumerate(metric.bucket_counts):
                    mine_h.bucket_counts[i] += n
                mine_h.count += metric.count
                mine_h.total += metric.total
        return self

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every instrument (JSON-serialisable)."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def render(self) -> str:
        """Aligned text table of all instruments, one per line."""
        lines = []
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                value = (
                    f"count={metric.count} mean={metric.mean:.2f} "
                    f"p50={metric.quantile(0.5):.0f} p99={metric.quantile(0.99):.0f} "
                    f"p999={metric.quantile(0.999):.0f}"
                )
            else:
                v = metric.snapshot()
                value = f"{v:,.2f}" if isinstance(v, float) and not math.isnan(v) else str(v)
            lines.append(f"{name:40s} {value}")
        return "\n".join(lines)
