"""Chrome trace-viewer / Perfetto export of a simulated run.

:class:`TraceBuilder` is a machine observer that renders the run in the
Trace Event Format (the JSON dialect both ``chrome://tracing`` and
https://ui.perfetto.dev load directly):

* **pid 0 — "cores"**: one thread track per simulated core.  Every
  executed event with a nonzero duration becomes a complete ("X") slice;
  consecutive events inside one ``ThreadCtx.function`` region are rolled
  up into phase slices named after the function, so scrubbing shows the
  workload's structure, not just instruction soup.
* **pid 1 — "device"**: counter ("C") tracks fed from the sampled
  timeline — media write bandwidth, open combiner entries, running
  write amplification — plus a per-core store-buffer occupancy counter
  on the cores process.
* **flow events** ("s"/"f"): store→visibility edges from a write to the
  fence/atomic that publishes it, the picture behind Figure 4's
  "last-minute visibility" cost.

Simulated cycles are written as microseconds (the format's time unit);
only relative magnitudes matter for scrubbing.

The builder bounds memory: beyond ``max_events`` slices further events
are dropped (counted in ``dropped_events``); counter events from the
timeline are never dropped.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.event import Event
    from repro.sim.machine import Machine
    from repro.sim.stats import RunResult

__all__ = ["TraceBuilder", "CORES_PID", "DEVICE_PID"]

CORES_PID = 0
DEVICE_PID = 1

#: Slice cap: pure-Python runs execute millions of events; a scrubbable
#: artifact needs only the first stretch plus the counter tracks.
DEFAULT_MAX_EVENTS = 20000
DEFAULT_MAX_FLOWS = 512


class TraceBuilder:
    """Collects trace events during a run; serialise with :meth:`to_dict`."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_flows: int = DEFAULT_MAX_FLOWS,
    ) -> None:
        self.max_events = max_events
        self.max_flows = max_flows
        self._events: List[dict] = []
        self._machine: Optional["Machine"] = None
        self.dropped_events = 0
        self._flow_ids = 0
        #: Per-core list of flow ids started by stores, closed at the
        #: next fence/atomic on the same core.
        self._open_flows: Dict[int, List[int]] = {}
        #: Per-core (function name, start ts) of the current phase span.
        self._phase: Dict[int, tuple] = {}

    # -- observer interface -------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        self._machine = machine
        self._meta("process_name", CORES_PID, 0, name="cores")
        self._meta("process_name", DEVICE_PID, 0, name=f"device {machine.device.spec.name}")
        for core in machine.cores:
            self._meta("thread_name", CORES_PID, core.core_id, name=f"core {core.core_id}")

    def _meta(self, kind: str, pid: int, tid: int, **args: object) -> None:
        self._events.append(
            {"name": kind, "ph": "M", "pid": pid, "tid": tid, "ts": 0, "args": args}
        )

    def record(self, core_id: int, event: "Event", instr_index: int, cycles: float) -> None:
        machine = self._machine
        if machine is None:  # pragma: no cover - attach() always precedes run
            return
        end = machine.cores[core_id].clock
        start = end - cycles
        self._update_phase(core_id, event, start, end)
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        kind = event.kind
        if cycles > 0:
            self._events.append(
                {
                    "name": kind.value,
                    "cat": "sim",
                    "ph": "X",
                    "pid": CORES_PID,
                    "tid": core_id,
                    "ts": start,
                    "dur": cycles,
                    "args": {
                        "addr": f"{event.addr:#x}" if event.is_memory_access else None,
                        "size": event.size or None,
                        "site": event.site.function,
                    },
                }
            )
        self._record_flow(core_id, event, end)

    def _record_flow(self, core_id: int, event: "Event", ts: float) -> None:
        """Store→visibility edges: write starts a flow, fence/atomic ends it."""
        if event.is_store and not event.nontemporal:
            if self._flow_ids < self.max_flows:
                flow_id = self._flow_ids
                self._flow_ids += 1
                self._open_flows.setdefault(core_id, []).append(flow_id)
                self._events.append(
                    {
                        "name": "store-visibility",
                        "cat": "visibility",
                        "ph": "s",
                        "id": flow_id,
                        "pid": CORES_PID,
                        "tid": core_id,
                        "ts": ts,
                    }
                )
        if event.has_fence_semantics:
            for flow_id in self._open_flows.pop(core_id, ()):  # publish point
                self._events.append(
                    {
                        "name": "store-visibility",
                        "cat": "visibility",
                        "ph": "f",
                        "bp": "e",
                        "id": flow_id,
                        "pid": CORES_PID,
                        "tid": core_id,
                        "ts": ts,
                    }
                )

    def _update_phase(self, core_id: int, event: "Event", start: float, end: float) -> None:
        """Roll consecutive same-function events into one phase slice."""
        function = event.site.function
        current = self._phase.get(core_id)
        if current is not None and current[0] == function:
            self._phase[core_id] = (function, current[1], end)
            return
        if current is not None:
            self._emit_phase(core_id, current)
        self._phase[core_id] = (function, start, end)

    def _emit_phase(self, core_id: int, phase: tuple) -> None:
        function, start, end = phase
        if end <= start or function == "<unlabelled>":
            return
        self._events.append(
            {
                "name": function,
                "cat": "phase",
                "ph": "X",
                "pid": CORES_PID,
                "tid": core_id,
                "ts": start,
                "dur": end - start,
                "args": {},
            }
        )

    def instant(
        self,
        name: str,
        ts: float,
        pid: int = DEVICE_PID,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """Emit an instant ("i") marker — crash points, injected faults.

        Markers are process-scoped so they render as full-height lines in
        the viewer; they are never dropped by the slice cap (a handful of
        faults must stay visible however long the run).
        """
        self._events.append(
            {
                "name": name,
                "cat": "fault",
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "args": args or {},
            }
        )

    def finish(self, machine: "Machine", result: "RunResult") -> None:
        for core_id, phase in sorted(self._phase.items()):
            self._emit_phase(core_id, phase)
        self._phase.clear()
        timeline = result.timeline
        if timeline is not None:
            self.add_counter_tracks(timeline)

    # -- counters from the timeline -----------------------------------------

    def add_counter_tracks(self, timeline: Timeline) -> None:
        """Emit device/core counter events from sampled intervals."""
        for sample in timeline:
            ts = sample.t - sample.dt
            bandwidth = sample.device_media_bytes_written / sample.dt if sample.dt > 0 else 0.0
            self._events.append(
                {
                    "name": "media write bandwidth (B/cyc)",
                    "ph": "C", "pid": DEVICE_PID, "tid": 0, "ts": ts,
                    "args": {"bytes_per_cycle": round(bandwidth, 4)},
                }
            )
            self._events.append(
                {
                    "name": "write combiner",
                    "ph": "C", "pid": DEVICE_PID, "tid": 0, "ts": ts,
                    "args": {
                        "open_entries": sample.combiner_open_entries,
                        "closes": sample.combiner_closes,
                    },
                }
            )
            # No WA counter point before the first writeback: the running
            # WA is NaN then (DESIGN.md §9), and NaN is not valid JSON.
            if not math.isnan(sample.running_write_amplification):
                self._events.append(
                    {
                        "name": "write amplification",
                        "ph": "C", "pid": DEVICE_PID, "tid": 0, "ts": ts,
                        "args": {"wa": round(sample.running_write_amplification, 4)},
                    }
                )
            self._events.append(
                {
                    "name": "store-buffer occupancy",
                    "ph": "C", "pid": CORES_PID, "tid": 0, "ts": ts,
                    "args": {
                        f"core{i}": occ
                        for i, occ in enumerate(sample.store_buffer_occupancy)
                    },
                }
            )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        machine = self._machine
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "machine": machine.spec.name if machine is not None else "<detached>",
                "time_unit": "simulated cycles (written as us)",
                "dropped_events": self.dropped_events,
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str, indent: Optional[int] = None) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent))
