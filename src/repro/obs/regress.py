"""Benchmark-trajectory store and regression gate (DESIGN.md §14).

``BENCH_runner.json`` and ``BENCH_sim.json`` are single snapshots; this
module turns them into an enforced curve.  Every ``make bench`` /
``make bench-sim`` appends one entry to ``BENCH_history.jsonl`` —
the benchmark document flattened to numeric leaves, keyed on the
:func:`~repro.runner.cells.code_fingerprint` of the tree that produced
it — and ``make bench-check`` compares the newest entry against its
predecessor under explicit per-metric noise thresholds, prints an ASCII
sparkline trend report, and exits non-zero on regression, naming the
regressed metric and both code fingerprints.

Gating policy (:data:`GATES`, first match wins):

* correctness booleans (``deterministic``, ``warm_all_cached``,
  ``identical``, ``all_identical``) gate **exactly** — any drop from
  1 to 0 is a regression, no noise allowance;
* ``speedup`` ratios gate downward with 25% tolerance and
  ``events_per_sec`` throughputs with 30% (CI runners are noisy);
* wall-clock seconds (``*_s``) gate upward with 50% tolerance —
  they exist to catch order-of-magnitude cliffs, not jitter;
* everything else is trend-only: reported, sparklined, never fatal.

Run as::

    python -m repro.obs.regress append --bench runner BENCH_runner.json
    python -m repro.obs.regress append --bench sim BENCH_sim.json
    python -m repro.obs.regress check            # exit 1 on regression
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "GATES",
    "HISTORY_SCHEMA",
    "MetricTrend",
    "RegressionReport",
    "append_history",
    "check_history",
    "flatten_metrics",
    "load_history",
    "main",
]

HISTORY_SCHEMA = "repro.bench_history/v1"
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: (pattern, direction, relative tolerance).  Direction ``"exact"``
#: means any decrease regresses; ``"higher"``/``"lower"`` say which way
#: is better, with the tolerance absorbing run-to-run noise.
GATES: Tuple[Tuple[re.Pattern, str, float], ...] = (
    (
        re.compile(
            r"(^|\.)(deterministic|warm_all_cached|identical|all_identical)$"
        ),
        "exact",
        0.0,
    ),
    (re.compile(r"speedup$"), "higher", 0.25),
    (re.compile(r"events_per_sec$"), "higher", 0.30),
    (re.compile(r"_s$"), "lower", 0.50),
)

#: Pure-ASCII intensity ramp (same alphabet as the obs CLI timelines).
_RAMP = " .:-=+*#%@"


def _gate_for(metric: str) -> Optional[Tuple[str, float]]:
    for pattern, direction, tolerance in GATES:
        if pattern.search(metric):
            return direction, tolerance
    return None


# -- history store ------------------------------------------------------------


def flatten_metrics(doc: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a benchmark document, dotted-key flattened.

    Booleans become 0.0/1.0 (so the correctness invariants gate like any
    other metric); NaN and infinite leaves are dropped — there is no
    trajectory to compare against nothing.  Strings and lists are
    skipped entirely.
    """
    flat: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(doc[key], name))
    elif isinstance(doc, bool):
        flat[prefix] = 1.0 if doc else 0.0
    elif isinstance(doc, (int, float)) and math.isfinite(doc):
        flat[prefix] = float(doc)
    return flat


def append_history(
    doc: Dict[str, object],
    bench: str,
    history: Union[str, Path] = DEFAULT_HISTORY,
    fingerprint: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """Append one benchmark run to the trajectory; returns the entry.

    ``fingerprint`` defaults to the document's ``code_fingerprint``
    field, else the live tree's fingerprint — the key that lets the
    comparator name *which code* produced each side of a regression.
    """
    if fingerprint is None:
        fingerprint = str(doc.get("code_fingerprint", "")) or None
    if fingerprint is None:
        from repro.runner.cells import code_fingerprint

        fingerprint = code_fingerprint()
    entry: Dict[str, object] = {
        "schema": HISTORY_SCHEMA,
        "bench": bench,
        "fingerprint": fingerprint,
        "t": time.time() if timestamp is None else timestamp,
        "metrics": flatten_metrics(doc),
    }
    path = Path(history)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(
    history: Union[str, Path], bench: Optional[str] = None
) -> List[Dict[str, object]]:
    """Entries in append order; unparseable lines are skipped, not fatal."""
    entries: List[Dict[str, object]] = []
    path = Path(history)
    if not path.exists():
        return entries
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if not isinstance(entry, dict) or entry.get("schema") != HISTORY_SCHEMA:
            continue
        if bench is not None and entry.get("bench") != bench:
            continue
        entries.append(entry)
    return entries


# -- comparison ---------------------------------------------------------------


@dataclass
class MetricTrend:
    """One metric's trajectory and the latest-vs-previous verdict."""

    bench: str
    metric: str
    #: Full series in history order (latest last).
    values: List[float]
    #: Fingerprint per series point (parallel to ``values``).
    fingerprints: List[str]
    #: ``"exact"`` / ``"higher"`` / ``"lower"``; None for trend-only.
    direction: Optional[str] = None
    tolerance: float = 0.0
    #: ``"ok"`` / ``"regressed"`` / ``"improved"`` / ``"new"``.
    verdict: str = "ok"
    #: True when the metric was numeric in the previous entry but is
    #: absent from the latest — which is how a NaN/inf leaf presents,
    #: since :func:`flatten_metrics` drops non-finite values.  Gated
    #: metrics that vanish regress explicitly rather than silently
    #: disappearing from the report.
    vanished: bool = False

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def previous(self) -> Optional[float]:
        return self.values[-2] if len(self.values) > 1 else None

    def sparkline(self, width: int = 24) -> str:
        # Histories written by hand or by older tools can carry NaN/inf
        # points (json accepts them); render those as "?" instead of
        # poisoning min/max or crashing round().
        values = self.values[-width:]
        finite = [v for v in values if math.isfinite(v)]
        if not finite:
            return "?" * len(values)
        lo, hi = min(finite), max(finite)
        if hi <= lo:
            mid = _RAMP[len(_RAMP) // 2]
            return "".join(mid if math.isfinite(v) else "?" for v in values)
        scale = len(_RAMP) - 1
        return "".join(
            _RAMP[round(scale * (v - lo) / (hi - lo))] if math.isfinite(v) else "?"
            for v in values
        )

    def describe(self) -> str:
        prev = self.previous
        gate = self.direction or "trend"
        if self.vanished:
            return (
                f"[{self.verdict.upper():>9s}] {self.bench}:{self.metric}  "
                f"went non-finite (last numeric value {self.latest:g}, gate={gate})  "
                f"|{self.sparkline()}|"
            )
        if prev is None:
            change = "new"
        elif prev == 0 or not math.isfinite(prev) or not math.isfinite(self.latest):
            change = f"{prev:g} -> {self.latest:g}"
        else:
            change = f"{(self.latest - prev) / abs(prev):+.1%}"
        return (
            f"[{self.verdict.upper():>9s}] {self.bench}:{self.metric}  "
            f"{self.latest:g} ({change}, gate={gate}"
            + (f"±{self.tolerance:.0%}" if self.direction in ("higher", "lower") else "")
            + f")  |{self.sparkline()}|"
        )


@dataclass
class RegressionReport:
    """Every metric trend for the compared benches, regressions first."""

    trends: List[MetricTrend] = field(default_factory=list)
    #: (bench, latest fingerprint, baseline fingerprint) per bench compared.
    compared: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricTrend]:
        return [t for t in self.trends if t.verdict == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, trend_only: bool = True) -> str:
        lines: List[str] = []
        for bench, latest_fp, base_fp in self.compared:
            lines.append(
                f"bench {bench}: comparing fingerprint {latest_fp} (latest) "
                f"against {base_fp} (previous)"
            )
        order = {"regressed": 0, "improved": 1, "ok": 2, "new": 3}
        shown = [
            t
            for t in sorted(self.trends, key=lambda t: (order[t.verdict], t.metric))
            if trend_only or t.direction is not None
        ]
        lines.extend(t.describe() for t in shown)
        if not self.trends:
            lines.append("(no comparable history: need at least two entries per bench)")
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{sum(1 for t in self.trends if t.verdict == 'improved')} improvement(s), "
            f"{len(self.trends)} metric(s) tracked"
        )
        return "\n".join(lines)


def _verdict(direction: str, tolerance: float, prev: float, latest: float) -> str:
    # NaN-vs-number must be an explicit verdict: every comparison below
    # is False against NaN, which would fall through to "ok" — the one
    # outcome a non-finite measurement must never produce.
    if not math.isfinite(latest):
        return "regressed"
    if not math.isfinite(prev):
        return "ok"  # recovered; nothing numeric to compare against
    if direction == "exact":
        if latest < prev:
            return "regressed"
        return "improved" if latest > prev else "ok"
    if direction == "higher":
        if latest < prev * (1.0 - tolerance):
            return "regressed"
        return "improved" if latest > prev * (1.0 + tolerance) else "ok"
    assert direction == "lower"
    if latest > prev * (1.0 + tolerance):
        return "regressed"
    return "improved" if latest < prev * (1.0 - tolerance) else "ok"


def check_history(
    history: Union[str, Path] = DEFAULT_HISTORY, bench: Optional[str] = None
) -> RegressionReport:
    """Compare each bench's newest entry against its predecessor.

    Only gated metrics (see :data:`GATES`) can regress; every metric
    present in the latest entry is tracked and sparklined.  A bench
    with fewer than two entries contributes ``"new"`` trends only.
    """
    report = RegressionReport()
    entries = load_history(history, bench=bench)
    benches = sorted({str(e["bench"]) for e in entries})
    for bench_id in benches:
        series = [e for e in entries if e["bench"] == bench_id]
        latest = series[-1]
        previous = series[-2] if len(series) > 1 else None
        if previous is not None:
            report.compared.append(
                (bench_id, str(latest["fingerprint"]), str(previous["fingerprint"]))
            )
        latest_metrics: Dict[str, float] = dict(latest["metrics"])  # type: ignore[arg-type]
        for metric in sorted(latest_metrics):
            points = [
                (float(e["metrics"][metric]), str(e["fingerprint"]))  # type: ignore[index]
                for e in series
                if metric in e["metrics"]  # type: ignore[operator]
            ]
            trend = MetricTrend(
                bench=bench_id,
                metric=metric,
                values=[v for v, _ in points],
                fingerprints=[fp for _, fp in points],
            )
            gate = _gate_for(metric)
            if gate is not None:
                trend.direction, trend.tolerance = gate
            if len(trend.values) < 2:
                trend.verdict = "new"
            elif trend.direction is not None:
                trend.verdict = _verdict(
                    trend.direction, trend.tolerance, trend.values[-2], trend.latest
                )
            report.trends.append(trend)
        if previous is None:
            continue
        # Gated metrics that were numeric before but are gone now: a
        # NaN/inf measurement presents exactly like this (flatten drops
        # non-finite leaves), and it must regress explicitly instead of
        # silently dropping out of the comparison.
        prev_metrics: Dict[str, float] = dict(previous["metrics"])  # type: ignore[arg-type]
        for metric in sorted(set(prev_metrics) - set(latest_metrics)):
            gate = _gate_for(metric)
            if gate is None:
                continue
            points = [
                (float(e["metrics"][metric]), str(e["fingerprint"]))  # type: ignore[index]
                for e in series
                if metric in e["metrics"]  # type: ignore[operator]
            ]
            report.trends.append(
                MetricTrend(
                    bench=bench_id,
                    metric=metric,
                    values=[v for v, _ in points],
                    fingerprints=[fp for _, fp in points],
                    direction=gate[0],
                    tolerance=gate[1],
                    verdict="regressed",
                    vanished=True,
                )
            )
    return report


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Benchmark-trajectory store and regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    append_p = sub.add_parser("append", help="append a benchmark JSON document to the history")
    append_p.add_argument("doc", help="benchmark document (BENCH_runner.json / BENCH_sim.json)")
    append_p.add_argument("--bench", required=True, help='trajectory id (e.g. "runner", "sim")')
    append_p.add_argument("--history", default=DEFAULT_HISTORY)

    check_p = sub.add_parser(
        "check", help="compare the newest entries against their predecessors"
    )
    check_p.add_argument("--history", default=DEFAULT_HISTORY)
    check_p.add_argument("--bench", default=None, help="restrict to one trajectory id")
    check_p.add_argument(
        "--gated-only", action="store_true", help="report only metrics with a gate"
    )

    args = parser.parse_args(argv)

    if args.command == "append":
        doc = json.loads(Path(args.doc).read_text())
        entry = append_history(doc, bench=args.bench, history=args.history)
        print(
            f"appended {args.bench} entry ({len(entry['metrics'])} metrics, "  # type: ignore[arg-type]
            f"fingerprint {entry['fingerprint']}) to {args.history}"
        )
        return 0

    report = check_history(history=args.history, bench=args.bench)
    print(report.render(trend_only=not args.gated_only))
    if not report.ok:
        names = ", ".join(f"{t.bench}:{t.metric}" for t in report.regressions)
        print(f"REGRESSION: {names}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
