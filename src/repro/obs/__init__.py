"""repro.obs — time-resolved telemetry, trace export, and profiling.

The observability subsystem of the reproduction (DESIGN.md §9): a
metrics core (:mod:`repro.obs.metrics`), a ring-buffered time-series
sampler producing :class:`~repro.obs.timeline.Timeline` objects
(:mod:`repro.obs.sampler`), a Chrome-trace/Perfetto exporter
(:mod:`repro.obs.trace`), structured logging + wall-clock span
profiling (:mod:`repro.obs.log`), and the :class:`ObsCollector` facade
gluing them to the simulator's observer list.

Opt in per run, mirroring the ``sanitize=`` pattern::

    result = workload.run(spec, obs=True)
    result.run.timeline.summary()

or keep the collector for trace export::

    from repro.obs import ObsCollector
    collector = ObsCollector(profile=True)
    workload.run(spec, obs=collector)
    collector.write_trace("out.trace.json")

``python -m repro.obs run --workload listing1 --trace out.trace.json``
does the same from the command line.

Only the dependency-free modules are imported eagerly here — the
collector pulls in the simulator, which itself imports
:mod:`repro.obs.timeline` (for ``RunResult.timeline``), so loading it at
package-import time would cycle.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import Timeline, TimelineSample
from repro.obs.log import (
    SpanProfiler,
    SpanStats,
    basic_config,
    get_logger,
    run_context,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timeline",
    "TimelineSample",
    "SpanProfiler",
    "SpanStats",
    "basic_config",
    "get_logger",
    "run_context",
    "span",
    "ObsCollector",
    "TimelineSampler",
    "TraceBuilder",
]

_LAZY = {
    "ObsCollector": ("repro.obs.collector", "ObsCollector"),
    "TimelineSampler": ("repro.obs.sampler", "TimelineSampler"),
    "TraceBuilder": ("repro.obs.trace", "TraceBuilder"),
}


def __getattr__(name: str):
    """Lazy exports that depend on the simulator (avoids import cycles)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
