"""Time-resolved run telemetry: the sample record and its ring buffer.

Every aggregate the paper reports (write amplification via ipmctl
counters, fence-stall totals, mean cycles) is the *integral* of a
time-resolved signal: per-interval device bandwidth, store-buffer
fill/drain, write-combining-buffer churn, backpressure waves after a
fence.  A :class:`Timeline` keeps that signal — a bounded ring of
:class:`TimelineSample` interval records captured by
:class:`~repro.obs.sampler.TimelineSampler` during ``Machine.run``.

Per-interval fields are *deltas* over the covered interval, so summing a
field across samples re-derives the run total (the cross-check the obs
CLI's ``self-check`` performs against the simulated ipmctl counters).
Instantaneous fields (store-buffer occupancy, open combiner entries) are
gauges read at the sample instant.

This module is intentionally dependency-free (no simulator imports) so
that :mod:`repro.sim.stats` can attach a timeline to :class:`RunResult`
without an import cycle.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["TimelineSample", "Timeline", "DEFAULT_INTERVAL", "DEFAULT_CAPACITY"]

#: Default sampling interval in simulated cycles.
DEFAULT_INTERVAL = 1000.0
#: Default ring capacity.  Runs longer than ``capacity * interval``
#: cycles drop their *oldest* samples (counted in ``dropped``); totals
#: in :attr:`Timeline.cumulative` stay exact regardless.
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class TimelineSample:
    """Telemetry for one sampling interval ``(t - dt, t]``.

    ``t`` is the machine time (max core clock observed so far) at the
    sample instant, in simulated cycles; ``dt`` is the stretch of
    simulated time the delta fields cover.
    """

    t: float
    dt: float
    #: Cache-line bytes that arrived at the device this interval.
    device_bytes_received: int
    #: Bytes the medium actually wrote this interval (amplified).
    device_media_bytes_written: int
    #: Demand-read bytes served by the device this interval.
    device_bytes_read: int
    #: Per-core store-buffer occupancy at the sample instant (gauge).
    store_buffer_occupancy: Tuple[int, ...]
    #: Open write-combining entries on the device at the instant (gauge).
    combiner_open_entries: int
    #: Combiner entries closed (evicted to media) this interval.
    combiner_closes: int
    #: Cache accesses / hits summed over all levels this interval.
    cache_accesses: int
    cache_hits: int
    #: Fence-stall cycles accrued across all cores this interval.
    fence_stall_cycles: float
    #: Backpressure-stall cycles accrued across all cores this interval.
    backpressure_stall_cycles: float
    #: *Running* write amplification: cumulative media bytes written per
    #: cumulative byte received, up to and including this interval.
    running_write_amplification: float

    @property
    def device_write_bandwidth(self) -> float:
        """Media bytes written per cycle over this interval (NaN if dt=0)."""
        if self.dt <= 0:
            return float("nan")
        return self.device_media_bytes_written / self.dt

    @property
    def cache_hit_rate(self) -> float:
        """Interval hit rate over all levels; NaN when nothing was accessed."""
        if self.cache_accesses == 0:
            return float("nan")
        return self.cache_hits / self.cache_accesses

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["store_buffer_occupancy"] = list(self.store_buffer_occupancy)
        # NaN (running WA before any writeback) is not valid strict JSON;
        # archive it as null and restore on load.
        if math.isnan(self.running_write_amplification):
            d["running_write_amplification"] = None
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TimelineSample":
        kwargs = dict(d)
        kwargs["store_buffer_occupancy"] = tuple(kwargs["store_buffer_occupancy"])  # type: ignore[arg-type]
        if kwargs.get("running_write_amplification") is None:
            kwargs["running_write_amplification"] = float("nan")
        return cls(**kwargs)  # type: ignore[arg-type]


class Timeline:
    """A bounded, append-only ring of :class:`TimelineSample` records.

    Appending past ``capacity`` drops the oldest sample (``dropped``
    counts them); :attr:`cumulative` accumulates the delta fields of
    *every* sample ever appended, so run totals survive ring eviction.
    """

    _DELTA_FIELDS = (
        "device_bytes_received",
        "device_media_bytes_written",
        "device_bytes_read",
        "combiner_closes",
        "cache_accesses",
        "cache_hits",
        "fence_stall_cycles",
        "backpressure_stall_cycles",
    )

    def __init__(self, interval: float = DEFAULT_INTERVAL, capacity: int = DEFAULT_CAPACITY) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        if capacity <= 0:
            raise ValueError(f"timeline capacity must be positive, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._samples: Deque[TimelineSample] = deque(maxlen=capacity)
        self.dropped = 0
        #: Exact run totals of every delta field (survive ring eviction).
        self.cumulative: Dict[str, float] = {name: 0 for name in self._DELTA_FIELDS}

    # -- collection --------------------------------------------------------

    def append(self, sample: TimelineSample) -> None:
        if self._samples and sample.t <= self._samples[-1].t:
            raise ValueError(
                f"timeline timestamps must be strictly increasing: "
                f"{sample.t} after {self._samples[-1].t}"
            )
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append(sample)
        for name in self._DELTA_FIELDS:
            self.cumulative[name] += getattr(sample, name)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[TimelineSample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> TimelineSample:
        return self._samples[index]

    @property
    def samples(self) -> List[TimelineSample]:
        return list(self._samples)

    def integrated(self, field_name: str) -> float:
        """Sum a delta field over the *retained* samples.

        Equals ``cumulative[field_name]`` when nothing was dropped — the
        property the obs self-check verifies against the ipmctl counters.
        """
        if field_name not in self._DELTA_FIELDS:
            raise KeyError(f"{field_name!r} is not an integrable delta field")
        return sum(getattr(s, field_name) for s in self._samples)

    def peak(self, field_name: str) -> float:
        """Largest per-sample value of a delta/gauge field (NaN if empty)."""
        values = [getattr(s, field_name) for s in self._samples]
        return max(values) if values else float("nan")

    def summary(self) -> Dict[str, float]:
        """Aggregate metrics experiments and the AutoTuner report."""
        if not self._samples:
            return {}
        span = self._samples[-1].t - self._samples[0].t + self._samples[0].dt
        total_media = self.cumulative["device_media_bytes_written"]
        received = self.cumulative["device_bytes_received"]
        accesses = self.cumulative["cache_accesses"]
        occupancies = [
            occ for s in self._samples for occ in s.store_buffer_occupancy
        ]
        return {
            "samples": float(len(self._samples)),
            "span_cycles": span,
            "mean_write_bandwidth": total_media / span if span > 0 else float("nan"),
            "peak_write_bandwidth": max(
                (s.device_write_bandwidth for s in self._samples if not math.isnan(s.device_write_bandwidth)),
                default=float("nan"),
            ),
            "mean_store_buffer_occupancy": (
                sum(occupancies) / len(occupancies) if occupancies else float("nan")
            ),
            "peak_combiner_open_entries": self.peak("combiner_open_entries"),
            "cache_hit_rate": (
                self.cumulative["cache_hits"] / accesses if accesses else float("nan")
            ),
            "write_amplification": (
                total_media / received if received else float("nan")
            ),
            "fence_stall_cycles": self.cumulative["fence_stall_cycles"],
            "backpressure_stall_cycles": self.cumulative["backpressure_stall_cycles"],
        }

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "cumulative": dict(self.cumulative),
            "samples": [s.to_dict() for s in self._samples],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Timeline":
        timeline = cls(interval=float(d["interval"]), capacity=int(d["capacity"]))  # type: ignore[arg-type]
        for sample in d.get("samples", ()):  # type: ignore[union-attr]
            timeline.append(TimelineSample.from_dict(sample))  # type: ignore[arg-type]
        # Restore exact totals (ring-evicted samples are gone from the
        # dict, so recomputing from samples would under-count).
        timeline.cumulative = dict(d.get("cumulative", timeline.cumulative))  # type: ignore[arg-type]
        timeline.dropped = int(d.get("dropped", 0))  # type: ignore[arg-type]
        return timeline

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Timeline {len(self._samples)} samples @ {self.interval:g}cyc"
            f"{f', {self.dropped} dropped' if self.dropped else ''}>"
        )
