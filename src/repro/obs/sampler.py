"""The time-series sampler: turns a run into a :class:`Timeline`.

:class:`TimelineSampler` is an observer in the
:class:`~repro.sim.machine.Machine` observer list (the same interface
DirtBuster tracers and sanitizers use).  On every recorded event it
advances its notion of machine time — the maximum core clock observed —
and whenever at least ``interval`` simulated cycles have elapsed since
the previous sample it snapshots *deltas* of the device / cache / core
counters into a :class:`~repro.obs.timeline.TimelineSample`.

Because the event stream is deterministic for a given seed, so are the
sample timestamps and contents: two identical seeded runs produce
identical timelines (asserted by ``tests/test_obs_timeline.py``).

A final tail sample is emitted from the machine's ``finish`` hook so the
end-of-run cache drain and combiner flush are captured; that is what
makes the integrated per-interval device bytes equal the final ipmctl
counters exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.timeline import DEFAULT_CAPACITY, DEFAULT_INTERVAL, Timeline, TimelineSample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.event import Event
    from repro.sim.machine import Machine
    from repro.sim.stats import RunResult

__all__ = ["TimelineSampler"]


class TimelineSampler:
    """Ring-buffered per-interval sampler of simulator internals.

    One instance observes one run (like a Machine, single-use).  All
    state lives in plain attributes; a ``record`` call that does not
    cross an interval boundary costs two attribute reads and a compare.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.timeline = Timeline(interval=interval, capacity=capacity)
        self._machine: Optional["Machine"] = None
        #: Machine time: max core clock observed so far.
        self._now = 0.0
        #: End of the last emitted sample's interval.
        self._last_t = 0.0
        # Cumulative baselines for delta computation.
        self._bytes_received = 0
        self._media_bytes_written = 0
        self._bytes_read = 0
        self._combiner_closes = 0
        self._cache_accesses = 0
        self._cache_hits = 0
        self._fence_stall = 0.0
        self._backpressure_stall = 0.0
        self.samples_taken = 0

    # -- observer interface -------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        if self._machine is not None:
            raise RuntimeError("TimelineSampler instances observe a single run")
        self._machine = machine

    def record(self, core_id: int, event: "Event", instr_index: int, cycles: float) -> None:
        machine = self._machine
        if machine is None:  # pragma: no cover - attach() always precedes run
            return
        clock = machine.cores[core_id].clock
        if clock > self._now:
            self._now = clock
        if self._now - self._last_t >= self.timeline.interval:
            self._take_sample(self._now)

    def finish(self, machine: "Machine", result: "RunResult") -> None:
        """Capture the tail interval (incl. drain) and publish the timeline."""
        end = max(result.cycles_with_drain, self._now)
        if end > self._last_t or not self.timeline:
            # Guarantee strictly increasing timestamps even for
            # degenerate zero-length runs.
            self._take_sample(end if end > self._last_t else self._last_t + 1e-9)
        result.timeline = self.timeline

    # -- sampling -----------------------------------------------------------

    def _take_sample(self, t: float) -> None:
        machine = self._machine
        assert machine is not None
        dev = machine.device.stats
        combiner = machine.device.combiner
        accesses = 0
        hits = 0
        for level in machine.hierarchy.levels:
            stats = level.stats
            accesses += stats.hits + stats.misses
            hits += stats.hits
        fence = 0.0
        backpressure = 0.0
        occupancy = []
        for core in machine.cores:
            fence += core.stats.fence_stall_cycles
            backpressure += core.stats.backpressure_stall_cycles
            occupancy.append(core.store_buffer.occupancy())
        sample = TimelineSample(
            t=t,
            dt=t - self._last_t,
            device_bytes_received=dev.bytes_received - self._bytes_received,
            device_media_bytes_written=dev.media_bytes_written - self._media_bytes_written,
            device_bytes_read=dev.bytes_read - self._bytes_read,
            store_buffer_occupancy=tuple(occupancy),
            combiner_open_entries=combiner.open_entries,
            combiner_closes=combiner.closes - self._combiner_closes,
            cache_accesses=accesses - self._cache_accesses,
            cache_hits=hits - self._cache_hits,
            fence_stall_cycles=fence - self._fence_stall,
            backpressure_stall_cycles=backpressure - self._backpressure_stall,
            running_write_amplification=dev.write_amplification(),
        )
        self.timeline.append(sample)
        self.samples_taken += 1
        self._last_t = t
        self._bytes_received = dev.bytes_received
        self._media_bytes_written = dev.media_bytes_written
        self._bytes_read = dev.bytes_read
        self._combiner_closes = combiner.closes
        self._cache_accesses = accesses
        self._cache_hits = hits
        self._fence_stall = fence
        self._backpressure_stall = backpressure
