"""OpenMetrics / JSONL exposition of :class:`MetricsRegistry` snapshots.

The scrape-surface half of sweep-scale observability (DESIGN.md §14):
any registry — a single run's :class:`~repro.obs.collector.ObsCollector`
registry or a fleet registry folded together from per-worker ones — can
be rendered as Prometheus/OpenMetrics text exposition
(:func:`render_openmetrics`) or as a structured JSONL stream
(:func:`render_jsonl`), and an exposition can be parsed back
(:func:`parse_openmetrics`) for round-trip checks.

Two invariants every renderer here keeps:

* **Determinism** — output is a pure function of the snapshot: metrics
  sorted by name, histogram buckets in bound order, numbers formatted
  via ``repr``; the same registry state renders byte-identically however
  many times (and from however many merged worker registries) it is
  rendered.  The exporter tests and the obs self-check enforce this.
* **NaN safety** — the §10 derived-ratio convention returns
  ``float("nan")`` for zero-denominator ratios, and strict-JSON
  surfaces serialise that as ``null``, never a ``nan`` literal.  JSONL
  lines follow the same rule; OpenMetrics (which has no null) *omits*
  the sample line and keeps the ``# TYPE`` metadata, exactly as the
  Perfetto counter track skips NaN samples.

Registry names use dots (``events.write``, ``run.cycles``); the
exposition charset is ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so names are
sanitised (every invalid character becomes ``_``) and a collision after
sanitisation (``a.b`` vs ``a_b``) is a hard error rather than a silent
double-write.  :func:`export_snapshot` is the canonical exported view —
sanitised names, NaN→None values — and is what a parsed exposition must
equal.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "export_metric_name",
    "escape_help",
    "export_snapshot",
    "render_openmetrics",
    "render_jsonl",
    "parse_openmetrics",
]

#: The OpenMetrics/Prometheus metric-name charset.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHAR_RE = re.compile(r"[^a-zA-Z0-9_:]")


def export_metric_name(name: str) -> str:
    """Sanitise a registry name into the exposition charset.

    Dots (the registry's namespacing convention) and any other invalid
    character become ``_``; a leading digit gains a ``_`` prefix.  An
    empty or all-invalid name is an error — exposition must never emit a
    nameless sample.
    """
    if not name:
        raise ValueError("metric name is empty")
    sanitised = _INVALID_CHAR_RE.sub("_", name)
    if sanitised[0].isdigit():
        sanitised = "_" + sanitised
    if not _NAME_RE.match(sanitised):
        raise ValueError(f"metric name {name!r} cannot be sanitised for exposition")
    return sanitised


def escape_help(text: str) -> str:
    """Escape a help string for a ``# HELP`` line (backslash, newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    return text.replace("\\n", "\n").replace("\\\\", "\\")


def _fmt(value: float) -> str:
    """Deterministic number formatting: ints bare, floats via ``repr``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _nullsafe(value: float) -> Union[float, str, None]:
    """NaN→None (the §10 null convention); ±inf→``"+Inf"``/``"-Inf"``.

    Both substitutions keep the value strict-JSON serialisable while
    staying lossless: None marks "no ratio to report", the Inf strings
    mark a histogram quantile above the largest bucket bound.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return value


def _export_items(registry: MetricsRegistry) -> List[Tuple[str, object]]:
    """(exposition_name, metric) pairs, sorted, collisions rejected."""
    items: Dict[str, object] = {}
    sources: Dict[str, str] = {}
    for name in sorted(registry.names()):
        metric = registry.get(name)
        exported = export_metric_name(name)
        if exported in items:
            raise ValueError(
                f"metrics {sources[exported]!r} and {name!r} collide as "
                f"{exported!r} after exposition sanitisation"
            )
        items[exported] = metric
        sources[exported] = name
    return sorted(items.items())


def export_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The canonical exported view: sanitised names, NaN→None values.

    This is what :func:`parse_openmetrics` recovers from a rendered
    exposition — the round-trip contract is
    ``parse_openmetrics(render_openmetrics(r)) == export_snapshot(r)``.
    """
    doc: Dict[str, object] = {}
    for exported, metric in _export_items(registry):
        if isinstance(metric, Histogram):
            doc[exported] = {k: _nullsafe(v) for k, v in metric.snapshot().items()}
        else:
            doc[exported] = _nullsafe(metric.snapshot())  # type: ignore[union-attr]
    return doc


# -- OpenMetrics text exposition ---------------------------------------------


def render_openmetrics(registry: MetricsRegistry) -> str:
    """Prometheus/OpenMetrics text exposition of the registry.

    Counters render as ``<name>_total``, gauges as plain samples (NaN
    gauges keep their ``# TYPE`` line but omit the sample), histograms
    as cumulative ``_bucket{le=...}`` series plus ``_count``/``_sum``.
    Deterministic: sorted names, ``repr`` number formatting.
    """
    lines: List[str] = []
    for exported, metric in _export_items(registry):
        if metric.help:
            lines.append(f"# HELP {exported} {escape_help(metric.help)}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {exported} counter")
            lines.append(f"{exported}_total {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {exported} gauge")
            if not math.isnan(metric.value):
                lines.append(f"{exported} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {exported} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                lines.append(f'{exported}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            lines.append(f'{exported}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{exported}_count {metric.count}")
            lines.append(f"{exported}_sum {_fmt(metric.total)}")
        else:  # pragma: no cover - registry only holds the three kinds
            raise TypeError(f"unexported metric type {type(metric).__name__}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{le="(?P<le>[^"]+)"\})?'
    r" (?P<value>\S+)$"
)


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_openmetrics(text: str) -> Dict[str, object]:
    """Parse an exposition back into the :func:`export_snapshot` shape.

    Histogram quantiles are recomputed from the parsed buckets with the
    same bucket-resolution algorithm :class:`Histogram` uses, so the
    round trip is exact, not approximate.  A gauge whose ``# TYPE`` line
    has no sample (the NaN case) comes back as ``None``.
    """
    types: Dict[str, str] = {}
    scalars: Dict[str, float] = {}
    buckets: Dict[str, List[Tuple[float, int]]] = {}
    counts: Dict[str, int] = {}
    sums: Dict[str, float] = {}

    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, le, value = match.group("name"), match.group("le"), match.group("value")
        if name.endswith("_bucket") and le is not None:
            buckets.setdefault(name[: -len("_bucket")], []).append(
                (_parse_number(le), int(float(value)))
            )
        elif name.endswith("_count") and name[: -len("_count")] in types:
            counts[name[: -len("_count")]] = int(float(value))
        elif name.endswith("_sum") and name[: -len("_sum")] in types:
            sums[name[: -len("_sum")]] = _parse_number(value)
        elif name.endswith("_total") and types.get(name[: -len("_total")]) == "counter":
            scalars[name[: -len("_total")]] = _parse_number(value)
        else:
            scalars[name] = _parse_number(value)

    doc: Dict[str, object] = {}
    for name, kind in types.items():
        if kind == "histogram":
            series = sorted(buckets.get(name, ()))
            bounds = [b for b, _ in series if b != math.inf]
            rebuilt = Histogram(name, bounds=bounds or [1.0])
            previous = 0
            for i, (bound, cumulative) in enumerate(series):
                if bound == math.inf:
                    continue
                rebuilt.bucket_counts[i] = cumulative - previous
                previous = cumulative
            rebuilt.count = counts.get(name, 0)
            rebuilt.bucket_counts[-1] = rebuilt.count - previous
            rebuilt.total = sums.get(name, 0.0)
            doc[name] = {k: _nullsafe(v) for k, v in rebuilt.snapshot().items()}
        else:
            doc[name] = _nullsafe(scalars[name]) if name in scalars else None
    return doc


# -- JSONL event stream -------------------------------------------------------


def render_jsonl(
    registry: MetricsRegistry, extra: Optional[Dict[str, object]] = None
) -> str:
    """One JSON object per instrument, sorted by name, NaN as ``null``.

    Each line carries ``name`` (exposition-sanitised), ``type``, and
    either ``value`` (counter/gauge) or the histogram snapshot fields;
    ``extra`` keys (e.g. a sweep id) are merged into every line.  A
    tailing consumer gets the whole registry by reading to EOF; the same
    registry state always renders byte-identically.
    """
    lines: List[str] = []
    for exported, metric in _export_items(registry):
        doc: Dict[str, object] = {"name": exported}
        if isinstance(metric, Counter):
            doc["type"] = "counter"
            doc["value"] = _nullsafe(metric.value)
        elif isinstance(metric, Gauge):
            doc["type"] = "gauge"
            doc["value"] = _nullsafe(metric.value)
        else:
            assert isinstance(metric, Histogram)
            doc["type"] = "histogram"
            doc.update({k: _nullsafe(v) for k, v in metric.snapshot().items()})
        if extra:
            doc.update(extra)
        lines.append(json.dumps(doc, sort_keys=True, allow_nan=False))
    return "\n".join(lines) + ("\n" if lines else "")


def nullsafe_value(value: Union[float, int, None]) -> Optional[float]:
    """Public NaN→None helper for callers building their own JSON docs."""
    if value is None:
        return None
    return _nullsafe(float(value))
