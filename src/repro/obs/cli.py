"""``python -m repro.obs``: run a workload with telemetry, render it, export it.

Examples::

    python -m repro.obs run --workload listing1 --trace out.trace.json
    python -m repro.obs run --workload x9 --machine b-fast --mode demote --profile
    python -m repro.obs run --workload listing1 --json result.json --width 100
    python -m repro.obs self-check

``run`` executes one seeded workload with an
:class:`~repro.obs.collector.ObsCollector` attached and prints a metrics
summary table plus ASCII timelines (device write bandwidth, store-buffer
occupancy, running write amplification); ``--trace`` writes a Chrome
trace-viewer / Perfetto ``.trace.json`` artifact and ``--json`` archives
the full :class:`~repro.sim.stats.RunResult` (timeline included).

``self-check`` validates the whole telemetry path on a small seeded run:
timestamps monotone, integrated per-interval device bytes equal to the
final ipmctl counters, the exported trace loads as well-formed JSON, the
RunResult JSON round-trip is lossless, and a run *without* obs attaches
no observer.  CI runs it on every push.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional, Sequence

from repro.obs.collector import ObsCollector
from repro.obs.log import basic_config, get_logger, run_context

__all__ = ["main", "render_timeline", "self_check"]

_log = get_logger("cli")

#: Pure-ASCII intensity ramp for terminal timelines.
_RAMP = " .:-=+*#%@"

_MACHINES = {
    "a": "machine_a",
    "dram": "machine_dram",
    "a-cxl": "machine_a_cxl",
    "b-fast": "machine_b_fast",
    "b-slow": "machine_b_slow",
}


def _make_spec(name: str, seed: int):
    import repro.sim.machine as machines

    try:
        factory = getattr(machines, _MACHINES[name])
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(_MACHINES)}"
        ) from None
    return factory(seed=seed)


def _sparkline(values: Sequence[float], width: int) -> str:
    """Downsample ``values`` into ``width`` columns of the ASCII ramp."""
    if not values:
        return ""
    width = min(width, len(values))
    # Bucket means, then normalise to the ramp.
    buckets: List[float] = []
    per = len(values) / width
    for i in range(width):
        lo, hi = int(i * per), max(int((i + 1) * per), int(i * per) + 1)
        chunk = [v for v in values[lo:hi] if not math.isnan(v)]
        buckets.append(sum(chunk) / len(chunk) if chunk else 0.0)
    top = max(buckets)
    if top <= 0:
        return _RAMP[0] * width
    scale = len(_RAMP) - 1
    return "".join(_RAMP[round(scale * b / top)] for b in buckets)


def render_timeline(timeline, width: int = 72) -> str:
    """ASCII view of the sampled run: one labelled sparkline per signal."""
    samples = timeline.samples
    if not samples:
        return "(empty timeline)"
    t0, t1 = samples[0].t - samples[0].dt, samples[-1].t
    rows = [
        ("write bandwidth", [s.device_write_bandwidth for s in samples], "B/cyc"),
        ("read bytes", [float(s.device_bytes_read) for s in samples], "B/interval"),
        ("sb occupancy", [max(s.store_buffer_occupancy) for s in samples], "entries (max core)"),
        ("combiner open", [float(s.combiner_open_entries) for s in samples], "entries"),
        ("fence stalls", [s.fence_stall_cycles for s in samples], "cyc/interval"),
        ("backpressure", [s.backpressure_stall_cycles for s in samples], "cyc/interval"),
        ("running WA", [s.running_write_amplification for s in samples], "x"),
    ]
    lines = [
        f"timeline: {len(samples)} samples over cycles [{t0:,.0f}, {t1:,.0f}]"
        + (f" ({timeline.dropped} oldest dropped)" if timeline.dropped else "")
    ]
    for label, values, unit in rows:
        finite = [v for v in values if not math.isnan(v)]
        peak = max(finite) if finite else float("nan")
        lines.append(f"{label:>16s} |{_sparkline(values, width)}| peak {peak:.3g} {unit}")
    return "\n".join(lines)


def _run(args: argparse.Namespace) -> int:
    from repro.analysis.ipmctl import read_media_counters
    from repro.core.prestore import PatchConfig, PrestoreMode
    from repro.workloads.registry import make_workload

    workload = make_workload(args.workload)
    spec = _make_spec(args.machine, args.seed)
    mode = PrestoreMode(args.mode)
    patches = PatchConfig.baseline()
    if mode is not PrestoreMode.NONE:
        patches = PatchConfig()
        for site in workload.patch_sites():
            patches.set_mode(site.name, mode)
    collector = ObsCollector(
        interval=args.interval, trace=args.trace is not None, profile=args.profile
    )
    run_id = f"{workload.name}/{spec.name}/{mode.value}/s{args.seed}"
    _log.info("running %s on %s", run_id, spec.name)
    with run_context(run_id=run_id):
        result = workload.run(spec, patches, seed=args.seed, obs=collector).run

    print(result.summary())
    print()
    print(render_timeline(collector.timeline, width=args.width))
    print()
    print("metrics:")
    print(collector.registry.render())
    print()
    print(read_media_counters(result).render())
    if args.profile and collector.profiler is not None:
        print()
        print("python self-time (wall clock):")
        print(collector.profiler.report())
    if args.trace:
        collector.write_trace(args.trace)
        print(f"\nwrote {args.trace} (open in https://ui.perfetto.dev or chrome://tracing)")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json(indent=2))
        print(f"wrote {args.json}")
    return 0


# -- self-check ---------------------------------------------------------------


def self_check(verbose: bool = True) -> List[str]:
    """Validate the telemetry path end to end; returns failure messages."""
    from repro.analysis.ipmctl import MediaCounters, read_media_counters
    from repro.sim.machine import machine_a
    from repro.sim.stats import RunResult
    from repro.workloads.registry import make_workload

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        if verbose:
            print(f"  {'ok ' if ok else 'FAIL'} {what}")
        if not ok:
            failures.append(what)

    def seeded_run(with_obs: bool):
        workload = make_workload("listing1")
        workload.iterations = 300
        collector = ObsCollector(interval=250.0) if with_obs else False
        result = workload.run(machine_a(), seed=7, obs=collector).run
        return result, collector

    result, collector = seeded_run(with_obs=True)
    timeline = result.timeline
    check(timeline is not None and len(timeline) > 1, "obs run produced a timeline")
    assert timeline is not None and collector
    ts = [s.t for s in timeline]
    check(all(a < b for a, b in zip(ts, ts[1:])), "timestamps strictly increasing")
    integrated = MediaCounters.from_timeline(timeline)
    final = read_media_counters(result)
    check(
        integrated == final,
        f"integrated device bytes == ipmctl counters ({integrated} vs {final})",
    )
    result2, _ = seeded_run(with_obs=True)
    check(
        result2.timeline is not None
        and [s.to_dict() for s in result2.timeline] == [s.to_dict() for s in timeline],
        "seeded timelines are deterministic",
    )
    trace = json.loads(collector.trace.to_json())
    check(
        isinstance(trace.get("traceEvents"), list) and len(trace["traceEvents"]) > 0,
        "trace JSON loads and has traceEvents",
    )
    check(
        all({"ph", "pid", "ts"} <= set(e) for e in trace["traceEvents"]),
        "every trace event carries ph/pid/ts",
    )
    restored = RunResult.from_json(result.to_json())
    check(
        restored.cycles == result.cycles
        and restored.timeline is not None
        and len(restored.timeline) == len(timeline)
        and restored.timeline.cumulative == timeline.cumulative,
        "RunResult JSON round-trip is lossless",
    )
    plain, _ = seeded_run(with_obs=False)
    check(plain.timeline is None, "obs-disabled run carries no timeline")

    # Export round trip: the collector's registry rendered as OpenMetrics
    # must parse back to exactly the snapshot the exporter started from,
    # render byte-identically a second time, and never leak a bare `nan`
    # (the §10 null convention on text surfaces).
    from repro.obs.export import export_snapshot, parse_openmetrics, render_openmetrics

    text = render_openmetrics(collector.registry)
    check(
        parse_openmetrics(text) == export_snapshot(collector.registry),
        "OpenMetrics render -> parse round-trips to the exact snapshot",
    )
    check(
        render_openmetrics(collector.registry) == text,
        "OpenMetrics render is byte-stable across calls",
    )
    check(
        not any(tok.lower() == "nan" for tok in text.split()),
        "OpenMetrics text carries no nan literals",
    )
    return failures


def _self_check_cmd(args: argparse.Namespace) -> int:
    print("repro.obs self-check:")
    failures = self_check(verbose=True)
    if failures:
        print(f"self-check FAILED ({len(failures)} failure(s))")
        return 1
    print("self-check OK")
    return 0


# -- entry point --------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry, trace export and profiling for simulated runs.",
    )
    parser.add_argument(
        "--self-check", action="store_true", help="alias for the self-check subcommand"
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run one workload with telemetry attached")
    run_p.add_argument("--workload", required=True, help="registry name (e.g. listing1, x9)")
    run_p.add_argument("--machine", default="a", choices=sorted(_MACHINES))
    run_p.add_argument("--mode", default="none", choices=["none", "clean", "demote", "skip"],
                       help="pre-store mode applied at every patch site")
    run_p.add_argument("--seed", type=int, default=1234)
    run_p.add_argument("--interval", type=float, default=1000.0,
                       help="sampling interval in simulated cycles")
    run_p.add_argument("--width", type=int, default=72, help="ASCII timeline width")
    run_p.add_argument("--trace", metavar="PATH", help="write a Perfetto .trace.json here")
    run_p.add_argument("--json", metavar="PATH", help="archive the RunResult as JSON here")
    run_p.add_argument("--profile", action="store_true",
                       help="wall-clock span profiling of the simulator hot loops")

    sub.add_parser("self-check", help="validate the telemetry pipeline end to end")

    args = parser.parse_args(argv)
    basic_config()
    if args.self_check or args.command == "self-check":
        return _self_check_cmd(args)
    if args.command == "run":
        return _run(args)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
