"""Structured logging and wall-clock span profiling.

Two concerns live here because they share the run/experiment context:

* **Logging** — :func:`get_logger` returns stdlib loggers under the
  ``repro.obs`` namespace whose records carry ``run_id`` and
  ``experiment_id`` fields, set with the :func:`run_context` context
  manager.  Handlers are the caller's business (a ``NullHandler`` is
  installed so an unconfigured library stays silent);
  :func:`basic_config` wires a stderr handler with the structured
  format for CLIs.

* **Span profiling** — :class:`SpanProfiler` measures *real wall-clock*
  time (``perf_counter``) spent in named phases, with self-time
  accounting: a parent span's self time excludes its children.  This is
  how we see where the *Python* time goes inside the simulator's hot
  loops (event dispatch, cache lookup, store-buffer drain) before
  optimising any of them.  :meth:`SpanProfiler.wrap` instruments a
  bound method on an *instance* — the class stays untouched, so
  profiling one machine never slows down another.

The simulator is single-threaded, so the context is a module-level
dict and the span stack is a plain list; no thread-local machinery.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "run_context",
    "current_context",
    "get_logger",
    "basic_config",
    "SpanStats",
    "SpanProfiler",
    "span",
    "default_profiler",
]

_LOG_ROOT = "repro.obs"

#: Ambient identifiers stamped onto every log record.  ``worker`` is the
#: executing process tag (``pid<N>``) set by :mod:`repro.runner` so
#: fan-in logs from a pool attribute each record to its process.
_context: Dict[str, Optional[str]] = {"run_id": None, "experiment_id": None, "worker": None}


@contextmanager
def run_context(
    run_id: Optional[str] = None,
    experiment_id: Optional[str] = None,
    worker: Optional[str] = None,
) -> Iterator[None]:
    """Set the ambient run/experiment/worker ids for logs emitted inside."""
    previous = dict(_context)
    if run_id is not None:
        _context["run_id"] = run_id
    if experiment_id is not None:
        _context["experiment_id"] = experiment_id
    if worker is not None:
        _context["worker"] = worker
    try:
        yield
    finally:
        _context.update(previous)


def current_context() -> Dict[str, Optional[str]]:
    """A copy of the ambient context (for tests and custom handlers)."""
    return dict(_context)


class _ContextFilter(logging.Filter):
    """Injects the ambient run/experiment ids into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _context["run_id"] or "-"
        record.experiment_id = _context["experiment_id"] or "-"
        record.worker = _context["worker"] or "-"
        return True


_FORMAT = (
    "%(levelname)s %(name)s run=%(run_id)s exp=%(experiment_id)s w=%(worker)s %(message)s"
)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro.obs`` namespace with context injection."""
    logger = logging.getLogger(f"{_LOG_ROOT}.{name}" if name else _LOG_ROOT)
    if not any(isinstance(f, _ContextFilter) for f in logger.filters):
        logger.addFilter(_ContextFilter())
    root = logging.getLogger(_LOG_ROOT)
    if not root.handlers:
        root.addHandler(logging.NullHandler())
    return logger


def basic_config(level: int = logging.INFO) -> None:
    """Attach a stderr handler with the structured format (CLI use)."""
    root = logging.getLogger(_LOG_ROOT)
    root.setLevel(level)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)


# -- span profiling -----------------------------------------------------------


@dataclass
class SpanStats:
    """Accumulated wall-clock time for one named phase."""

    name: str
    count: int = 0
    #: Inclusive seconds (children included).
    total_s: float = 0.0
    #: Exclusive seconds (children subtracted).
    self_s: float = 0.0

    def merge_exit(self, elapsed: float, child_time: float) -> None:
        self.count += 1
        self.total_s += elapsed
        self.self_s += elapsed - child_time


@dataclass
class _Frame:
    name: str
    start: float
    child_s: float = 0.0


class SpanProfiler:
    """Nesting-aware wall-clock phase timers.

    Use :meth:`span` around code regions, or :meth:`wrap` to instrument
    a method on one object instance.  ``stats()`` reports per-phase
    call counts, inclusive time, and self time.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stack: List[_Frame] = []
        self._stats: Dict[str, SpanStats] = {}
        self._wrapped: List[tuple] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        frame = _Frame(name, self._clock())
        self._stack.append(frame)
        try:
            yield
        finally:
            self._stack.pop()
            elapsed = self._clock() - frame.start
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = SpanStats(name)
            stats.merge_exit(elapsed, frame.child_s)
            if self._stack:
                self._stack[-1].child_s += elapsed

    def wrap(self, obj: object, attr: str, name: Optional[str] = None) -> None:
        """Time every call of ``obj.attr`` under ``name`` (instance-local)."""
        bound = getattr(obj, attr)
        span_name = name or f"{type(obj).__name__}.{attr}"
        profiler = self

        def timed(*args: object, **kwargs: object) -> object:
            with profiler.span(span_name):
                return bound(*args, **kwargs)

        timed.__wrapped__ = bound  # type: ignore[attr-defined]
        setattr(obj, attr, timed)
        self._wrapped.append((obj, attr, bound))

    def unwrap_all(self) -> None:
        """Restore every method instrumented via :meth:`wrap`."""
        for obj, attr, original in reversed(self._wrapped):
            setattr(obj, attr, original)
        self._wrapped.clear()

    def stats(self) -> Dict[str, SpanStats]:
        return dict(self._stats)

    def report(self) -> str:
        """Phases sorted by self time, aligned for terminals."""
        rows = sorted(self._stats.values(), key=lambda s: s.self_s, reverse=True)
        if not rows:
            return "(no spans recorded)"
        lines = [f"{'phase':32s} {'calls':>9s} {'total_ms':>10s} {'self_ms':>10s}"]
        for s in rows:
            lines.append(
                f"{s.name:32s} {s.count:9d} {1e3 * s.total_s:10.2f} {1e3 * s.self_s:10.2f}"
            )
        return "\n".join(lines)


#: Shared profiler for ad-hoc :func:`span` use in workloads/experiments.
default_profiler = SpanProfiler()


def span(name: str):
    """``with span("phase"):`` — times against :data:`default_profiler`."""
    return default_profiler.span(name)
