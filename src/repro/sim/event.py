"""Memory event model: the instruction stream seen by the simulator.

Workloads are generators of :class:`Event` objects.  The simulated CPU
consumes them, advancing its clock and mutating cache / store-buffer /
device state; DirtBuster's tracer observes the very same stream, which is
what makes the "PIN instrumentation" substitution faithful — both the
machine and the analysis see every load and store the program performs.

Each non-``COMPUTE`` event counts as exactly one retired instruction;
``COMPUTE(n)`` stands for ``n`` arithmetic instructions between memory
operations.  DirtBuster's re-read / re-write / fence distances (paper
Section 6.2.3) are measured in these instruction counts.

Two event representations exist for sequential access runs:

* the **reference** vocabulary — one READ/WRITE event per access, yielded
  individually by the workload generator; and
* the **batched** vocabulary — a single ``STREAM_READ``/``STREAM_WRITE``
  event (built with :meth:`Event.stream`) describing a whole run of
  back-to-back same-site accesses.  The machine expands a stream inside
  its scheduler loop, one access per ``chunk`` bytes, with semantics
  bit-identical to the per-event form (DESIGN.md §11).

``Event`` is a ``__slots__`` class with a validating constructor and
non-validating :meth:`Event.fast` / :meth:`Event.fast_access` factories
for the simulator's hot paths; workload-authored events should use the
normal constructor (or the :class:`~repro.workloads.memapi.ThreadCtx`
helpers), which still checks its arguments.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.core.prestore import PrestoreOp
from repro.errors import SimulationError

__all__ = ["EventKind", "CodeSite", "Event", "Mailbox", "UNKNOWN_SITE", "STREAM_KINDS"]


class EventKind(enum.Enum):
    """The vocabulary of simulated instructions."""

    READ = "read"
    WRITE = "write"
    #: ``n`` non-memory instructions (ALU work); advances time and the
    #: instruction counter but touches no cache state.
    COMPUTE = "compute"
    #: Memory fence.  ``fence_scope`` distinguishes a full/store fence
    #: (``mfence`` / ``dmb ish``: prior stores must be globally visible)
    #: from a load/acquire fence (``dmb ishld``: orders reads only and
    #: does not drain the store buffer).
    FENCE = "fence"
    #: Atomic read-modify-write (e.g. ``cmpxchg``, ``ldaxr``/``stlxr``
    #: pairs).  Has fence semantics, as the paper notes in Section 6.2.2.
    ATOMIC = "atomic"
    #: A ``prestore(addr, size, op)`` call.
    PRESTORE = "prestore"
    #: Publish a synchronisation timestamp (models the *effect* of a
    #: flag store the partner spins on).
    POST = "post"
    #: Spin until a POSTed key is available (models a spin-wait loop).
    WAIT = "wait"
    #: A batched run of sequential loads: one READ per ``chunk`` bytes,
    #: expanded by the machine scheduler (DESIGN.md §11).
    STREAM_READ = "stream_read"
    #: A batched run of sequential stores: one WRITE per ``chunk`` bytes.
    STREAM_WRITE = "stream_write"


#: The batched (stream) kinds; the scheduler expands these inline.
STREAM_KINDS = (EventKind.STREAM_READ, EventKind.STREAM_WRITE)

#: Stream kind -> the per-access kind its expansion produces.
_STREAM_ACCESS_KIND = {
    EventKind.STREAM_READ: EventKind.READ,
    EventKind.STREAM_WRITE: EventKind.WRITE,
}

_MEMORY_KINDS = frozenset((EventKind.READ, EventKind.WRITE, EventKind.ATOMIC))
_SIZED_KINDS = frozenset(
    (EventKind.READ, EventKind.WRITE, EventKind.PRESTORE, EventKind.ATOMIC)
)


class Mailbox:
    """Cross-thread synchronisation channel for workloads.

    A POST event records the posting core's clock under a key; a WAIT
    event blocks its core until the key exists, then advances the waiting
    core's clock to the post time (it could not have observed the flag
    earlier).  This models spin-wait handshakes (X9's inbox ring, barrier
    phases) without simulating every spin iteration.
    """

    def __init__(self) -> None:
        self._times: dict = {}

    def post(self, key, time: float) -> None:
        existing = self._times.get(key)
        if existing is None or time < existing:
            self._times[key] = time

    def get(self, key):
        return self._times.get(key)

    def __contains__(self, key) -> bool:
        return key in self._times


_ip_counter = itertools.count(0x400000)


@dataclass(frozen=True)
class CodeSite:
    """A synthetic program location: function, file, line, and a fake IP.

    Plays the role of the instruction pointer + debug info that perf and
    PIN report.  Sites are interned by the workload layer so that pointer
    equality works for grouping, but value equality is also defined.
    """

    function: str
    file: str = "<unknown>"
    line: int = 0
    ip: int = field(default_factory=lambda: next(_ip_counter))

    def __str__(self) -> str:
        return f"{self.function} at {self.file}:{self.line} (ip={self.ip:#x})"


#: Default site for events emitted outside any labelled function.
UNKNOWN_SITE = CodeSite(function="<unlabelled>", file="<unknown>", line=0)

_EVENT_FIELDS = (
    "kind",
    "addr",
    "size",
    "op",
    "nontemporal",
    "relaxed",
    "fence_scope",
    "mailbox",
    "sync_key",
    "site",
    "callchain",
    "chunk",
)


class Event:
    """One simulated instruction (or, for stream kinds, a run of them).

    ``addr``/``size`` describe the touched byte range for memory events.
    ``site`` and ``callchain`` carry the provenance DirtBuster needs;
    ``callchain`` is the tuple of caller sites, innermost last, exactly
    like a perf callchain.  ``chunk`` is only meaningful for stream
    events: the per-access byte granularity the run expands at.

    The class uses ``__slots__`` and a hand-written constructor instead
    of a dataclass: the simulator allocates millions of these, and the
    dataclass machinery (``__post_init__`` dispatch, ``__dict__``
    storage) was a measurable share of interpreter time.
    """

    __slots__ = _EVENT_FIELDS

    def __init__(
        self,
        kind: EventKind,
        addr: int = 0,
        size: int = 0,
        op: Optional[PrestoreOp] = None,
        nontemporal: bool = False,
        relaxed: bool = False,
        fence_scope: str = "full",
        mailbox: Optional[Mailbox] = None,
        sync_key: object = None,
        site: CodeSite = UNKNOWN_SITE,
        callchain: Tuple[CodeSite, ...] = (),
        chunk: int = 0,
    ) -> None:
        self.kind = kind
        self.addr = addr
        self.size = size
        self.op = op
        self.nontemporal = nontemporal
        self.relaxed = relaxed
        self.fence_scope = fence_scope
        self.mailbox = mailbox
        self.sync_key = sync_key
        self.site = site
        self.callchain = callchain
        self.chunk = chunk
        self._validate()

    def _validate(self) -> None:
        kind = self.kind
        if kind in _SIZED_KINDS:
            if self.size <= 0:
                raise SimulationError(f"{kind.value} event requires size > 0, got {self.size}")
            if self.addr < 0:
                raise SimulationError(f"{kind.value} event requires addr >= 0, got {self.addr}")
        if kind is EventKind.COMPUTE and self.size <= 0:
            raise SimulationError(f"compute event requires a positive instruction count, got {self.size}")
        if kind is EventKind.PRESTORE and self.op is None:
            raise SimulationError("prestore event requires an op (DEMOTE or CLEAN)")
        if self.nontemporal and kind not in (EventKind.WRITE, EventKind.STREAM_WRITE):
            raise SimulationError("only WRITE events can be non-temporal")
        if self.relaxed and kind not in (
            EventKind.READ,
            EventKind.WRITE,
            EventKind.STREAM_READ,
            EventKind.STREAM_WRITE,
        ):
            raise SimulationError("only READ/WRITE events can be marked relaxed")
        if kind in (EventKind.POST, EventKind.WAIT) and self.mailbox is None:
            raise SimulationError(f"{kind.value} event requires a mailbox")
        if kind in STREAM_KINDS:
            if self.size <= 0 or self.addr < 0:
                raise SimulationError(f"{kind.value} event requires addr >= 0 and size > 0")
            if self.chunk <= 0:
                raise SimulationError(f"{kind.value} event requires a positive chunk")

    # -- fast constructors (simulator-internal hot paths) ------------------

    @classmethod
    def fast(
        cls,
        kind: EventKind,
        addr: int = 0,
        size: int = 0,
        op: Optional[PrestoreOp] = None,
        nontemporal: bool = False,
        relaxed: bool = False,
        fence_scope: str = "full",
        mailbox: Optional[Mailbox] = None,
        sync_key: object = None,
        site: CodeSite = UNKNOWN_SITE,
        callchain: Tuple[CodeSite, ...] = (),
        chunk: int = 0,
    ) -> "Event":
        """Build an event without validation (trusted, machine-built input)."""
        ev = object.__new__(cls)
        ev.kind = kind
        ev.addr = addr
        ev.size = size
        ev.op = op
        ev.nontemporal = nontemporal
        ev.relaxed = relaxed
        ev.fence_scope = fence_scope
        ev.mailbox = mailbox
        ev.sync_key = sync_key
        ev.site = site
        ev.callchain = callchain
        ev.chunk = chunk
        return ev

    @classmethod
    def fast_access(
        cls,
        kind: EventKind,
        addr: int,
        size: int,
        nontemporal: bool,
        relaxed: bool,
        site: CodeSite,
        callchain: Tuple[CodeSite, ...],
    ) -> "Event":
        """Skip-validation READ/WRITE constructor for stream expansion."""
        ev = object.__new__(cls)
        ev.kind = kind
        ev.addr = addr
        ev.size = size
        ev.op = None
        ev.nontemporal = nontemporal
        ev.relaxed = relaxed
        ev.fence_scope = "full"
        ev.mailbox = None
        ev.sync_key = None
        ev.site = site
        ev.callchain = callchain
        ev.chunk = 0
        return ev

    @classmethod
    def stream(
        cls,
        kind: EventKind,
        addr: int,
        size: int,
        chunk: int,
        nontemporal: bool = False,
        relaxed: bool = False,
        site: CodeSite = UNKNOWN_SITE,
        callchain: Tuple[CodeSite, ...] = (),
    ) -> "Event":
        """A batched run of sequential accesses over ``[addr, addr+size)``.

        ``kind`` may be the per-access kind (READ/WRITE) or the stream
        kind directly.  The machine expands the run into one access per
        ``chunk`` bytes (the last access may be shorter), each counting
        as one retired instruction — exactly the sequence
        ``ThreadCtx.write_block``/``read_block`` would have yielded
        event-by-event.
        """
        if kind is EventKind.READ:
            kind = EventKind.STREAM_READ
        elif kind is EventKind.WRITE:
            kind = EventKind.STREAM_WRITE
        if kind not in STREAM_KINDS:
            raise SimulationError(f"stream events must be READ or WRITE runs, got {kind!r}")
        return cls(
            kind,
            addr=addr,
            size=size,
            chunk=chunk,
            nontemporal=nontemporal,
            relaxed=relaxed,
            site=site,
            callchain=callchain,
        )

    @property
    def access_kind(self) -> EventKind:
        """The per-access kind a stream expands to (identity otherwise)."""
        return _STREAM_ACCESS_KIND.get(self.kind, self.kind)

    def accesses(self) -> "Iterator[Event]":
        """Expand a stream into its per-access events (identity otherwise).

        Yields exactly the READ/WRITE sequence the machine scheduler
        executes for this event: one access per ``chunk`` bytes, the last
        possibly shorter, all carrying the stream's provenance.  Analyses
        that keep per-access state (the sanitizer passes, the crashcheck
        extractor) iterate this instead of special-casing stream kinds.
        """
        if self.kind not in STREAM_KINDS:
            yield self
            return
        kind = _STREAM_ACCESS_KIND[self.kind]
        step = self.chunk
        offset = 0
        while offset < self.size:
            length = min(step, self.size - offset)
            yield Event.fast_access(
                kind,
                self.addr + offset,
                length,
                self.nontemporal,
                self.relaxed,
                self.site,
                self.callchain,
            )
            offset += length

    @property
    def access_count(self) -> int:
        """Retired instructions this event stands for (streams: one per chunk)."""
        if self.kind in STREAM_KINDS:
            return -(-self.size // self.chunk)
        if self.kind is EventKind.COMPUTE:
            return self.size
        return 1

    # -- equality / repr ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in _EVENT_FIELDS)

    def __hash__(self) -> int:
        return hash((self.kind, self.addr, self.size, self.fence_scope, self.chunk))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.kind.name]
        for name in _EVENT_FIELDS[1:]:
            value = getattr(self, name)
            if value not in (0, None, False, (), "full", UNKNOWN_SITE):
                parts.append(f"{name}={value!r}")
        return f"Event({', '.join(parts)})"

    # -- classification -----------------------------------------------------

    @property
    def is_memory_access(self) -> bool:
        """True for events that read or write program data."""
        return self.kind in _MEMORY_KINDS

    @property
    def is_store(self) -> bool:
        """True for events that dirty program data (writes and atomics)."""
        return self.kind in (EventKind.WRITE, EventKind.ATOMIC)

    @property
    def has_fence_semantics(self) -> bool:
        """True for instructions that order *writes* (Section 6.2.2).

        Load/acquire fences order reads only; they neither drain the
        store buffer nor count as the paper's "instructions with fence
        semantics" for write-before-fence detection.
        """
        if self.kind is EventKind.ATOMIC:
            return True
        return self.kind is EventKind.FENCE and self.fence_scope == "full"

    def lines(self, line_size: int) -> range:
        """The cache-line numbers this event's byte range covers."""
        if not (
            self.is_memory_access
            or self.kind is EventKind.PRESTORE
            or self.kind in STREAM_KINDS
        ):
            return range(0)
        first = self.addr // line_size
        last = (self.addr + self.size - 1) // line_size
        return range(first, last + 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is EventKind.COMPUTE:
            return f"compute({self.size})"
        if self.kind is EventKind.FENCE:
            # Scope matters for diagnostics: a load/acquire fence neither
            # drains the store buffer nor orders writes.
            return f"fence({self.fence_scope})"
        extra = f", op={self.op}" if self.op else ""
        nt = ", nt" if self.nontemporal else ""
        rl = ", relaxed" if self.relaxed else ""
        if self.kind in STREAM_KINDS:
            return (
                f"{self.kind.value}(addr={self.addr:#x}, size={self.size}, "
                f"chunk={self.chunk}{nt}{rl})"
            )
        return f"{self.kind.value}(addr={self.addr:#x}, size={self.size}{extra}{nt}{rl})"
