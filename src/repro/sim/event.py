"""Memory event model: the instruction stream seen by the simulator.

Workloads are generators of :class:`Event` objects.  The simulated CPU
consumes them, advancing its clock and mutating cache / store-buffer /
device state; DirtBuster's tracer observes the very same stream, which is
what makes the "PIN instrumentation" substitution faithful — both the
machine and the analysis see every load and store the program performs.

Each non-``COMPUTE`` event counts as exactly one retired instruction;
``COMPUTE(n)`` stands for ``n`` arithmetic instructions between memory
operations.  DirtBuster's re-read / re-write / fence distances (paper
Section 6.2.3) are measured in these instruction counts.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.prestore import PrestoreOp
from repro.errors import SimulationError

__all__ = ["EventKind", "CodeSite", "Event", "Mailbox", "UNKNOWN_SITE"]


class EventKind(enum.Enum):
    """The vocabulary of simulated instructions."""

    READ = "read"
    WRITE = "write"
    #: ``n`` non-memory instructions (ALU work); advances time and the
    #: instruction counter but touches no cache state.
    COMPUTE = "compute"
    #: Memory fence.  ``fence_scope`` distinguishes a full/store fence
    #: (``mfence`` / ``dmb ish``: prior stores must be globally visible)
    #: from a load/acquire fence (``dmb ishld``: orders reads only and
    #: does not drain the store buffer).
    FENCE = "fence"
    #: Atomic read-modify-write (e.g. ``cmpxchg``, ``ldaxr``/``stlxr``
    #: pairs).  Has fence semantics, as the paper notes in Section 6.2.2.
    ATOMIC = "atomic"
    #: A ``prestore(addr, size, op)`` call.
    PRESTORE = "prestore"
    #: Publish a synchronisation timestamp (models the *effect* of a
    #: flag store the partner spins on).
    POST = "post"
    #: Spin until a POSTed key is available (models a spin-wait loop).
    WAIT = "wait"


class Mailbox:
    """Cross-thread synchronisation channel for workloads.

    A POST event records the posting core's clock under a key; a WAIT
    event blocks its core until the key exists, then advances the waiting
    core's clock to the post time (it could not have observed the flag
    earlier).  This models spin-wait handshakes (X9's inbox ring, barrier
    phases) without simulating every spin iteration.
    """

    def __init__(self) -> None:
        self._times: dict = {}

    def post(self, key, time: float) -> None:
        existing = self._times.get(key)
        if existing is None or time < existing:
            self._times[key] = time

    def get(self, key):
        return self._times.get(key)

    def __contains__(self, key) -> bool:
        return key in self._times


_ip_counter = itertools.count(0x400000)


@dataclass(frozen=True)
class CodeSite:
    """A synthetic program location: function, file, line, and a fake IP.

    Plays the role of the instruction pointer + debug info that perf and
    PIN report.  Sites are interned by the workload layer so that pointer
    equality works for grouping, but value equality is also defined.
    """

    function: str
    file: str = "<unknown>"
    line: int = 0
    ip: int = field(default_factory=lambda: next(_ip_counter))

    def __str__(self) -> str:
        return f"{self.function} at {self.file}:{self.line} (ip={self.ip:#x})"


#: Default site for events emitted outside any labelled function.
UNKNOWN_SITE = CodeSite(function="<unlabelled>", file="<unknown>", line=0)


@dataclass
class Event:
    """One simulated instruction.

    ``addr``/``size`` describe the touched byte range for memory events.
    ``site`` and ``callchain`` carry the provenance DirtBuster needs;
    ``callchain`` is the tuple of caller sites, innermost last, exactly
    like a perf callchain.
    """

    kind: EventKind
    addr: int = 0
    size: int = 0
    #: Pre-store operation; only meaningful for ``PRESTORE`` events.
    op: Optional[PrestoreOp] = None
    #: True for non-temporal ("cache skipping") stores.
    nontemporal: bool = False
    #: True for intentionally unsynchronised accesses (CLHT's lock-free
    #: bucket reads, Masstree's version-validated node reads).  Purely an
    #: annotation for :mod:`repro.sanitize` — the machine executes
    #: relaxed accesses exactly like plain ones; the race detector treats
    #: them like C11 atomics and does not report races involving them.
    relaxed: bool = False
    #: For FENCE events: "full" drains the store buffer, "load" only
    #: orders reads (cheap).
    fence_scope: str = "full"
    #: For POST/WAIT events: the mailbox and key to synchronise on.
    mailbox: Optional[Mailbox] = None
    sync_key: object = None
    site: CodeSite = UNKNOWN_SITE
    callchain: Tuple[CodeSite, ...] = ()

    def __post_init__(self) -> None:
        if self.kind in (EventKind.READ, EventKind.WRITE, EventKind.PRESTORE, EventKind.ATOMIC):
            if self.size <= 0:
                raise SimulationError(f"{self.kind.value} event requires size > 0, got {self.size}")
            if self.addr < 0:
                raise SimulationError(f"{self.kind.value} event requires addr >= 0, got {self.addr}")
        if self.kind is EventKind.COMPUTE and self.size <= 0:
            raise SimulationError(f"compute event requires a positive instruction count, got {self.size}")
        if self.kind is EventKind.PRESTORE and self.op is None:
            raise SimulationError("prestore event requires an op (DEMOTE or CLEAN)")
        if self.nontemporal and self.kind is not EventKind.WRITE:
            raise SimulationError("only WRITE events can be non-temporal")
        if self.relaxed and self.kind not in (EventKind.READ, EventKind.WRITE):
            raise SimulationError("only READ/WRITE events can be marked relaxed")
        if self.kind in (EventKind.POST, EventKind.WAIT) and self.mailbox is None:
            raise SimulationError(f"{self.kind.value} event requires a mailbox")

    @property
    def is_memory_access(self) -> bool:
        """True for events that read or write program data."""
        return self.kind in (EventKind.READ, EventKind.WRITE, EventKind.ATOMIC)

    @property
    def is_store(self) -> bool:
        """True for events that dirty program data (writes and atomics)."""
        return self.kind in (EventKind.WRITE, EventKind.ATOMIC)

    @property
    def has_fence_semantics(self) -> bool:
        """True for instructions that order *writes* (Section 6.2.2).

        Load/acquire fences order reads only; they neither drain the
        store buffer nor count as the paper's "instructions with fence
        semantics" for write-before-fence detection.
        """
        if self.kind is EventKind.ATOMIC:
            return True
        return self.kind is EventKind.FENCE and self.fence_scope == "full"

    def lines(self, line_size: int) -> range:
        """The cache-line numbers this event's byte range covers."""
        if not (self.is_memory_access or self.kind is EventKind.PRESTORE):
            return range(0)
        first = self.addr // line_size
        last = (self.addr + self.size - 1) // line_size
        return range(first, last + 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is EventKind.COMPUTE:
            return f"compute({self.size})"
        if self.kind is EventKind.FENCE:
            return "fence"
        extra = f", op={self.op}" if self.op else ""
        nt = ", nt" if self.nontemporal else ""
        return f"{self.kind.value}(addr={self.addr:#x}, size={self.size}{extra}{nt})"
