"""Machine assembly and the multi-core scheduler.

:class:`MachineSpec` bundles the geometry and timing of a whole platform;
:class:`Machine` instantiates it and runs event-generator "threads" on its
cores, interleaving them by simulated time — which is precisely the
mechanism that scrambles last-level-cache access order when several
threads write concurrently (Section 4.1: "The interleaving of the memory
accesses performed by the threads results in seemingly random memory
accesses at the Last Level Cache").

Presets model the paper's two platforms:

* :func:`machine_a` — Machine A: Xeon-like cores (64 B lines, TSO) in
  front of Optane persistent memory (256 B internal granularity).
* :func:`machine_b_fast` / :func:`machine_b_slow` — Machine B: Enzian,
  ThunderX-like cores (128 B lines, weak memory model) in front of
  cache-coherent FPGA memory at 60 cyc / 10 GB/s or 200 cyc / 1.5 GB/s.

Cache and working-set sizes are scaled down so pure-Python runs finish in
seconds; all experiments report relative numbers (see DESIGN.md §1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import CacheHierarchy, CacheLevel, CacheLevelSpec
from repro.sim.coherence import VisibilityModel
from repro.sim.cpu import Core
from repro.sim.event import STREAM_KINDS, Event, EventKind
from repro.sim.memory import (
    DeviceSpec,
    MemoryDevice,
    cxl_ssd_spec,
    dram_spec,
    fpga_spec,
    optane_pmem_spec,
)
from repro.sim.replacement import make_policy
from repro.sim.stats import RunResult

__all__ = [
    "MachineSpec",
    "Machine",
    "Tracer",
    "machine_a",
    "machine_a_cxl",
    "machine_b_fast",
    "machine_b_slow",
    "machine_dram",
]

#: A thread body: an iterator of events (usually a generator).
ThreadBody = Iterator[Event]


class Tracer:
    """Observer interface for DirtBuster.

    The machine calls :meth:`record` for every executed event with the
    executing core's retired-instruction index — the per-thread counter
    DirtBuster distances are measured in (Section 6.2.3; PIN counts
    instructions per thread) — and the cycles the event consumed, which
    timer-based samplers (perf) weight their samples by.
    """

    def record(
        self, core_id: int, event: Event, instr_index: int, cycles: float
    ) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class MachineSpec:
    """Full static description of a simulated platform."""

    name: str
    line_size: int
    memory_model: str  # "tso" or "weak"
    cache_levels: Tuple[CacheLevelSpec, ...]
    device: DeviceSpec
    replacement_policy: str = "intel-like"
    num_cores: int = 8
    store_buffer_capacity: int = 56
    #: Queued device-write cycles tolerated before stores stall.
    backlog_limit_cycles: float = 400.0
    #: Cost of the RMW part of an atomic, beyond ordering/acquisition.
    atomic_base_cost: int = 12
    #: Pipeline-drain tax on fence/atomic waits: every cycle a fence
    #: spends waiting for store visibility costs this many cycles of lost
    #: execution (retirement blocks, ROB fills, front end restarts).
    fence_stall_multiplier: float = 1.5
    cycles_per_compute: float = 0.5
    seed: int = 42

    def validate(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigurationError(f"line size must be a power of two, got {self.line_size}")
        if not self.cache_levels:
            raise ConfigurationError("a machine needs at least one cache level")
        if self.num_cores <= 0:
            raise ConfigurationError("a machine needs at least one core")
        for spec in self.cache_levels:
            spec.validate(self.line_size)
        self.device.validate()


class Machine:
    """A live simulated platform: caches + device + cores + scheduler."""

    def __init__(
        self,
        spec: MachineSpec,
        tracer: Optional[Tracer] = None,
        sanitizer: Optional[Tracer] = None,
        observers: Sequence[Tracer] = (),
    ) -> None:
        spec.validate()
        self.spec = spec
        self.line_size = spec.line_size
        self.device = MemoryDevice(spec.device)
        levels = [
            CacheLevel(
                ls,
                spec.line_size,
                make_policy(spec.replacement_policy, seed=spec.seed + i),
            )
            for i, ls in enumerate(spec.cache_levels)
        ]
        self.hierarchy = CacheHierarchy(levels, spec.line_size)
        self.visibility = VisibilityModel()
        self.cores = [Core(i, self) for i in range(spec.num_cores)]
        #: line -> core id of the last writer whose copy is still private
        #: (M/E state).  Accessing such a line from another core pays a
        #: directory round trip — on Machine B the directory lives on the
        #: FPGA, so producer/consumer line transfers cost a full device
        #: round trip (Section 4.2).  ``None`` = shared / at the point of
        #: unification (where demote pre-stores push data).
        self.line_owner: Dict[int, int] = {}
        self._instr_index = 0
        self._finished = False
        #: Every subscribed observer (DirtBuster tracers, sanitizers, obs
        #: samplers), in attach order.  ``_dispatch`` is the hot-path
        #: tuple mirror: an empty run costs one falsy check per event.
        self._observers: List[Tracer] = []
        self._dispatch: Tuple[Tracer, ...] = ()
        self._tracer: Optional[Tracer] = None
        self._sanitizer: Optional[Tracer] = None
        if tracer is not None:
            self.tracer = tracer
        if sanitizer is not None:
            self.attach_sanitizer(sanitizer)
        for observer in observers:
            self.attach_observer(observer)

    # -- observers ------------------------------------------------------------

    def attach_observer(self, observer: Tracer) -> None:
        """Subscribe an observer before :meth:`run`.

        Observers implement the :class:`Tracer` ``record`` interface and
        may additionally define ``attach(machine)`` (called now, for
        machine access) and ``finish(machine, result)`` (called once the
        run's statistics are snapshotted).  Any number may be attached
        simultaneously; they are invoked in attach order.
        """
        if self._finished:
            raise SimulationError("cannot attach an observer to a finished machine")
        attach = getattr(observer, "attach", None)
        if attach is not None:
            attach(self)
        self._observers.append(observer)
        self._dispatch = tuple(self._observers)

    def detach_observer(self, observer: Tracer) -> None:
        """Unsubscribe a previously attached observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)
            self._dispatch = tuple(self._observers)

    @property
    def observers(self) -> Tuple[Tracer, ...]:
        return self._dispatch

    @property
    def tracer(self) -> Optional[Tracer]:
        """The DirtBuster-style tracer slot (one per machine, replaceable)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Optional[Tracer]) -> None:
        if self._tracer is not None:
            self.detach_observer(self._tracer)
        self._tracer = tracer
        if tracer is not None:
            self.attach_observer(tracer)

    @property
    def sanitizer(self) -> Optional[Tracer]:
        """The sanitizer slot (kept for the ``sanitize=`` plumbing)."""
        return self._sanitizer

    def attach_sanitizer(self, sanitizer: Tracer) -> None:
        """Subscribe a sanitizer before :meth:`run` (gives it machine access)."""
        if self._sanitizer is not None:
            self.detach_observer(self._sanitizer)
        self._sanitizer = sanitizer
        self.attach_observer(sanitizer)

    # -- running --------------------------------------------------------------

    def run(self, bodies: Sequence[ThreadBody]) -> RunResult:
        """Execute thread bodies to completion and return statistics.

        Threads are assigned to cores round-robin (at most one thread per
        core) and interleaved by simulated time: at each step the thread
        whose core clock is smallest executes its next event.
        """
        if self._finished:
            raise SimulationError("Machine instances are single-use; build a new one per run")
        if not bodies:
            raise ConfigurationError("run() needs at least one thread body")
        if len(bodies) > len(self.cores):
            raise ConfigurationError(
                f"{len(bodies)} threads exceed the machine's {len(self.cores)} cores"
            )
        live: List[List] = [[self.cores[i], iter(body), None] for i, body in enumerate(bodies)]
        while live:
            entry = min(live, key=lambda e: e[0].clock)
            core, body, pending = entry
            event = pending if pending is not None else next(body, None)
            entry[2] = None
            if event is None:
                live.remove(entry)
                continue
            if event.kind is EventKind.WAIT:
                posted = event.mailbox.get(event.sync_key)
                if posted is None:
                    # Spin: advance past the next other-thread activity so
                    # the poster gets to run; re-check the same event.
                    others = [e[0].clock for e in live if e[0] is not core]
                    if not others:
                        raise SimulationError(
                            f"deadlock: waiting on {event.sync_key!r} with no "
                            "other runnable thread"
                        )
                    core.clock = max(core.clock, min(others)) + 1.0
                    entry[2] = event
                    continue
                core.clock = max(core.clock, posted)
                index = core.stats.instructions
                self._instr_index += 1
                core.stats.instructions += 1
                # Satisfied WAITs are observable: the sanitizer's
                # happens-before pass needs the post->wait edge (a plain
                # tracer sees them too, weighted at zero cycles).
                observers = self._dispatch
                if observers:
                    for observer in observers:
                        observer.record(core.stats.core_id, event, index, 0.0)
                continue
            if event.kind in STREAM_KINDS:
                # Expand the run here, in a tight loop, instead of paying
                # one generator round trip per access.  The core keeps
                # executing accesses only while its clock would still win
                # the min() pick above: strictly below every live thread
                # listed before it, at-or-below every one after (min()
                # returns the first minimal element).  Other cores' clocks
                # cannot change while this core runs, so the bounds stay
                # valid for the whole burst.
                strict = loose = math.inf
                seen = False
                for e in live:
                    if e is entry:
                        seen = True
                        continue
                    c = e[0].clock
                    if seen:
                        if c < loose:
                            loose = c
                    elif c < strict:
                        strict = c
                leftover = self._run_stream(core, event, strict, loose)
                if leftover is not None:
                    entry[2] = leftover
                continue
            self.step(core, event)
        return self.finish()

    def step(self, core: Core, event: Event) -> None:
        """Execute one event on one core (tracing included)."""
        if event.kind in STREAM_KINDS:
            # Direct callers (tests, tools) get the whole run at once.
            self._run_stream(core, event)
            return
        weight = event.size if event.kind is EventKind.COMPUTE else 1
        self._instr_index += weight
        index = core.stats.instructions  # per-core, pre-retirement
        before = core.clock
        core.execute(event)
        observers = self._dispatch
        if observers:
            for observer in observers:
                observer.record(core.stats.core_id, event, index, core.clock - before)

    def _run_stream(
        self,
        core: Core,
        event: Event,
        strict_limit: float = math.inf,
        loose_limit: float = math.inf,
    ) -> Optional[Event]:
        """Execute (part of) a stream event on ``core``.

        Returns ``None`` when the run completed, or the event mutated to
        its unexecuted tail when the scheduler bounds preempted it.

        Observer fan-out preserves per-access granularity: unless *every*
        attached observer declares ``accepts_streams = True``, the stream
        is unrolled through :meth:`step` one access at a time, so
        DirtBuster tracers, the sanitizer, and obs samplers see exactly
        the records the reference vocabulary produces.  With no
        observers (or only batch-aware ones) the fused core fast path
        runs; batch-aware observers then receive one record covering the
        executed portion of the run.
        """
        observers = self._dispatch
        if observers and not all(
            getattr(o, "accepts_streams", False) for o in observers
        ):
            return self._unroll_stream(core, event, strict_limit, loose_limit)
        start_addr, start_size = event.addr, event.size
        index = core.stats.instructions
        before = core.clock
        leftover = core.execute_stream(event, strict_limit, loose_limit)
        self._instr_index += core.stats.instructions - index
        if observers:
            executed = start_size - (leftover.size if leftover is not None else 0)
            if executed:
                if leftover is None:
                    record_event = event
                else:
                    record_event = Event.fast(
                        kind=event.kind,
                        addr=start_addr,
                        size=executed,
                        nontemporal=event.nontemporal,
                        relaxed=event.relaxed,
                        site=event.site,
                        callchain=event.callchain,
                        chunk=event.chunk,
                    )
                for observer in observers:
                    observer.record(
                        core.stats.core_id, record_event, index, core.clock - before
                    )
        return leftover

    def _unroll_stream(
        self, core: Core, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Expand a stream through :meth:`step`, one access per chunk.

        This is the observer-fidelity path: every access becomes a real
        READ/WRITE record (and a real ``step`` call, so span profilers
        that wrap ``step`` see it too).  Events share the stream's
        interned site, so provenance grouping is unchanged.
        """
        access_kind = (
            EventKind.READ if event.kind is EventKind.STREAM_READ else EventKind.WRITE
        )
        addr, size, chunk = event.addr, event.size, event.chunk
        nt, relaxed = event.nontemporal, event.relaxed
        site, chain = event.site, event.callchain
        offset = 0
        while offset < size:
            clock = core.clock
            if not (clock < strict_limit and clock <= loose_limit):
                event.addr = addr + offset
                event.size = size - offset
                return event
            length = chunk if size - offset >= chunk else size - offset
            self.step(
                core,
                Event.fast_access(access_kind, addr + offset, length, nt, relaxed, site, chain),
            )
            offset += length
        return None

    def finish(self) -> RunResult:
        """Drain caches and devices, then snapshot statistics."""
        if self._finished:
            raise SimulationError("finish() called twice")
        self._finished = True
        end = max((c.clock for c in self.cores), default=0.0)
        for line in self.hierarchy.drain_dirty_lines():
            self.device.write_back(line * self.line_size, self.line_size, end)
        self.device.flush(end)
        result = self._snapshot(end, self.device.quiesce_time(end))
        # Post-run observer hook: samplers capture the drain tail and
        # publish ``result.timeline``; trace builders emit counters.
        for observer in self._dispatch:
            finish = getattr(observer, "finish", None)
            if finish is not None:
                finish(self, result)
        return result

    def abort(self) -> RunResult:
        """Snapshot statistics *without* draining: crash semantics.

        At a simulated power failure nothing gets written back — caches,
        store buffers and device queues are simply abandoned, so the
        persistent image the fault harness captures afterwards reflects
        only what already crossed the device boundary.  Observers'
        ``finish`` hooks still run (samplers publish their timelines);
        the machine is finished afterwards (single-use, like
        :meth:`finish`).
        """
        if self._finished:
            raise SimulationError("abort() called on a finished machine")
        self._finished = True
        end = max((c.clock for c in self.cores), default=0.0)
        result = self._snapshot(end, end)
        for observer in self._dispatch:
            finish = getattr(observer, "finish", None)
            if finish is not None:
                finish(self, result)
        return result

    def _snapshot(self, cycles: float, cycles_with_drain: float) -> RunResult:
        for core in self.cores:
            core.stats.cycles = core.clock
        dev = self.device.stats
        return RunResult(
            machine_name=self.spec.name,
            cycles=cycles,
            cycles_with_drain=cycles_with_drain,
            instructions=sum(c.stats.instructions for c in self.cores),
            cores=[c.stats for c in self.cores],
            cache_hits={l.spec.name: l.stats.hits for l in self.hierarchy.levels},
            cache_misses={l.spec.name: l.stats.misses for l in self.hierarchy.levels},
            cache_evictions={l.spec.name: l.stats.evictions for l in self.hierarchy.levels},
            cache_dirty_evictions={
                l.spec.name: l.stats.dirty_evictions for l in self.hierarchy.levels
            },
            device_writebacks=dev.writebacks_received,
            device_bytes_received=dev.bytes_received,
            device_media_bytes_written=dev.media_bytes_written,
            device_reads=dev.reads,
            device_bytes_read=dev.bytes_read,
        )

    @property
    def instruction_count(self) -> int:
        """Retired instructions so far (the DirtBuster distance clock)."""
        return self._instr_index


# -- presets ---------------------------------------------------------------


def _xeon_levels(llc_kb: int) -> Tuple[CacheLevelSpec, ...]:
    return (
        CacheLevelSpec(name="L1", size_bytes=32 * 1024, ways=8, hit_latency=4),
        CacheLevelSpec(name="L2", size_bytes=128 * 1024, ways=8, hit_latency=14),
        CacheLevelSpec(name="LLC", size_bytes=llc_kb * 1024, ways=16, hit_latency=40, hashed_index=True),
    )


def machine_a(
    llc_kb: int = 512,
    num_cores: int = 10,
    pmem_bandwidth: float = 1.1,
    seed: int = 42,
) -> MachineSpec:
    """Machine A: Xeon Gold-like cores caching Optane persistent memory.

    64 B cache lines in front of a 256 B-granularity medium, TSO
    visibility, Intel-like (PLRU + random) replacement.  The LLC is scaled
    down (default 512 KB vs. the real 27.5 MB) to match scaled workloads.
    """
    return MachineSpec(
        name="machine-A",
        line_size=64,
        memory_model="tso",
        cache_levels=_xeon_levels(llc_kb),
        device=optane_pmem_spec(bandwidth=pmem_bandwidth),
        replacement_policy="intel-like",
        num_cores=num_cores,
        backlog_limit_cycles=400.0,
        seed=seed,
    )


def machine_dram(llc_kb: int = 512, num_cores: int = 10, seed: int = 42) -> MachineSpec:
    """Machine A's geometry with conventional DRAM behind the caches.

    The control platform: 64 B internal granularity means no write
    amplification, so pre-stores should change little — used by overhead
    experiments and tests.
    """
    return MachineSpec(
        name="machine-A-dram",
        line_size=64,
        memory_model="tso",
        cache_levels=_xeon_levels(llc_kb),
        device=dram_spec(),
        replacement_policy="intel-like",
        num_cores=num_cores,
        seed=seed,
    )


def machine_a_cxl(
    llc_kb: int = 512,
    num_cores: int = 10,
    granularity: int = 512,
    seed: int = 42,
) -> MachineSpec:
    """Machine A's CPU in front of byte-addressable CXL-attached storage.

    The architecture the paper's introduction motivates as the coming
    norm (Section 3, Table 1): same x86 cores and caches as Machine A,
    but the cached medium is a CXL SSD with a 256B/512B internal write
    unit, higher latency, and lower bandwidth than Optane — write
    amplification and visibility costs are both amplified.
    """
    return MachineSpec(
        name=f"machine-A-cxl{granularity}",
        line_size=64,
        memory_model="tso",
        cache_levels=_xeon_levels(llc_kb),
        device=cxl_ssd_spec(granularity=granularity),
        replacement_policy="intel-like",
        num_cores=num_cores,
        backlog_limit_cycles=600.0,
        seed=seed,
    )


def _thunderx_levels(l2_kb: int) -> Tuple[CacheLevelSpec, ...]:
    return (
        CacheLevelSpec(name="L1", size_bytes=32 * 1024, ways=8, hit_latency=4),
        CacheLevelSpec(name="L2", size_bytes=l2_kb * 1024, ways=16, hit_latency=30, hashed_index=True),
    )


def _machine_b(
    name: str, fpga_latency: int, fpga_bandwidth: float, l2_kb: int, num_cores: int, seed: int
) -> MachineSpec:
    return MachineSpec(
        name=name,
        line_size=128,
        memory_model="weak",
        cache_levels=_thunderx_levels(l2_kb),
        device=fpga_spec(read_latency=fpga_latency, bandwidth=fpga_bandwidth, line_size=128),
        replacement_policy="arm-like",
        num_cores=num_cores,
        backlog_limit_cycles=600.0,
        atomic_base_cost=20,
        seed=seed,
    )


def machine_b_fast(l2_kb: int = 512, num_cores: int = 12, seed: int = 42) -> MachineSpec:
    """Machine B-Fast: Enzian with the FPGA at 60 cycles / 10 GB/s.

    10 GB/s at ~2 GHz is ~5 bytes/cycle.  Representative of future
    high-end CXL-accessible memory (Section 3).
    """
    return _machine_b("machine-B-fast", 60, 5.0, l2_kb, num_cores, seed)


def machine_b_slow(l2_kb: int = 512, num_cores: int = 12, seed: int = 42) -> MachineSpec:
    """Machine B-Slow: the FPGA at 200 cycles / 1.5 GB/s (~0.75 B/cyc).

    Representative of medium-tier CXL-accessible storage (Section 3).
    """
    return _machine_b("machine-B-slow", 200, 0.75, l2_kb, num_cores, seed)
