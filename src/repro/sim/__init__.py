"""Memory-hierarchy simulator: the hardware substrate of the reproduction.

Substitutes for the paper's physical Machines A and B; see DESIGN.md §1
for the substitution argument and §4 for the semantics.
"""

from repro.sim.cache import CacheHierarchy, CacheLevel, CacheLevelSpec
from repro.sim.coherence import VisibilityModel
from repro.sim.event import CodeSite, Event, EventKind, STREAM_KINDS, UNKNOWN_SITE
from repro.sim.machine import (
    Machine,
    MachineSpec,
    Tracer,
    machine_a,
    machine_a_cxl,
    machine_b_fast,
    machine_b_slow,
    machine_dram,
)
from repro.sim.memory import (
    DeviceSpec,
    MemoryDevice,
    cxl_ssd_spec,
    dram_spec,
    fpga_spec,
    optane_pmem_spec,
)
from repro.sim.replacement import make_policy
from repro.sim.stats import CoreStats, RunResult
from repro.sim.store_buffer import StoreBuffer

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheLevelSpec",
    "CodeSite",
    "CoreStats",
    "DeviceSpec",
    "Event",
    "EventKind",
    "Machine",
    "MachineSpec",
    "MemoryDevice",
    "RunResult",
    "STREAM_KINDS",
    "StoreBuffer",
    "Tracer",
    "UNKNOWN_SITE",
    "VisibilityModel",
    "cxl_ssd_spec",
    "dram_spec",
    "fpga_spec",
    "machine_a",
    "machine_a_cxl",
    "machine_b_fast",
    "machine_b_slow",
    "machine_dram",
    "make_policy",
    "optane_pmem_spec",
]
