"""Private CPU store buffers and the two store-visibility disciplines.

Section 4.2: "When writing data, CPUs are allowed to keep the changes
private, as long as the changes do not break the memory ordering
constraints of the architecture. [...] CPUs tend to keep modifications
private and only advertise them when they run out of private buffer space
or when they are forced to by the memory model."

Two disciplines are modelled:

``tso`` (Machine A, x86)
    Stores start their visibility round trip as soon as they enter the
    buffer, in program order but pipelined.  A fence usually finds them
    already visible — which is why the paper expects "little gain" from
    demotion on Machine A (Section 6.2.3).

``weak`` (Machine B, ARM)
    Stores park in the buffer.  Visibility round trips start only at a
    fence/atomic, at a *demote* pre-store, or when the buffer overflows —
    so a fence right after a write eats the whole round trip, and an
    early demote overlaps it with subsequent work (Figure 4).

Per-entry state is one value: the buffer is an insertion-ordered mapping
``line -> visible_time`` where ``None`` marks a parked store (round trip
not started).  Keeping the column flat — rather than an entry object per
store — is what lets the fused store loop in :mod:`repro.sim.cpu` run a
store in a handful of dict operations (DESIGN.md §15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["StoreBufferStats", "StoreBuffer", "MEMORY_MODELS"]

MEMORY_MODELS = ("tso", "weak")

#: Callback computing one store's visibility latency at the moment its
#: round trip starts: ``(line) -> cycles``.  Provided by the CPU, which
#: knows the cache state and the device.
VisibilityFn = Callable[[int], int]


@dataclass
class StoreBufferStats:
    stores_buffered: int = 0
    coalesced: int = 0
    demotes_started: int = 0
    overflow_drains: int = 0
    fence_drains: int = 0
    #: Total cycles some fence/atomic spent waiting for visibility.
    fence_stall_cycles: float = 0.0


class StoreBuffer:
    """Bounded per-core buffer of not-yet-globally-visible stores.

    ``_pending`` maps line -> visibility horizon (absolute cycle, or
    ``None`` while parked), in insertion order; one buffered store per
    cache line (stores coalesce).
    """

    def __init__(self, model: str, capacity: int = 56) -> None:
        if model not in MEMORY_MODELS:
            raise ConfigurationError(f"memory model must be one of {MEMORY_MODELS}, got {model!r}")
        if capacity <= 0:
            raise ConfigurationError(f"store buffer capacity must be positive, got {capacity}")
        self.model = model
        self.capacity = capacity
        #: Plain dict in insertion = FIFO order; coalescing hits refresh
        #: position by delete-and-reinsert.
        self._pending: "dict[int, Optional[float]]" = {}
        #: Visibility pipeline horizon: round trips retire in order.
        self._pipeline_tail = 0.0
        self.stats = StoreBufferStats()

    # -- queries -----------------------------------------------------------

    def contains(self, line: int) -> bool:
        """Store-to-load forwarding check."""
        return line in self._pending

    def occupancy(self) -> int:
        return len(self._pending)

    def pending_lines(self) -> List[int]:
        return list(self._pending)

    def visibility_of(self, line: int) -> Optional[float]:
        """Visibility horizon of a buffered store to ``line``.

        Returns ``None`` when no store to ``line`` is buffered,
        ``math.inf`` while the store is *parked* (its visibility round
        trip has not started — only possible under the weak model), and
        the absolute cycle it becomes globally visible otherwise.  This
        is the introspection hook the memory-consistency sanitizer uses
        to flag reads of another core's still-invisible store.
        """
        if line not in self._pending:
            return None
        visible = self._pending[line]
        if visible is None:
            return math.inf
        return visible

    def parked_lines(self) -> List[int]:
        """Lines whose buffered store has not started its round trip."""
        return [line for line, visible in self._pending.items() if visible is None]

    def peek_oldest(self) -> Optional[Tuple[int, Optional[float]]]:
        """The front (oldest) ``(line, visible_time)``, or None when empty.

        Slots free in FIFO order, so this is the entry an overflow will
        force visible next.
        """
        if not self._pending:
            return None
        return next(iter(self._pending.items()))

    # -- the write path ------------------------------------------------------

    def write(self, line: int, now: float, visibility: VisibilityFn) -> float:
        """Buffer a store to ``line``; returns the stall, in cycles.

        Coalesces with an already-buffered store to the same line.  On
        overflow the oldest entry is forced visible and the core stalls
        until a slot frees (the "runs out of private buffer space" case).
        """
        self.stats.stores_buffered += 1
        self._prune(now)
        pending = self._pending
        if line in pending:
            self.stats.coalesced += 1
            visible = pending[line]
            del pending[line]  # re-insert to refresh FIFO position
            pending[line] = visible
            return 0.0
        stall = 0.0
        if len(pending) >= self.capacity:
            oldest_line, oldest_visible = next(iter(pending.items()))
            if oldest_visible is None:
                oldest_visible = self._start_visibility(oldest_line, now, visibility)
            stall = max(0.0, oldest_visible - now)
            del pending[oldest_line]
            self.stats.overflow_drains += 1
        pending[line] = None
        if self.model == "tso":
            # TSO: the round trip starts immediately, pipelined in order.
            self._start_visibility(line, now + stall, visibility)
        return stall

    def _prune(self, now: float) -> None:
        """Retire front entries whose visibility round trip has finished.

        Buffer slots free in FIFO order as stores become globally
        visible; without pruning, a fence-free TSO program would pin its
        first ``capacity`` lines in the buffer forever.
        """
        pending = self._pending
        while pending:
            line, visible = next(iter(pending.items()))
            if visible is None or visible > now:
                break
            del pending[line]

    def _start_visibility(self, line: int, now: float, visibility: VisibilityFn) -> float:
        """Start (or look up) the round trip of a buffered store.

        Returns the absolute cycle the store becomes visible.
        """
        visible = self._pending[line]
        if visible is not None:
            return visible
        latency = visibility(line)
        # Round trips pipeline but retire in program order: a store may
        # not become visible before its predecessors.
        visible = max(now + latency, self._pipeline_tail)
        self._pending[line] = visible
        self._pipeline_tail = visible
        return visible

    # -- pre-store and fence paths -------------------------------------------

    def demote(self, line: int, now: float, visibility: VisibilityFn) -> bool:
        """Start the visibility round trip for ``line`` now (non-blocking).

        This is the store-buffer half of a *demote* pre-store: the write
        is pushed towards a globally visible cache level in the
        background.  Returns True if a parked store was found.
        """
        if line not in self._pending or self._pending[line] is not None:
            return False
        self._start_visibility(line, now, visibility)
        self.stats.demotes_started += 1
        return True

    def demote_all(self, now: float, visibility: VisibilityFn) -> int:
        """Demote every parked store; returns how many started."""
        started = 0
        for line, visible in self._pending.items():
            if visible is None:
                self._start_visibility(line, now, visibility)
                self.stats.demotes_started += 1
                started += 1
        return started

    def drain(self, now: float, visibility: VisibilityFn) -> float:
        """Fence: make everything visible; returns the completion time.

        Parked entries start their round trips at ``now`` (pipelined);
        the fence completes when the youngest entry is visible.
        """
        self.stats.fence_drains += 1
        done = float(now)
        for line, visible in self._pending.items():
            if visible is None:
                visible = self._start_visibility(line, now, visibility)
            done = max(done, visible)
        self._pending.clear()
        self.stats.fence_stall_cycles += done - now
        return done

    def evict_line(self, line: int) -> None:
        """Forget a pending store (its line left the hierarchy)."""
        self._pending.pop(line, None)
