"""Store-visibility cost model (the coherence directory).

Section 4.2 explains why making a write globally visible is expensive on
long-latency memories: the cache must (a) acquire the line in exclusive
mode — and "in many modern cache implementations, the cache directory is
located on the cached device", so this is a device round trip — and (b)
read the full cache line prior to updating it, another device round trip
if the line is not already cached.

:class:`VisibilityModel` turns (device, cache-state) into the number of
cycles a pending store needs before it is globally visible.  It is shared
by the store buffer (fences, demotes) and the atomics path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.memory import MemoryDevice

__all__ = ["VisibilityModel"]


@dataclass
class VisibilityModel:
    """Computes visibility latency for one store.

    ``sram_directory_latency`` is the cost of a directory update when the
    directory is *not* device-resident (conventional on-die snoop filter);
    ``local_publish_latency`` is the cost of pushing data from private CPU
    buffers into a globally visible cache level once ownership is held.
    """

    sram_directory_latency: int = 12
    local_publish_latency: int = 4

    def visibility_latency(self, device: MemoryDevice, line_cached_exclusive: bool) -> int:
        """Cycles from 'start making this store visible' to 'visible'.

        Two serial phases, both device-latency-bound when the directory
        lives on the device (Section 4.2's bullet list):

        1. the directory update acquiring the line in exclusive mode, and
        2. the read of the full line before updating it — skipped when the
           line is already cached in an exclusive/modified state.
        """
        directory = device.directory_latency or self.sram_directory_latency
        fill = 0 if line_cached_exclusive else device.spec.read_latency
        return directory + fill + self.local_publish_latency
