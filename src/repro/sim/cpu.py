"""The simulated core: executes event streams against the machine state.

Each :class:`Core` owns a clock and a private store buffer and shares the
cache hierarchy and memory device with its siblings.  The execution rules
implement the paper's cost model:

* loads hit the store buffer (forwarding) or walk the hierarchy; misses
  pay the device read latency;
* stores cost one cycle into the store buffer; the line is fetched into
  the cache (write-allocate) when its *visibility* round trip starts —
  immediately under TSO, lazily (fence / demote / overflow) under the weak
  model;
* fences and atomics block until every buffered store is globally
  visible, which is where delayed visibility hurts (Problem #2);
* dirty lines evicted from the last level, cleaned by ``clwb``-style
  pre-stores, or written non-temporally flow to the device, whose
  write-combiner and bandwidth queue turn eviction *order* into write
  amplification and backpressure (Problem #1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.prestore import CYCLES_PER_PRESTORE, PrestoreOp
from repro.errors import SimulationError
from repro.sim.event import Event, EventKind
from repro.sim.stats import CoreStats
from repro.sim.store_buffer import StoreBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

__all__ = ["Core"]

#: Store-to-load forwarding latency, cycles.
FORWARD_LATENCY = 1
#: Base cost of executing one store into the buffer, cycles.
STORE_ISSUE_COST = 1
#: Base cost of a fence instruction itself (excluding visibility waits).
FENCE_ISSUE_COST = 2


class Core:
    """One simulated CPU core."""

    def __init__(self, core_id: int, machine: "Machine") -> None:
        self.machine = machine
        self.clock = 0.0
        self.stats = CoreStats(core_id=core_id)
        self.store_buffer = StoreBuffer(
            model=machine.spec.memory_model,
            capacity=machine.spec.store_buffer_capacity,
        )

    # -- helpers -------------------------------------------------------------

    @property
    def core_id(self) -> int:
        return self.stats.core_id

    def _transfer_cost(self, line: int) -> int:
        """Cost of pulling a line out of another core's private copy.

        The directory resolving the transfer is device-resident on both
        evaluation platforms (Section 4.2), so the transfer pays a device
        round trip.  Demote/clean pre-stores push lines to the shared
        point of unification, which is exactly what removes this cost for
        consumers (the X9 case).
        """
        machine = self.machine
        owner = machine.line_owner.get(line)
        if owner is None or owner == self.core_id:
            return 0
        return machine.device.directory_latency or machine.visibility.sram_directory_latency

    def _visibility_latency(self, line: int) -> int:
        """Start a visibility round trip for a buffered store to ``line``.

        Side effect: the line is installed (dirty) into the hierarchy —
        this is the moment the write leaves private buffers and becomes a
        cache-resident modification.  Fill/eviction traffic triggered here
        is charged like any other fill.
        """
        machine = self.machine
        cached = machine.hierarchy.contains(line)
        latency = machine.visibility.visibility_latency(machine.device, cached)
        result = machine.hierarchy.access_line(line, is_write=True)
        if result.memory_access:
            # The read-for-ownership really fetches the line from the
            # device: it occupies media bandwidth (in the background, so
            # no core stall here) — the traffic non-temporal stores avoid.
            machine.device.read(line * machine.line_size, machine.line_size, self.clock)
        machine.line_owner[line] = self.core_id
        self._emit_writebacks(result.writebacks)
        return latency

    def _emit_writebacks(self, lines: Iterable[int]) -> None:
        """Send dirty LLC evictions to the device.

        No stall here: demand reads have priority over the write backlog
        on real memory controllers, so eviction traffic triggered by a
        read does not block the reader.  The backlog is paid by the next
        *store* (see :meth:`_apply_backpressure`), which is also where
        perf attributes the time — "time issuing store instructions".
        """
        machine = self.machine
        for line in lines:
            machine.device.write_back(line * machine.line_size, machine.line_size, self.clock)
            self.store_buffer.evict_line(line)

    def _apply_backpressure(self) -> None:
        """Stall when the device write queue exceeds the allowed backlog.

        This is how write amplification becomes lost throughput: amplified
        media writes queue up, the backlog crosses the threshold, and the
        writer core waits (Figure 3's multi-thread regime).
        """
        machine = self.machine
        backlog = machine.device.backlog(self.clock)
        excess = backlog - machine.spec.backlog_limit_cycles
        if excess > 0:
            self.clock += excess
            self.stats.backpressure_stall_cycles += excess

    # -- event execution -------------------------------------------------------

    def execute(self, event: Event) -> None:
        """Run one instruction, advancing the core clock."""
        kind = event.kind
        if kind is EventKind.COMPUTE:
            self.stats.instructions += event.size
            self.clock += event.size * self.machine.spec.cycles_per_compute
            return
        self.stats.instructions += 1
        if kind is EventKind.READ:
            self._do_read(event)
        elif kind is EventKind.WRITE:
            if event.nontemporal:
                self._do_nontemporal_write(event)
            else:
                self._do_write(event)
        elif kind is EventKind.FENCE:
            self._do_fence(event)
        elif kind is EventKind.ATOMIC:
            self._do_atomic(event)
        elif kind is EventKind.PRESTORE:
            self._do_prestore(event)
        elif kind is EventKind.POST:
            event.mailbox.post(event.sync_key, self.clock)
            self.clock += 1
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown event kind {kind!r}")

    # -- loads -----------------------------------------------------------------

    def _do_read(self, event: Event) -> None:
        """Execute a load.

        A multi-line read event models a streamed access (vectorised loop
        body, value scan): its line fills pipeline — they serialise on
        media occupancy but pay the device latency only once, as hardware
        prefetchers and fill buffers achieve on real CPUs.  Single-line
        reads behave identically (one fill, one latency).
        """
        machine = self.machine
        self.stats.reads += 1
        hit_latency = 0.0
        mem_done = self.clock
        for line in event.lines(machine.line_size):
            if self.store_buffer.contains(line):
                hit_latency = max(hit_latency, FORWARD_LATENCY)
                continue
            transfer = self._transfer_cost(line)
            if transfer:
                # Reading another core's private copy: the line becomes
                # shared once transferred.
                machine.line_owner.pop(line, None)
            result = machine.hierarchy.access_line(line, is_write=False)
            hit_latency = max(hit_latency, float(result.latency) + transfer)
            if result.memory_access:
                done = machine.device.read(line * machine.line_size, machine.line_size, self.clock)
                mem_done = max(mem_done, done)
            self._emit_writebacks(result.writebacks)
        wait = max(hit_latency, mem_done - self.clock)
        if mem_done > self.clock:
            self.stats.memory_read_cycles += mem_done - self.clock
        self.clock += wait

    # -- stores ----------------------------------------------------------------

    def _do_write(self, event: Event) -> None:
        machine = self.machine
        self.stats.writes += 1
        self.clock += STORE_ISSUE_COST
        for line in event.lines(machine.line_size):
            if machine.hierarchy.contains(line):
                # The line is already cache-resident: this store dirties it
                # now (a previous clean pre-store must not hide the new
                # modification).  Store latency itself is pipelined away.
                machine.hierarchy.access_line(line, is_write=True)
                machine.line_owner[line] = self.core_id
            stall = self.store_buffer.write(line, self.clock, self._visibility_latency)
            if stall > 0:
                self.clock += stall
                self.stats.store_buffer_stall_cycles += stall
        self._apply_backpressure()

    def _do_nontemporal_write(self, event: Event) -> None:
        """A cache-skipping store: straight to the device, in program order.

        Because non-temporal stores arrive at the device in the order the
        program issued them, sequential NT streams merge perfectly in the
        device combiner.  The cached copy (if any) is invalidated, so a
        later read of this data pays a full device round trip — the
        re-read penalty the paper observes when skipping re-used data.
        """
        machine = self.machine
        self.stats.writes += 1
        self.stats.nontemporal_writes += 1
        self.clock += STORE_ISSUE_COST
        for line in event.lines(machine.line_size):
            machine.hierarchy.invalidate_line(line)
            machine.line_owner.pop(line, None)
            self.store_buffer.evict_line(line)
        machine.device.write_back(event.addr, event.size, self.clock)
        self._apply_backpressure()

    # -- ordering ----------------------------------------------------------------

    def _do_fence(self, event: Event) -> None:
        self.stats.fences += 1
        self.clock += FENCE_ISSUE_COST
        if event.fence_scope == "load":
            # Acquire fence: orders reads only.  Our loads execute in
            # order already, so the issue cost is the whole story.
            return
        done = self.store_buffer.drain(self.clock, self._visibility_latency)
        self._stall_for_ordering(done)

    def _stall_for_ordering(self, visible_at: float) -> None:
        """Block until ``visible_at``, paying the pipeline-drain tax.

        A fence that has to *wait* does more damage than the wait itself:
        retirement blocks, the ROB fills, and the front end restarts once
        drained.  The multiplier models that restart cost growing with the
        stall — it is what makes last-minute publication (Figure 4a) more
        expensive than the early, overlapped round trip of a demote.
        """
        stall = visible_at - self.clock
        if stall > 0:
            stall *= self.machine.spec.fence_stall_multiplier
            self.clock += stall
            self.stats.fence_stall_cycles += stall

    def _do_atomic(self, event: Event) -> None:
        """RMW with fence semantics (cmpxchg and friends, Section 6.2.2).

        The store-buffer drain and the exclusive acquisition of the
        target line overlap, as they do in hardware: the RFO for the CAS
        target is issued while earlier stores become visible.  This is
        why pre-storing ahead of the atomic removes the drain from the
        critical path (Section 7.3.1's "reducing the time spent in the
        atomic instructions of the lock by 74%").
        """
        machine = self.machine
        self.stats.atomics += 1
        # All prior stores must be visible before the RMW completes.
        done = self.store_buffer.drain(self.clock, self._visibility_latency)
        drain_stall = max(0.0, done - self.clock) * machine.spec.fence_stall_multiplier
        # Acquire the target line exclusively (concurrently).
        line = machine.hierarchy.line_of(event.addr)
        transfer = self._transfer_cost(line)
        result = machine.hierarchy.access_line(line, is_write=True)
        machine.line_owner[line] = self.core_id
        acquire = float(result.latency) + transfer
        if result.memory_access:
            read_done = machine.device.read(line * machine.line_size, machine.line_size, self.clock)
            acquire += read_done - self.clock
        self._emit_writebacks(result.writebacks)
        wait = max(drain_stall, acquire)
        if drain_stall > acquire:
            self.stats.fence_stall_cycles += drain_stall - acquire
        self.clock += wait + machine.spec.atomic_base_cost

    # -- pre-stores ----------------------------------------------------------------

    def _do_prestore(self, event: Event) -> None:
        machine = self.machine
        self.stats.prestores += 1
        if event.op is PrestoreOp.DEMOTE:
            for line in event.lines(machine.line_size):
                self.clock += CYCLES_PER_PRESTORE
                started = self.store_buffer.demote(line, self.clock, self._visibility_latency)
                if not started:
                    # Nothing parked: demote the cached copy down-hierarchy.
                    machine.hierarchy.demote_line(line)
                # Demotion pushes the line to the point of unification:
                # other cores can now pull it without a transfer.
                machine.line_owner.pop(line, None)
        elif event.op is PrestoreOp.CLEAN:
            wrote = False
            for line in event.lines(machine.line_size):
                self.clock += CYCLES_PER_PRESTORE
                # A parked private store must become cache-resident before
                # its line can be cleaned to memory.
                self.store_buffer.demote(line, self.clock, self._visibility_latency)
                machine.line_owner.pop(line, None)
                if machine.hierarchy.clean_line(line):
                    machine.device.write_back(
                        line * machine.line_size, machine.line_size, self.clock
                    )
                    wrote = True
            if wrote:
                self._apply_backpressure()
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown prestore op {event.op!r}")
