"""The simulated core: executes event streams against the machine state.

Each :class:`Core` owns a clock and a private store buffer and shares the
cache hierarchy and memory device with its siblings.  The execution rules
implement the paper's cost model:

* loads hit the store buffer (forwarding) or walk the hierarchy; misses
  pay the device read latency;
* stores cost one cycle into the store buffer; the line is fetched into
  the cache (write-allocate) when its *visibility* round trip starts —
  immediately under TSO, lazily (fence / demote / overflow) under the weak
  model;
* fences and atomics block until every buffered store is globally
  visible, which is where delayed visibility hurts (Problem #2);
* dirty lines evicted from the last level, cleaned by ``clwb``-style
  pre-stores, or written non-temporally flow to the device, whose
  write-combiner and bandwidth queue turn eviction *order* into write
  amplification and backpressure (Problem #1).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.prestore import CYCLES_PER_PRESTORE, PrestoreOp
from repro.errors import SimulationError
from repro.sim.event import STREAM_KINDS, Event, EventKind
from repro.sim.stats import CoreStats
from repro.sim.store_buffer import StoreBuffer, _Pending

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

__all__ = ["Core"]

#: Store-to-load forwarding latency, cycles.
FORWARD_LATENCY = 1
#: Base cost of executing one store into the buffer, cycles.
STORE_ISSUE_COST = 1
#: Base cost of a fence instruction itself (excluding visibility waits).
FENCE_ISSUE_COST = 2


class Core:
    """One simulated CPU core."""

    def __init__(self, core_id: int, machine: "Machine") -> None:
        self.machine = machine
        self.clock = 0.0
        self.stats = CoreStats(core_id=core_id)
        self.store_buffer = StoreBuffer(
            model=machine.spec.memory_model,
            capacity=machine.spec.store_buffer_capacity,
        )
        # Precomputed hot-path constants (DESIGN.md §11).  The directory
        # cost of a line transfer and the visibility latency of a cached
        # line depend only on the machine, not on the access.
        l1 = machine.hierarchy.levels[0]
        self._l1 = l1
        self._l1_hit_latency = float(l1.spec.hit_latency)
        self._dir_latency = machine.device.directory_latency or machine.visibility.sram_directory_latency
        self._vis_cached = machine.visibility.visibility_latency(machine.device, True)
        #: The fused stream loop collapses the reference interpreter's
        #: repeated same-way policy touches into one; only sound when the
        #: innermost policy declares on_access idempotent.
        self._fast_policy = l1._idempotent_policy
        #: Kind -> bound handler, replacing the enum if-chain.  COMPUTE,
        #: WAIT and the stream kinds are handled before/around dispatch.
        self._handlers = {
            EventKind.READ: self._do_read,
            EventKind.WRITE: self._do_any_write,
            EventKind.FENCE: self._do_fence,
            EventKind.ATOMIC: self._do_atomic,
            EventKind.PRESTORE: self._do_prestore,
            EventKind.POST: self._do_post,
        }

    # -- helpers -------------------------------------------------------------

    @property
    def core_id(self) -> int:
        return self.stats.core_id

    def _transfer_cost(self, line: int) -> int:
        """Cost of pulling a line out of another core's private copy.

        The directory resolving the transfer is device-resident on both
        evaluation platforms (Section 4.2), so the transfer pays a device
        round trip.  Demote/clean pre-stores push lines to the shared
        point of unification, which is exactly what removes this cost for
        consumers (the X9 case).
        """
        machine = self.machine
        owner = machine.line_owner.get(line)
        if owner is None or owner == self.core_id:
            return 0
        return machine.device.directory_latency or machine.visibility.sram_directory_latency

    def _visibility_latency(self, line: int) -> int:
        """Start a visibility round trip for a buffered store to ``line``.

        Side effect: the line is installed (dirty) into the hierarchy —
        this is the moment the write leaves private buffers and becomes a
        cache-resident modification.  Fill/eviction traffic triggered here
        is charged like any other fill.
        """
        machine = self.machine
        cached = machine.hierarchy.contains(line)
        latency = machine.visibility.visibility_latency(machine.device, cached)
        result = machine.hierarchy.access_line(line, is_write=True)
        if result.memory_access:
            # The read-for-ownership really fetches the line from the
            # device: it occupies media bandwidth (in the background, so
            # no core stall here) — the traffic non-temporal stores avoid.
            machine.device.read(line * machine.line_size, machine.line_size, self.clock)
        machine.line_owner[line] = self.core_id
        self._emit_writebacks(result.writebacks)
        return latency

    def _emit_writebacks(self, lines: Iterable[int]) -> None:
        """Send dirty LLC evictions to the device.

        No stall here: demand reads have priority over the write backlog
        on real memory controllers, so eviction traffic triggered by a
        read does not block the reader.  The backlog is paid by the next
        *store* (see :meth:`_apply_backpressure`), which is also where
        perf attributes the time — "time issuing store instructions".
        """
        machine = self.machine
        for line in lines:
            machine.device.write_back(line * machine.line_size, machine.line_size, self.clock)
            self.store_buffer.evict_line(line)

    def _apply_backpressure(self) -> None:
        """Stall when the device write queue exceeds the allowed backlog.

        This is how write amplification becomes lost throughput: amplified
        media writes queue up, the backlog crosses the threshold, and the
        writer core waits (Figure 3's multi-thread regime).
        """
        machine = self.machine
        backlog = machine.device.backlog(self.clock)
        excess = backlog - machine.spec.backlog_limit_cycles
        if excess > 0:
            self.clock += excess
            self.stats.backpressure_stall_cycles += excess

    # -- event execution -------------------------------------------------------

    def execute(self, event: Event) -> None:
        """Run one instruction, advancing the core clock."""
        kind = event.kind
        if kind is EventKind.COMPUTE:
            self.stats.instructions += event.size
            self.clock += event.size * self.machine.spec.cycles_per_compute
            return
        handler = self._handlers.get(kind)
        if handler is None:
            if kind in STREAM_KINDS:
                # Direct callers get the whole run; the machine scheduler
                # expands streams itself so it can honour preemption.
                self.execute_stream(event)
                return
            raise SimulationError(f"unknown event kind {kind!r}")
        self.stats.instructions += 1
        handler(event)

    def _do_any_write(self, event: Event) -> None:
        if event.nontemporal:
            self._do_nontemporal_write(event)
        else:
            self._do_write(event)

    def _do_post(self, event: Event) -> None:
        event.mailbox.post(event.sync_key, self.clock)
        self.clock += 1

    # -- stream execution (the fast interpretation path) -----------------------

    def execute_stream(
        self,
        event: Event,
        strict_limit: float = math.inf,
        loose_limit: float = math.inf,
    ) -> Optional[Event]:
        """Execute a batched access run in a fused per-line loop.

        Semantics are bit-identical to executing one READ/WRITE event per
        ``chunk`` bytes through :meth:`execute` (DESIGN.md §11 lists the
        audited equivalences).  The loop yields back to the scheduler as
        soon as this core's clock would no longer win the time-ordered
        pick — it must stay strictly below every earlier-listed live
        thread and at-or-below every later-listed one, replicating
        ``min()``'s first-minimal tie-breaking — and then returns
        ``event`` mutated to the remaining ``[addr, addr+size)`` range;
        ``None`` once the run is complete.
        """
        kind = event.kind
        if self._fast_policy:
            if kind is EventKind.STREAM_WRITE and not event.nontemporal:
                return self._stream_write_fast(event, strict_limit, loose_limit)
            if kind is EventKind.STREAM_READ:
                return self._stream_read_fast(event, strict_limit, loose_limit)
        if kind not in STREAM_KINDS:
            raise SimulationError(f"execute_stream() got non-stream event {event!r}")
        return self._stream_generic(event, strict_limit, loose_limit)

    def _stream_generic(
        self, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Per-access expansion without fusion (NT writes, exotic policies).

        Still skips the per-access generator round trip and validation,
        but runs every access through the reference handlers.
        """
        access_kind = EventKind.READ if event.kind is EventKind.STREAM_READ else EventKind.WRITE
        addr, size, chunk = event.addr, event.size, event.chunk
        nt, relaxed, site, chain = event.nontemporal, event.relaxed, event.site, event.callchain
        execute = self.execute
        offset = 0
        while offset < size:
            clock = self.clock
            if not (clock < strict_limit and clock <= loose_limit):
                event.addr = addr + offset
                event.size = size - offset
                return event
            length = chunk if size - offset >= chunk else size - offset
            execute(Event.fast_access(access_kind, addr + offset, length, nt, relaxed, site, chain))
            offset += length
        return None

    def _stream_write_fast(
        self, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Fused sequential-store loop.

        Per access this replicates, in order: ``execute``'s retirement
        accounting, ``_do_write``'s issue cost and resident-line dirtying,
        ``StoreBuffer.write``'s prune/coalesce/overflow/visibility logic
        (with the visibility latency of a cached line hoisted to a
        constant), and ``_apply_backpressure`` — without allocating an
        event, a range, a result, or a writeback list.  Any access that
        is not a warm single-line store falls back to the reference
        per-event path mid-stream.
        """
        machine = self.machine
        line_size = machine.line_size
        l1 = self._l1
        l1_index = l1._index
        l1_sets = l1._sets
        l1_pstate = l1._policy_state
        on_access = l1.policy.on_access
        sb = self.store_buffer
        pending = sb._pending
        sb_stats = sb.stats
        capacity = sb.capacity
        tso = sb.model == "tso"
        vis_cached = self._vis_cached
        device = machine.device
        backlog_limit = machine.spec.backlog_limit_cycles
        line_owner = machine.line_owner
        cid = self.stats.core_id
        stats = self.stats
        visibility = self._visibility_latency

        addr, size, chunk = event.addr, event.size, event.chunk
        relaxed, site, chain = event.relaxed, event.site, event.callchain
        offset = 0
        clock = self.clock
        tail = sb._pipeline_tail
        n_fast = 0  # fast-path accesses since the last flush
        n_coalesced = 0
        n_hits = 0  # L1 hit delta since the last flush

        while offset < size:
            if not (clock < strict_limit and clock <= loose_limit):
                break
            length = chunk if size - offset >= chunk else size - offset
            a = addr + offset
            line = a // line_size
            loc = l1_index.get(line) if (a + length - 1) // line_size == line else None
            if loc is None:
                # Cold or line-straddling chunk: flush the accumulators
                # and run this one access down the reference path.
                self.clock = clock
                sb._pipeline_tail = tail
                if n_fast:
                    stats.instructions += n_fast
                    stats.writes += n_fast
                    sb_stats.stores_buffered += n_fast
                    n_fast = 0
                if n_coalesced:
                    sb_stats.coalesced += n_coalesced
                    n_coalesced = 0
                if n_hits:
                    l1.stats.hits += n_hits
                    n_hits = 0
                self.execute(
                    Event.fast_access(EventKind.WRITE, a, length, False, relaxed, site, chain)
                )
                clock = self.clock
                tail = sb._pipeline_tail
                offset += length
                continue
            # Warm single-line store to an L1-resident line.
            n_fast += 1
            set_i, way_i = loc
            n_hits += 1
            on_access(l1_pstate[set_i], way_i)
            l1_sets[set_i][way_i].dirty = True
            line_owner[line] = cid
            clock += 1.0  # STORE_ISSUE_COST
            now = clock
            # Inline StoreBuffer._prune(now).
            while pending:
                oldest = next(iter(pending.values()))
                vt = oldest.visible_time
                if vt is None or vt > now:
                    break
                del pending[oldest.line]
            if line in pending:
                n_coalesced += 1
                pending.move_to_end(line)
            else:
                stall = 0.0
                if len(pending) >= capacity:
                    oldest = next(iter(pending.values()))
                    vt = oldest.visible_time
                    if vt is None:
                        oloc = l1_index.get(oldest.line)
                        if oloc is not None:
                            # Weak model, forced-out line still in L1:
                            # its visibility round trip is one more L1
                            # write hit at the cached-line latency —
                            # inline it like the TSO branch below.
                            oset, oway = oloc
                            n_hits += 1
                            on_access(l1_pstate[oset], oway)
                            l1_sets[oset][oway].dirty = True
                            line_owner[oldest.line] = cid
                            vt = now + vis_cached
                            if vt < tail:
                                vt = tail
                            oldest.visible_time = vt
                            tail = vt
                        else:
                            # Forced-out line left the caches: the round
                            # trip touches the hierarchy and the device —
                            # run the real callback with synced state.
                            self.clock = clock
                            sb._pipeline_tail = tail
                            sb._start_visibility(oldest, now, visibility)
                            tail = sb._pipeline_tail
                            vt = oldest.visible_time
                    stall = vt - now
                    if stall < 0.0:
                        stall = 0.0
                    del pending[oldest.line]
                    sb_stats.overflow_drains += 1
                entry = _Pending(line, now + stall)
                pending[line] = entry
                if tso:
                    # Inline _start_visibility with the hoisted constant:
                    # the line is L1-resident, so the visibility access
                    # is one more L1 write hit — no fill, no device read,
                    # no writebacks.
                    n_hits += 1
                    vt = now + stall + vis_cached
                    if vt < tail:
                        vt = tail
                    entry.visible_time = vt
                    tail = vt
                if stall > 0.0:
                    clock += stall
                    stats.store_buffer_stall_cycles += stall
            # Inline _apply_backpressure().
            bus = device._bus_next_free
            media = device._media_next_free
            horizon = bus if bus > media else media
            if horizon > clock:
                excess = (horizon - clock) - backlog_limit
                if excess > 0:
                    clock += excess
                    stats.backpressure_stall_cycles += excess
            offset += length

        self.clock = clock
        sb._pipeline_tail = tail
        if n_fast:
            stats.instructions += n_fast
            stats.writes += n_fast
            sb_stats.stores_buffered += n_fast
        if n_coalesced:
            sb_stats.coalesced += n_coalesced
        if n_hits:
            l1.stats.hits += n_hits
        if offset < size:
            event.addr = addr + offset
            event.size = size - offset
            return event
        return None

    def _stream_read_fast(
        self, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Fused sequential-load loop.

        Warm single-line loads resolve to store-buffer forwarding or an
        L1 hit (plus an owner-transfer charge) without allocations; any
        other access falls back to the reference per-event path.
        """
        machine = self.machine
        line_size = machine.line_size
        l1 = self._l1
        l1_index = l1._index
        l1_pstate = l1._policy_state
        on_access = l1.policy.on_access
        l1_latency = self._l1_hit_latency
        dir_latency = self._dir_latency
        pending = self.store_buffer._pending
        line_owner = machine.line_owner
        cid = self.stats.core_id
        stats = self.stats

        addr, size, chunk = event.addr, event.size, event.chunk
        relaxed, site, chain = event.relaxed, event.site, event.callchain
        offset = 0
        clock = self.clock
        n_fast = 0
        n_hits = 0

        while offset < size:
            if not (clock < strict_limit and clock <= loose_limit):
                break
            length = chunk if size - offset >= chunk else size - offset
            a = addr + offset
            line = a // line_size
            if (a + length - 1) // line_size == line:
                if line in pending:
                    # Store-to-load forwarding: FORWARD_LATENCY, no
                    # cache or device traffic.
                    n_fast += 1
                    clock += 1
                    offset += length
                    continue
                loc = l1_index.get(line)
                if loc is not None:
                    owner = line_owner.get(line)
                    if owner is None or owner == cid:
                        transfer = 0
                    else:
                        # Pulling another core's private copy: directory
                        # round trip; the line becomes shared.
                        transfer = dir_latency
                        del line_owner[line]
                    n_fast += 1
                    set_i, way_i = loc
                    n_hits += 1
                    on_access(l1_pstate[set_i], way_i)
                    clock += l1_latency + transfer
                    offset += length
                    continue
            # Miss or line-straddling chunk: reference path.
            self.clock = clock
            if n_fast:
                stats.instructions += n_fast
                stats.reads += n_fast
                n_fast = 0
            if n_hits:
                l1.stats.hits += n_hits
                n_hits = 0
            self.execute(
                Event.fast_access(EventKind.READ, a, length, False, relaxed, site, chain)
            )
            clock = self.clock
            offset += length

        self.clock = clock
        if n_fast:
            stats.instructions += n_fast
            stats.reads += n_fast
        if n_hits:
            l1.stats.hits += n_hits
        if offset < size:
            event.addr = addr + offset
            event.size = size - offset
            return event
        return None

    # -- loads -----------------------------------------------------------------

    def _do_read(self, event: Event) -> None:
        """Execute a load.

        A multi-line read event models a streamed access (vectorised loop
        body, value scan): its line fills pipeline — they serialise on
        media occupancy but pay the device latency only once, as hardware
        prefetchers and fill buffers achieve on real CPUs.  Single-line
        reads behave identically (one fill, one latency).
        """
        machine = self.machine
        self.stats.reads += 1
        hit_latency = 0.0
        mem_done = self.clock
        for line in event.lines(machine.line_size):
            if self.store_buffer.contains(line):
                hit_latency = max(hit_latency, FORWARD_LATENCY)
                continue
            transfer = self._transfer_cost(line)
            if transfer:
                # Reading another core's private copy: the line becomes
                # shared once transferred.
                machine.line_owner.pop(line, None)
            result = machine.hierarchy.access_line(line, is_write=False)
            hit_latency = max(hit_latency, float(result.latency) + transfer)
            if result.memory_access:
                done = machine.device.read(line * machine.line_size, machine.line_size, self.clock)
                mem_done = max(mem_done, done)
            self._emit_writebacks(result.writebacks)
        wait = max(hit_latency, mem_done - self.clock)
        if mem_done > self.clock:
            self.stats.memory_read_cycles += mem_done - self.clock
        self.clock += wait

    # -- stores ----------------------------------------------------------------

    def _do_write(self, event: Event) -> None:
        machine = self.machine
        self.stats.writes += 1
        self.clock += STORE_ISSUE_COST
        for line in event.lines(machine.line_size):
            if machine.hierarchy.contains(line):
                # The line is already cache-resident: this store dirties it
                # now (a previous clean pre-store must not hide the new
                # modification).  Store latency itself is pipelined away.
                machine.hierarchy.access_line(line, is_write=True)
                machine.line_owner[line] = self.core_id
            stall = self.store_buffer.write(line, self.clock, self._visibility_latency)
            if stall > 0:
                self.clock += stall
                self.stats.store_buffer_stall_cycles += stall
        self._apply_backpressure()

    def _do_nontemporal_write(self, event: Event) -> None:
        """A cache-skipping store: straight to the device, in program order.

        Because non-temporal stores arrive at the device in the order the
        program issued them, sequential NT streams merge perfectly in the
        device combiner.  The cached copy (if any) is invalidated, so a
        later read of this data pays a full device round trip — the
        re-read penalty the paper observes when skipping re-used data.
        """
        machine = self.machine
        self.stats.writes += 1
        self.stats.nontemporal_writes += 1
        self.clock += STORE_ISSUE_COST
        for line in event.lines(machine.line_size):
            machine.hierarchy.invalidate_line(line)
            machine.line_owner.pop(line, None)
            self.store_buffer.evict_line(line)
        machine.device.write_back(event.addr, event.size, self.clock)
        self._apply_backpressure()

    # -- ordering ----------------------------------------------------------------

    def _do_fence(self, event: Event) -> None:
        self.stats.fences += 1
        self.clock += FENCE_ISSUE_COST
        if event.fence_scope == "load":
            # Acquire fence: orders reads only.  Our loads execute in
            # order already, so the issue cost is the whole story.
            return
        done = self.store_buffer.drain(self.clock, self._visibility_latency)
        self._stall_for_ordering(done)

    def _stall_for_ordering(self, visible_at: float) -> None:
        """Block until ``visible_at``, paying the pipeline-drain tax.

        A fence that has to *wait* does more damage than the wait itself:
        retirement blocks, the ROB fills, and the front end restarts once
        drained.  The multiplier models that restart cost growing with the
        stall — it is what makes last-minute publication (Figure 4a) more
        expensive than the early, overlapped round trip of a demote.
        """
        stall = visible_at - self.clock
        if stall > 0:
            stall *= self.machine.spec.fence_stall_multiplier
            self.clock += stall
            self.stats.fence_stall_cycles += stall

    def _do_atomic(self, event: Event) -> None:
        """RMW with fence semantics (cmpxchg and friends, Section 6.2.2).

        The store-buffer drain and the exclusive acquisition of the
        target line overlap, as they do in hardware: the RFO for the CAS
        target is issued while earlier stores become visible.  This is
        why pre-storing ahead of the atomic removes the drain from the
        critical path (Section 7.3.1's "reducing the time spent in the
        atomic instructions of the lock by 74%").
        """
        machine = self.machine
        self.stats.atomics += 1
        # All prior stores must be visible before the RMW completes.
        done = self.store_buffer.drain(self.clock, self._visibility_latency)
        drain_stall = max(0.0, done - self.clock) * machine.spec.fence_stall_multiplier
        # Acquire the target line exclusively (concurrently).
        line = machine.hierarchy.line_of(event.addr)
        transfer = self._transfer_cost(line)
        result = machine.hierarchy.access_line(line, is_write=True)
        machine.line_owner[line] = self.core_id
        acquire = float(result.latency) + transfer
        if result.memory_access:
            read_done = machine.device.read(line * machine.line_size, machine.line_size, self.clock)
            acquire += read_done - self.clock
        self._emit_writebacks(result.writebacks)
        wait = max(drain_stall, acquire)
        if drain_stall > acquire:
            self.stats.fence_stall_cycles += drain_stall - acquire
        self.clock += wait + machine.spec.atomic_base_cost

    # -- pre-stores ----------------------------------------------------------------

    def _do_prestore(self, event: Event) -> None:
        machine = self.machine
        self.stats.prestores += 1
        if event.op is PrestoreOp.DEMOTE:
            for line in event.lines(machine.line_size):
                self.clock += CYCLES_PER_PRESTORE
                started = self.store_buffer.demote(line, self.clock, self._visibility_latency)
                if not started:
                    # Nothing parked: demote the cached copy down-hierarchy.
                    machine.hierarchy.demote_line(line)
                # Demotion pushes the line to the point of unification:
                # other cores can now pull it without a transfer.
                machine.line_owner.pop(line, None)
        elif event.op is PrestoreOp.CLEAN:
            wrote = False
            for line in event.lines(machine.line_size):
                self.clock += CYCLES_PER_PRESTORE
                # A parked private store must become cache-resident before
                # its line can be cleaned to memory.
                self.store_buffer.demote(line, self.clock, self._visibility_latency)
                machine.line_owner.pop(line, None)
                if machine.hierarchy.clean_line(line):
                    machine.device.write_back(
                        line * machine.line_size, machine.line_size, self.clock
                    )
                    wrote = True
            if wrote:
                self._apply_backpressure()
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown prestore op {event.op!r}")
