"""The simulated core: executes event streams against the machine state.

Each :class:`Core` owns a clock and a private store buffer and shares the
cache hierarchy and memory device with its siblings.  The execution rules
implement the paper's cost model:

* loads hit the store buffer (forwarding) or walk the hierarchy; misses
  pay the device read latency;
* stores cost one cycle into the store buffer; the line is fetched into
  the cache (write-allocate) when its *visibility* round trip starts —
  immediately under TSO, lazily (fence / demote / overflow) under the weak
  model;
* fences and atomics block until every buffered store is globally
  visible, which is where delayed visibility hurts (Problem #2);
* dirty lines evicted from the last level, cleaned by ``clwb``-style
  pre-stores, or written non-temporally flow to the device, whose
  write-combiner and bandwidth queue turn eviction *order* into write
  amplification and backpressure (Problem #1).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.prestore import CYCLES_PER_PRESTORE, PrestoreOp
from repro.errors import SimulationError
from repro.sim.event import STREAM_KINDS, Event, EventKind
from repro.sim.replacement import _PLRU_LUT_MAX_WAYS, IntelLikePolicy, _plru_lut
from repro.sim.stats import CoreStats
from repro.sim.store_buffer import StoreBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

__all__ = ["Core"]

#: Store-to-load forwarding latency, cycles.
FORWARD_LATENCY = 1
#: Base cost of executing one store into the buffer, cycles.
STORE_ISSUE_COST = 1
#: Base cost of a fence instruction itself (excluding visibility waits).
FENCE_ISSUE_COST = 2


class Core:
    """One simulated CPU core."""

    def __init__(self, core_id: int, machine: "Machine") -> None:
        self.machine = machine
        self.clock = 0.0
        self.stats = CoreStats(core_id=core_id)
        self.store_buffer = StoreBuffer(
            model=machine.spec.memory_model,
            capacity=machine.spec.store_buffer_capacity,
        )
        # Precomputed hot-path constants (DESIGN.md §11).  The directory
        # cost of a line transfer and the visibility latency of a cached
        # line depend only on the machine, not on the access.
        l1 = machine.hierarchy.levels[0]
        self._l1 = l1
        self._l1_hit_latency = float(l1.spec.hit_latency)
        self._dir_latency = machine.device.directory_latency or machine.visibility.sram_directory_latency
        self._vis_cached = machine.visibility.visibility_latency(machine.device, True)
        self._vis_uncached = machine.visibility.visibility_latency(machine.device, False)
        #: Outer-level line indexes, innermost-but-one first — the fused
        #: store loop's residency probe (replaces hierarchy.contains).
        self._other_indexes = [lvl._index for lvl in machine.hierarchy.levels[1:]]
        #: L1 recency-touch tables when L1 runs the LUT-encoded
        #: intel-like policy: ``(and_masks, or_masks)`` let the fused
        #: loops mark a hit way without a policy call (same state
        #: transition on_access computes).  None on other policies.
        self._l1_touch = None
        if type(l1.policy) is IntelLikePolicy and l1._ways <= _PLRU_LUT_MAX_WAYS:
            l1_and, l1_or, _ = _plru_lut(l1._ways)
            self._l1_touch = (l1_and, l1_or)
        #: Reusable writeback scratch for the fused miss walk.
        self._wb_scratch: list = []
        #: The fused stream loop collapses the reference interpreter's
        #: repeated same-way policy touches into one; only sound when the
        #: innermost policy declares on_access idempotent.
        self._fast_policy = l1._idempotent_policy
        #: Kind -> bound handler, replacing the enum if-chain.  COMPUTE,
        #: WAIT and the stream kinds are handled before/around dispatch.
        self._handlers = {
            EventKind.READ: self._do_read,
            EventKind.WRITE: self._do_any_write,
            EventKind.FENCE: self._do_fence,
            EventKind.ATOMIC: self._do_atomic,
            EventKind.PRESTORE: self._do_prestore,
            EventKind.POST: self._do_post,
        }

    # -- helpers -------------------------------------------------------------

    @property
    def core_id(self) -> int:
        return self.stats.core_id

    def _transfer_cost(self, line: int) -> int:
        """Cost of pulling a line out of another core's private copy.

        The directory resolving the transfer is device-resident on both
        evaluation platforms (Section 4.2), so the transfer pays a device
        round trip.  Demote/clean pre-stores push lines to the shared
        point of unification, which is exactly what removes this cost for
        consumers (the X9 case).
        """
        machine = self.machine
        owner = machine.line_owner.get(line)
        if owner is None or owner == self.core_id:
            return 0
        return machine.device.directory_latency or machine.visibility.sram_directory_latency

    def _visibility_latency(self, line: int) -> int:
        """Start a visibility round trip for a buffered store to ``line``.

        Side effect: the line is installed (dirty) into the hierarchy —
        this is the moment the write leaves private buffers and becomes a
        cache-resident modification.  Fill/eviction traffic triggered here
        is charged like any other fill.
        """
        machine = self.machine
        cached = machine.hierarchy.contains(line)
        latency = machine.visibility.visibility_latency(machine.device, cached)
        result = machine.hierarchy.access_line(line, is_write=True)
        if result.memory_access:
            # The read-for-ownership really fetches the line from the
            # device: it occupies media bandwidth (in the background, so
            # no core stall here) — the traffic non-temporal stores avoid.
            machine.device.read(line * machine.line_size, machine.line_size, self.clock)
        machine.line_owner[line] = self.core_id
        self._emit_writebacks(result.writebacks)
        return latency

    def _emit_writebacks(self, lines: Iterable[int]) -> None:
        """Send dirty LLC evictions to the device.

        No stall here: demand reads have priority over the write backlog
        on real memory controllers, so eviction traffic triggered by a
        read does not block the reader.  The backlog is paid by the next
        *store* (see :meth:`_apply_backpressure`), which is also where
        perf attributes the time — "time issuing store instructions".
        """
        machine = self.machine
        for line in lines:
            machine.device.write_back(line * machine.line_size, machine.line_size, self.clock)
            self.store_buffer.evict_line(line)

    def _apply_backpressure(self) -> None:
        """Stall when the device write queue exceeds the allowed backlog.

        This is how write amplification becomes lost throughput: amplified
        media writes queue up, the backlog crosses the threshold, and the
        writer core waits (Figure 3's multi-thread regime).
        """
        machine = self.machine
        backlog = machine.device.backlog(self.clock)
        excess = backlog - machine.spec.backlog_limit_cycles
        if excess > 0:
            self.clock += excess
            self.stats.backpressure_stall_cycles += excess

    # -- event execution -------------------------------------------------------

    def execute(self, event: Event) -> None:
        """Run one instruction, advancing the core clock."""
        kind = event.kind
        if kind is EventKind.COMPUTE:
            self.stats.instructions += event.size
            self.clock += event.size * self.machine.spec.cycles_per_compute
            return
        handler = self._handlers.get(kind)
        if handler is None:
            if kind in STREAM_KINDS:
                # Direct callers get the whole run; the machine scheduler
                # expands streams itself so it can honour preemption.
                self.execute_stream(event)
                return
            raise SimulationError(f"unknown event kind {kind!r}")
        self.stats.instructions += 1
        handler(event)

    def _do_any_write(self, event: Event) -> None:
        if event.nontemporal:
            self._do_nontemporal_write(event)
        else:
            self._do_write(event)

    def _do_post(self, event: Event) -> None:
        event.mailbox.post(event.sync_key, self.clock)
        self.clock += 1

    # -- stream execution (the fast interpretation path) -----------------------

    def execute_stream(
        self,
        event: Event,
        strict_limit: float = math.inf,
        loose_limit: float = math.inf,
    ) -> Optional[Event]:
        """Execute a batched access run in a fused per-line loop.

        Semantics are bit-identical to executing one READ/WRITE event per
        ``chunk`` bytes through :meth:`execute` (DESIGN.md §11 lists the
        audited equivalences).  The loop yields back to the scheduler as
        soon as this core's clock would no longer win the time-ordered
        pick — it must stay strictly below every earlier-listed live
        thread and at-or-below every later-listed one, replicating
        ``min()``'s first-minimal tie-breaking — and then returns
        ``event`` mutated to the remaining ``[addr, addr+size)`` range;
        ``None`` once the run is complete.
        """
        kind = event.kind
        if self._fast_policy:
            if kind is EventKind.STREAM_WRITE and not event.nontemporal:
                return self._stream_write_fast(event, strict_limit, loose_limit)
            if kind is EventKind.STREAM_READ:
                return self._stream_read_fast(event, strict_limit, loose_limit)
        if kind not in STREAM_KINDS:
            raise SimulationError(f"execute_stream() got non-stream event {event!r}")
        return self._stream_generic(event, strict_limit, loose_limit)

    def _stream_generic(
        self, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Per-access expansion without fusion (NT writes, exotic policies).

        Still skips the per-access generator round trip and validation,
        but runs every access through the reference handlers.
        """
        access_kind = EventKind.READ if event.kind is EventKind.STREAM_READ else EventKind.WRITE
        addr, size, chunk = event.addr, event.size, event.chunk
        nt, relaxed, site, chain = event.nontemporal, event.relaxed, event.site, event.callchain
        execute = self.execute
        offset = 0
        while offset < size:
            clock = self.clock
            if not (clock < strict_limit and clock <= loose_limit):
                event.addr = addr + offset
                event.size = size - offset
                return event
            length = chunk if size - offset >= chunk else size - offset
            execute(Event.fast_access(access_kind, addr + offset, length, nt, relaxed, site, chain))
            offset += length
        return None

    def _fused_store_miss_vis(self, line: int, base: float, now: float, tail: float) -> float:
        """Visibility round trip of an *uncached* buffered store, fused.

        Replicates ``StoreBuffer._start_visibility`` feeding
        :meth:`_visibility_latency` for a line resident nowhere: the
        write-allocate miss walk (:meth:`CacheHierarchy.fill_write_miss`),
        the background read-for-ownership, ownership, and the dirty
        writebacks the fills push out — with device traffic stamped at
        ``now`` (the core clock, which under an overflow stall differs
        from the visibility base ``base``).  Returns the absolute cycle
        the store becomes visible, already clamped to the in-order
        pipeline ``tail``.
        """
        machine = self.machine
        wb = self._wb_scratch
        del wb[:]
        machine.hierarchy.fill_write_miss(line, wb)
        line_size = machine.line_size
        machine.device.read(line * line_size, line_size, now)
        machine.line_owner[line] = self.core_id
        if wb:
            pending = self.store_buffer._pending
            write_back = machine.device.write_back
            pop = pending.pop
            for w in wb:
                write_back(w * line_size, line_size, now)
                pop(w, None)
            del wb[:]
        vt = base + self._vis_uncached
        if vt < tail:
            vt = tail
        return vt

    def _stream_write_fast(
        self, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Fused store loop, warm and cold.

        Per access this replicates, in order: ``execute``'s retirement
        accounting, ``_do_write``'s issue cost and resident-line dirtying,
        ``StoreBuffer.write``'s prune/coalesce/overflow/visibility logic
        (with the visibility latency of a cached line hoisted to a
        constant and the uncached miss walk fused via
        :meth:`_fused_store_miss_vis`), and ``_apply_backpressure`` —
        without allocating an event, a range, a result, or a writeback
        list.  Only line-straddling chunks fall back to the reference
        per-event path mid-stream.
        """
        machine = self.machine
        line_size = machine.line_size
        l1 = self._l1
        l1_index = l1._index
        l1_ways = l1._ways
        l1_dirty = l1._dirty
        l1_pstate = l1._policy_state
        on_access = l1.policy.on_access
        l1_touch = self._l1_touch
        if l1_touch is not None:
            l1_and, l1_or = l1_touch
        else:
            l1_and = l1_or = None  # type: ignore[assignment]
        other_indexes = self._other_indexes
        hierarchy = machine.hierarchy
        slow_access = hierarchy._access_line_slow
        fill_all = hierarchy._fill_all
        level_stats = hierarchy._level_stats
        wb = self._wb_scratch
        vis_uncached = self._vis_uncached
        sb = self.store_buffer
        pending = sb._pending
        sb_stats = sb.stats
        capacity = sb.capacity
        tso = sb.model == "tso"
        vis_cached = self._vis_cached
        device = machine.device
        device_read = device.read
        device_write_back = device.write_back
        # Device state as loop locals (DESIGN.md §15): the bus/media
        # horizons are read by the per-store backpressure check and
        # advanced by every cold fill, so holding them in locals — synced
        # around the rare out-of-line calls — removes the device's
        # attribute traffic from the loop.  The inline read/write-back
        # bodies below replicate MemoryDevice.read/write_back
        # float-for-float; their returned completion times are unused on
        # this path (visibility is the hoisted ``vis_uncached`` constant),
        # so the trailing latency adds are dropped.
        dstats = device.stats
        combiner = device.combiner
        c_open = combiner._open
        c_cap = combiner.capacity
        c_on_close = combiner.on_close
        read_buf = device._read_buffer
        rb_cap = device._combiner_entries
        d_bw = device._bw
        d_read_bw = device._read_bw
        d_gran = device._gran
        # Line-aligned, line-sized traffic stays within one internal
        # block whenever lines are no wider than the device granularity
        # (true for every preset); otherwise fall back to the bound
        # methods, re-synced per call.
        inline_dev = line_size <= d_gran
        bus_nf = device._bus_next_free
        media_nf = device._media_next_free
        rr_nf = device._read_return_next_free
        n_wb = 0  # inline writebacks since the last flush
        n_cmerge = 0  # combiner merges since the last flush
        n_cclose = 0  # combiner closes (= media writes) since the last flush
        backlog_limit = machine.spec.backlog_limit_cycles
        line_owner = machine.line_owner
        cid = self.stats.core_id
        stats = self.stats
        visibility = self._visibility_latency

        addr, size, chunk = event.addr, event.size, event.chunk
        relaxed, site, chain = event.relaxed, event.site, event.callchain
        offset = 0
        clock = self.clock
        tail = sb._pipeline_tail
        n_fast = 0  # fast-path accesses since the last flush
        n_coalesced = 0
        n_hits = 0  # L1 hit delta since the last flush
        n_miss = 0  # fused miss-everywhere fills since the last flush

        seq = chunk == line_size and addr % line_size == 0
        line = addr // line_size - 1
        while offset < size:
            if not (clock < strict_limit and clock <= loose_limit):
                break
            if seq:
                # Aligned line-granular stream (the common case): chunks
                # never straddle and the target line just increments.
                line += 1
                rem = size - offset
                length = line_size if rem >= line_size else rem
            else:
                length = chunk if size - offset >= chunk else size - offset
                a = addr + offset
                line = a // line_size
                if (a + length - 1) // line_size != line:
                    # Line-straddling chunk: flush the accumulators and
                    # run this one access down the reference path.
                    self.clock = clock
                    sb._pipeline_tail = tail
                    if n_fast:
                        stats.instructions += n_fast
                        stats.writes += n_fast
                        sb_stats.stores_buffered += n_fast
                        n_fast = 0
                    if n_coalesced:
                        sb_stats.coalesced += n_coalesced
                        n_coalesced = 0
                    if n_hits:
                        l1.stats.hits += n_hits
                        n_hits = 0
                    if n_miss:
                        for lstats in level_stats:
                            lstats.misses += n_miss
                        if inline_dev:
                            dstats.reads += n_miss
                            dstats.bytes_read += n_miss * line_size
                        n_miss = 0
                    if n_wb:
                        dstats.writebacks_received += n_wb
                        dstats.bytes_received += n_wb * line_size
                        n_wb = 0
                    if n_cmerge:
                        combiner.merges += n_cmerge
                        n_cmerge = 0
                    if n_cclose:
                        combiner.closes += n_cclose
                        dstats.media_writes += n_cclose
                        dstats.media_bytes_written += n_cclose * d_gran
                        n_cclose = 0
                    device._bus_next_free = bus_nf
                    device._media_next_free = media_nf
                    device._read_return_next_free = rr_nf
                    self.execute(
                        Event.fast_access(
                            EventKind.WRITE, a, length, False, relaxed, site, chain
                        )
                    )
                    clock = self.clock
                    tail = sb._pipeline_tail
                    bus_nf = device._bus_next_free
                    media_nf = device._media_next_free
                    rr_nf = device._read_return_next_free
                    offset += length
                    continue
            n_fast += 1
            loc = l1_index.get(line)
            if loc is not None:
                # Warm: L1-resident line is dirtied in place.
                set_i = loc // l1_ways
                n_hits += 1
                way = loc - set_i * l1_ways
                if l1_touch is not None:
                    st = l1_pstate[set_i]
                    st[0] = (st[0] & l1_and[way]) | l1_or[way]
                else:
                    on_access(l1_pstate[set_i], way)
                l1_dirty[loc] = 1
                line_owner[line] = cid
                cached = True
            else:
                cached = False
                for idx in other_indexes:
                    if line in idx:
                        cached = True
                        break
                if cached:
                    # Resident in an outer level: promote and dirty it
                    # (the walk's result is discarded, as _do_write's is).
                    slow_access(line, True)
                    line_owner[line] = cid
            clock += 1.0  # STORE_ISSUE_COST
            now = clock
            # Inline StoreBuffer._prune(now).
            while pending:
                oline = next(iter(pending))
                ovt = pending[oline]
                if ovt is None or ovt > now:
                    break
                del pending[oline]
            if line in pending:
                n_coalesced += 1
                vt0 = pending.pop(line)  # re-insert to refresh FIFO position
                pending[line] = vt0
            else:
                stall = 0.0
                if len(pending) >= capacity:
                    # oline/ovt are still the front entry: the prune loop
                    # above peeked it before breaking, and nothing has
                    # touched the buffer since.
                    if ovt is None:
                        # Weak model: the forced-out store's round trip
                        # starts now.
                        oloc = l1_index.get(oline)
                        if oloc is not None:
                            # Still in L1: one more write hit at the
                            # cached-line latency.
                            oset = oloc // l1_ways
                            n_hits += 1
                            on_access(l1_pstate[oset], oloc - oset * l1_ways)
                            l1_dirty[oloc] = 1
                            line_owner[oline] = cid
                            ovt = now + vis_cached
                            if ovt < tail:
                                ovt = tail
                            tail = ovt
                        else:
                            ocached = False
                            for idx in other_indexes:
                                if oline in idx:
                                    ocached = True
                                    break
                            # Both arms run out-of-line device traffic:
                            # sync the horizon locals around the call.
                            device._bus_next_free = bus_nf
                            device._media_next_free = media_nf
                            device._read_return_next_free = rr_nf
                            if ocached:
                                # Cached in an outer level: the round
                                # trip runs the real callback (promote
                                # walk) with synced state.
                                self.clock = clock
                                sb._pipeline_tail = tail
                                ovt = sb._start_visibility(oline, now, visibility)
                                tail = sb._pipeline_tail
                            else:
                                # Left the caches entirely: fused
                                # write-allocate miss.
                                ovt = self._fused_store_miss_vis(oline, now, now, tail)
                                tail = ovt
                            bus_nf = device._bus_next_free
                            media_nf = device._media_next_free
                            rr_nf = device._read_return_next_free
                    stall = ovt - now
                    if stall < 0.0:
                        stall = 0.0
                    del pending[oline]
                    sb_stats.overflow_drains += 1
                if not tso:
                    pending[line] = None
                else:
                    # TSO: the round trip starts immediately (the parked
                    # None insert is skipped — nothing observes the
                    # buffer between insert and visibility start).
                    if cached:
                        # The line is L1-resident (warm, or just
                        # promoted): one more write hit, no fill, no
                        # device read, no writebacks.
                        if loc is None:
                            loc = l1_index[line]
                        set_i = loc // l1_ways
                        n_hits += 1
                        way = loc - set_i * l1_ways
                        if l1_touch is not None:
                            st = l1_pstate[set_i]
                            st[0] = (st[0] & l1_and[way]) | l1_or[way]
                        else:
                            on_access(l1_pstate[set_i], way)
                        l1_dirty[loc] = 1
                        vt = now + stall + vis_cached
                        if vt < tail:
                            vt = tail
                    else:
                        # Uncached: inline _fused_store_miss_vis — the
                        # write-allocate fill walk, the read-for-
                        # ownership, and the dirty writebacks the fills
                        # push out (miss counters batched in n_miss).
                        loc = fill_all(line, wb)
                        n_miss += 1
                        if l1_touch is None:
                            set_i = loc // l1_ways
                            on_access(l1_pstate[set_i], loc - set_i * l1_ways)
                        # (LUT policies: the dirty-mark touch repeats the
                        # install touch bit-for-bit, so it is skipped.)
                        l1_dirty[loc] = 1
                        if inline_dev:
                            # Inline MemoryDevice.read (stats batched in
                            # n_miss): the read-for-ownership occupies
                            # the media unless the block was just read,
                            # then returns over the shared link.
                            block = line * line_size // d_gran
                            if block in read_buf:
                                del read_buf[block]  # refresh LRU position
                                read_buf[block] = True
                                media_bytes = 0
                            else:
                                media_bytes = d_gran
                                read_buf[block] = True
                                if len(read_buf) > rb_cap:
                                    del read_buf[next(iter(read_buf))]
                            start = now if now >= media_nf else media_nf
                            media_nf = start + media_bytes / d_read_bw
                            start = media_nf
                            if bus_nf > start:
                                start = bus_nf
                            if rr_nf > start:
                                start = rr_nf
                            rr_nf = start + line_size / d_bw
                        else:
                            device._bus_next_free = bus_nf
                            device._media_next_free = media_nf
                            device._read_return_next_free = rr_nf
                            device_read(line * line_size, line_size, now)
                            bus_nf = device._bus_next_free
                            media_nf = device._media_next_free
                            rr_nf = device._read_return_next_free
                        line_owner[line] = cid
                        if wb:
                            if inline_dev:
                                for w in wb:
                                    # Inline MemoryDevice.write_back +
                                    # the single-block combiner add
                                    # (stats batched in n_wb/n_cmerge/
                                    # n_cclose).
                                    n_wb += 1
                                    start = now if now >= bus_nf else bus_nf
                                    bus_done = start + line_size / d_bw
                                    bus_nf = bus_done
                                    block = w * line_size // d_gran
                                    if block in c_open:
                                        merged = c_open[block] + line_size
                                        del c_open[block]  # refresh LRU
                                        c_open[block] = (
                                            d_gran if merged > d_gran else merged
                                        )
                                        n_cmerge += 1
                                    else:
                                        if len(c_open) >= c_cap:
                                            evicted = next(iter(c_open))
                                            del c_open[evicted]
                                            n_cclose += 1
                                            if c_on_close is not None:
                                                c_on_close(evicted)
                                            # The closed entry's media
                                            # write queues behind the
                                            # payload delivery.
                                            start = (
                                                bus_done
                                                if bus_done >= media_nf
                                                else media_nf
                                            )
                                            media_nf = start + d_gran / d_bw
                                        c_open[block] = line_size
                                    pending.pop(w, None)
                            else:
                                device._bus_next_free = bus_nf
                                device._media_next_free = media_nf
                                device._read_return_next_free = rr_nf
                                for w in wb:
                                    device_write_back(w * line_size, line_size, now)
                                    pending.pop(w, None)
                                bus_nf = device._bus_next_free
                                media_nf = device._media_next_free
                                rr_nf = device._read_return_next_free
                            del wb[:]
                        vt = now + stall + vis_uncached
                        if vt < tail:
                            vt = tail
                    pending[line] = vt
                    tail = vt
                if stall > 0.0:
                    clock += stall
                    stats.store_buffer_stall_cycles += stall
            # Inline _apply_backpressure().
            horizon = bus_nf if bus_nf > media_nf else media_nf
            if horizon > clock:
                excess = (horizon - clock) - backlog_limit
                if excess > 0:
                    clock += excess
                    stats.backpressure_stall_cycles += excess
            offset += length

        self.clock = clock
        sb._pipeline_tail = tail
        device._bus_next_free = bus_nf
        device._media_next_free = media_nf
        device._read_return_next_free = rr_nf
        if n_fast:
            stats.instructions += n_fast
            stats.writes += n_fast
            sb_stats.stores_buffered += n_fast
        if n_coalesced:
            sb_stats.coalesced += n_coalesced
        if n_hits:
            l1.stats.hits += n_hits
        if n_miss:
            for lstats in level_stats:
                lstats.misses += n_miss
            if inline_dev:
                dstats.reads += n_miss
                dstats.bytes_read += n_miss * line_size
        if n_wb:
            dstats.writebacks_received += n_wb
            dstats.bytes_received += n_wb * line_size
        if n_cmerge:
            combiner.merges += n_cmerge
        if n_cclose:
            combiner.closes += n_cclose
            dstats.media_writes += n_cclose
            dstats.media_bytes_written += n_cclose * d_gran
        if offset < size:
            event.addr = addr + offset
            event.size = size - offset
            return event
        return None

    def _stream_read_fast(
        self, event: Event, strict_limit: float, loose_limit: float
    ) -> Optional[Event]:
        """Fused load loop, warm and cold.

        Warm single-line loads resolve to store-buffer forwarding or an
        L1 hit (plus an owner-transfer charge) without allocations; cold
        single-line loads run the generic hierarchy walk inline (fills,
        evictions, the device read and the writebacks it pushes out)
        without the per-event dispatch.  Only line-straddling chunks
        fall back to the reference per-event path.
        """
        machine = self.machine
        line_size = machine.line_size
        l1 = self._l1
        l1_index = l1._index
        l1_ways = l1._ways
        l1_pstate = l1._policy_state
        on_access = l1.policy.on_access
        l1_latency = self._l1_hit_latency
        dir_latency = self._dir_latency
        slow_access = machine.hierarchy._access_line_slow
        device_read = machine.device.read
        device_write_back = machine.device.write_back
        pending = self.store_buffer._pending
        line_owner = machine.line_owner
        cid = self.stats.core_id
        stats = self.stats

        addr, size, chunk = event.addr, event.size, event.chunk
        relaxed, site, chain = event.relaxed, event.site, event.callchain
        offset = 0
        clock = self.clock
        n_fast = 0
        n_hits = 0

        while offset < size:
            if not (clock < strict_limit and clock <= loose_limit):
                break
            length = chunk if size - offset >= chunk else size - offset
            a = addr + offset
            line = a // line_size
            if (a + length - 1) // line_size == line:
                if line in pending:
                    # Store-to-load forwarding: FORWARD_LATENCY, no
                    # cache or device traffic.
                    n_fast += 1
                    clock += 1
                    offset += length
                    continue
                owner = line_owner.get(line)
                if owner is None or owner == cid:
                    transfer = 0
                else:
                    # Pulling another core's private copy: directory
                    # round trip; the line becomes shared.
                    transfer = dir_latency
                    del line_owner[line]
                loc = l1_index.get(line)
                if loc is not None:
                    n_fast += 1
                    set_i = loc // l1_ways
                    n_hits += 1
                    on_access(l1_pstate[set_i], loc - set_i * l1_ways)
                    clock += l1_latency + transfer
                    offset += length
                    continue
                # Cold: the generic walk, inline.  Matches _do_read for
                # a single non-forwarded line: fills and evictions, the
                # (background) device read, writebacks stamped at the
                # pre-wait clock, then the latency/occupancy wait.
                n_fast += 1
                res = slow_access(line, False)
                hit_lat = float(res.latency) + transfer
                if res.memory_access:
                    done = device_read(line * line_size, line_size, clock)
                else:
                    done = clock
                for w in res.writebacks:
                    device_write_back(w * line_size, line_size, clock)
                    pending.pop(w, None)
                wait = done - clock
                if wait > 0.0:
                    stats.memory_read_cycles += wait
                if hit_lat > wait:
                    wait = hit_lat
                clock += wait
                offset += length
                continue
            # Line-straddling chunk: reference path.
            self.clock = clock
            if n_fast:
                stats.instructions += n_fast
                stats.reads += n_fast
                n_fast = 0
            if n_hits:
                l1.stats.hits += n_hits
                n_hits = 0
            self.execute(
                Event.fast_access(EventKind.READ, a, length, False, relaxed, site, chain)
            )
            clock = self.clock
            offset += length

        self.clock = clock
        if n_fast:
            stats.instructions += n_fast
            stats.reads += n_fast
        if n_hits:
            l1.stats.hits += n_hits
        if offset < size:
            event.addr = addr + offset
            event.size = size - offset
            return event
        return None

    # -- loads -----------------------------------------------------------------

    def _do_read(self, event: Event) -> None:
        """Execute a load.

        A multi-line read event models a streamed access (vectorised loop
        body, value scan): its line fills pipeline — they serialise on
        media occupancy but pay the device latency only once, as hardware
        prefetchers and fill buffers achieve on real CPUs.  Single-line
        reads behave identically (one fill, one latency).
        """
        machine = self.machine
        self.stats.reads += 1
        hit_latency = 0.0
        mem_done = self.clock
        for line in event.lines(machine.line_size):
            if self.store_buffer.contains(line):
                hit_latency = max(hit_latency, FORWARD_LATENCY)
                continue
            transfer = self._transfer_cost(line)
            if transfer:
                # Reading another core's private copy: the line becomes
                # shared once transferred.
                machine.line_owner.pop(line, None)
            result = machine.hierarchy.access_line(line, is_write=False)
            hit_latency = max(hit_latency, float(result.latency) + transfer)
            if result.memory_access:
                done = machine.device.read(line * machine.line_size, machine.line_size, self.clock)
                mem_done = max(mem_done, done)
            self._emit_writebacks(result.writebacks)
        wait = max(hit_latency, mem_done - self.clock)
        if mem_done > self.clock:
            self.stats.memory_read_cycles += mem_done - self.clock
        self.clock += wait

    # -- stores ----------------------------------------------------------------

    def _do_write(self, event: Event) -> None:
        machine = self.machine
        self.stats.writes += 1
        self.clock += STORE_ISSUE_COST
        for line in event.lines(machine.line_size):
            if machine.hierarchy.contains(line):
                # The line is already cache-resident: this store dirties it
                # now (a previous clean pre-store must not hide the new
                # modification).  Store latency itself is pipelined away.
                machine.hierarchy.access_line(line, is_write=True)
                machine.line_owner[line] = self.core_id
            stall = self.store_buffer.write(line, self.clock, self._visibility_latency)
            if stall > 0:
                self.clock += stall
                self.stats.store_buffer_stall_cycles += stall
        self._apply_backpressure()

    def _do_nontemporal_write(self, event: Event) -> None:
        """A cache-skipping store: straight to the device, in program order.

        Because non-temporal stores arrive at the device in the order the
        program issued them, sequential NT streams merge perfectly in the
        device combiner.  The cached copy (if any) is invalidated, so a
        later read of this data pays a full device round trip — the
        re-read penalty the paper observes when skipping re-used data.
        """
        machine = self.machine
        self.stats.writes += 1
        self.stats.nontemporal_writes += 1
        self.clock += STORE_ISSUE_COST
        for line in event.lines(machine.line_size):
            machine.hierarchy.invalidate_line(line)
            machine.line_owner.pop(line, None)
            self.store_buffer.evict_line(line)
        machine.device.write_back(event.addr, event.size, self.clock)
        self._apply_backpressure()

    # -- ordering ----------------------------------------------------------------

    def _do_fence(self, event: Event) -> None:
        self.stats.fences += 1
        self.clock += FENCE_ISSUE_COST
        if event.fence_scope == "load":
            # Acquire fence: orders reads only.  Our loads execute in
            # order already, so the issue cost is the whole story.
            return
        done = self.store_buffer.drain(self.clock, self._visibility_latency)
        self._stall_for_ordering(done)

    def _stall_for_ordering(self, visible_at: float) -> None:
        """Block until ``visible_at``, paying the pipeline-drain tax.

        A fence that has to *wait* does more damage than the wait itself:
        retirement blocks, the ROB fills, and the front end restarts once
        drained.  The multiplier models that restart cost growing with the
        stall — it is what makes last-minute publication (Figure 4a) more
        expensive than the early, overlapped round trip of a demote.
        """
        stall = visible_at - self.clock
        if stall > 0:
            stall *= self.machine.spec.fence_stall_multiplier
            self.clock += stall
            self.stats.fence_stall_cycles += stall

    def _do_atomic(self, event: Event) -> None:
        """RMW with fence semantics (cmpxchg and friends, Section 6.2.2).

        The store-buffer drain and the exclusive acquisition of the
        target line overlap, as they do in hardware: the RFO for the CAS
        target is issued while earlier stores become visible.  This is
        why pre-storing ahead of the atomic removes the drain from the
        critical path (Section 7.3.1's "reducing the time spent in the
        atomic instructions of the lock by 74%").
        """
        machine = self.machine
        self.stats.atomics += 1
        # All prior stores must be visible before the RMW completes.
        done = self.store_buffer.drain(self.clock, self._visibility_latency)
        drain_stall = max(0.0, done - self.clock) * machine.spec.fence_stall_multiplier
        # Acquire the target line exclusively (concurrently).
        line = machine.hierarchy.line_of(event.addr)
        transfer = self._transfer_cost(line)
        result = machine.hierarchy.access_line(line, is_write=True)
        machine.line_owner[line] = self.core_id
        acquire = float(result.latency) + transfer
        if result.memory_access:
            read_done = machine.device.read(line * machine.line_size, machine.line_size, self.clock)
            acquire += read_done - self.clock
        self._emit_writebacks(result.writebacks)
        wait = max(drain_stall, acquire)
        if drain_stall > acquire:
            self.stats.fence_stall_cycles += drain_stall - acquire
        self.clock += wait + machine.spec.atomic_base_cost

    # -- pre-stores ----------------------------------------------------------------

    def _do_prestore(self, event: Event) -> None:
        machine = self.machine
        self.stats.prestores += 1
        if event.op is PrestoreOp.DEMOTE:
            for line in event.lines(machine.line_size):
                self.clock += CYCLES_PER_PRESTORE
                started = self.store_buffer.demote(line, self.clock, self._visibility_latency)
                if not started:
                    # Nothing parked: demote the cached copy down-hierarchy.
                    # Re-installing into the last level can evict a victim
                    # whose dirty data must reach the device like any other
                    # LLC eviction's.
                    wbs = self._wb_scratch
                    del wbs[:]
                    machine.hierarchy.demote_line(line, wbs)
                    if wbs:
                        self._emit_writebacks(wbs)
                        del wbs[:]
                # Demotion pushes the line to the point of unification:
                # other cores can now pull it without a transfer.
                machine.line_owner.pop(line, None)
        elif event.op is PrestoreOp.CLEAN:
            wrote = False
            for line in event.lines(machine.line_size):
                self.clock += CYCLES_PER_PRESTORE
                # A parked private store must become cache-resident before
                # its line can be cleaned to memory.
                self.store_buffer.demote(line, self.clock, self._visibility_latency)
                machine.line_owner.pop(line, None)
                if machine.hierarchy.clean_line(line):
                    machine.device.write_back(
                        line * machine.line_size, machine.line_size, self.clock
                    )
                    wrote = True
            if wrote:
                self._apply_backpressure()
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unknown prestore op {event.op!r}")
