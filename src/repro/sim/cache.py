"""Set-associative write-back caches and the inclusive cache hierarchy.

The hierarchy is the centrepiece of Problem #1 (Section 4.1): even when an
application writes sequentially, pseudo-random replacement scrambles the
order in which dirty lines reach memory, and a device with a write
granularity larger than the CPU line suffers write amplification.

Model choices (documented in DESIGN.md):

* Caches are **inclusive**: a line present in L1 is present in every level
  below it.  Evicting a line from the last level back-invalidates the
  upper levels, collecting dirtiness on the way (the victim's most recent
  data must reach memory).
* Dirtiness lives at the *innermost* level holding the line; when an inner
  level evicts a dirty line, the dirt moves one level out.
* The hierarchy is shared by all simulated cores.  Private L1s would only
  change constants; the eviction-order scrambling the paper measures comes
  from the shared last level, which this models directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.replacement import ReplacementPolicy

__all__ = ["CacheLevelSpec", "CacheStats", "CacheLevel", "Eviction", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    #: Load-to-use latency of a hit at this level, in cycles.
    hit_latency: int
    #: Use hashed (slice-style) set indexing at this level.
    hashed_index: bool = False

    def validate(self, line_size: int) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.hit_latency < 0:
            raise ConfigurationError(f"{self.name}: sizes, ways and latency must be positive")
        if self.size_bytes % (self.ways * line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line_size = {self.ways * line_size}"
            )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    cleans: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per access; NaN when the level was never accessed (see
        the derived-ratio convention in :mod:`repro.sim.stats`)."""
        if self.accesses == 0:
            return float("nan")
        return self.hits / self.accesses


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of a cache level."""

    line: int
    dirty: bool


class _Way:
    """One way of one set (a tag and its dirty bit)."""

    __slots__ = ("line", "dirty")

    def __init__(self) -> None:
        self.line: Optional[int] = None
        self.dirty = False


class CacheLevel:
    """One set-associative, write-back, write-allocate cache level.

    ``hashed_index`` spreads lines across sets with a multiplicative hash
    instead of simple modulo, modelling the slice/set hashing of modern
    last-level caches.  Hashing matters for Problem #1: it decouples the
    sets of the (consecutive) lines that make up one device-granularity
    block, so their evictions are *not* naturally co-scheduled — which is
    part of why hardware eviction order looks random to the device.
    """

    def __init__(
        self,
        spec: CacheLevelSpec,
        line_size: int,
        policy: ReplacementPolicy,
    ) -> None:
        spec.validate(line_size)
        self.spec = spec
        self.line_size = line_size
        self.policy = policy
        # Read from the spec — a separate constructor argument used to
        # shadow ``spec.hashed_index``, silently dropping LLC hashing for
        # direct constructions that forgot to pass it twice.
        self.hashed_index = spec.hashed_index
        self.num_sets = spec.size_bytes // (spec.ways * line_size)
        self._sets: List[List[_Way]] = [
            [_Way() for _ in range(spec.ways)] for _ in range(self.num_sets)
        ]
        self._policy_state = [policy.new_set(spec.ways) for _ in range(self.num_sets)]
        # line -> (set index, way index); the fast path for lookups.
        self._index: Dict[int, Tuple[int, int]] = {}
        # line -> hashed set index, memoised (bounded by touched lines).
        self._set_cache: Dict[int, int] = {}
        #: Whether repeated ``on_access`` calls may be collapsed to one
        #: (see ReplacementPolicy.idempotent_on_access).
        self._idempotent_policy = bool(getattr(policy, "idempotent_on_access", False))
        self.stats = CacheStats()

    # -- queries ---------------------------------------------------------

    def set_index(self, line: int) -> int:
        """The set a line maps to (modulo, or hashed when configured)."""
        if self.hashed_index:
            cached = self._set_cache.get(line)
            if cached is None:
                # Fibonacci hashing: cheap, deterministic, well spread.
                cached = ((line * 0x9E3779B97F4A7C15) >> 17) % self.num_sets
                self._set_cache[line] = cached
            return cached
        return line % self.num_sets

    def contains(self, line: int) -> bool:
        return line in self._index

    def is_dirty(self, line: int) -> bool:
        loc = self._index.get(line)
        if loc is None:
            return False
        return self._sets[loc[0]][loc[1]].dirty

    def resident_lines(self) -> Iterator[int]:
        """All lines currently cached at this level."""
        return iter(self._index)

    def walk_lines(self) -> Iterator[int]:
        """Resident lines in physical (set, way) order.

        This is the order a ``wbinvd``-style walk pushes dirty lines out
        in — *not* address order.  With hashed set indexing consecutive
        addresses land in unrelated sets, so a flush stream is as
        scrambled as ordinary evictions; draining in sorted address order
        would fabricate merging the hardware cannot do.
        """
        for ways in self._sets:
            for way in ways:
                if way.line is not None:
                    yield way.line

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.spec.ways

    def occupancy(self) -> int:
        return len(self._index)

    # -- mutations -------------------------------------------------------

    def access(self, line: int, is_write: bool) -> bool:
        """Look up ``line``; on a hit, update recency and dirtiness.

        Returns True on hit.  Misses are *not* filled here — the hierarchy
        decides fill order; see :meth:`install`.
        """
        loc = self._index.get(line)
        if loc is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        set_i, way_i = loc
        self.policy.on_access(self._policy_state[set_i], way_i)
        if is_write:
            self._sets[set_i][way_i].dirty = True
        return True

    def install(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Bring ``line`` in, evicting a victim if its set is full.

        Returns the eviction (if any).  Installing an already-present line
        just refreshes recency and ORs in the dirty bit.
        """
        loc = self._index.get(line)
        if loc is not None:
            set_i, way_i = loc
            self.policy.on_access(self._policy_state[set_i], way_i)
            if dirty:
                self._sets[set_i][way_i].dirty = True
            return None
        set_i = self.set_index(line)
        ways = self._sets[set_i]
        evicted: Optional[Eviction] = None
        way_i = next((i for i, w in enumerate(ways) if w.line is None), None)
        if way_i is None:
            way_i = self.policy.victim(self._policy_state[set_i])
            victim = ways[way_i]
            if victim.line is None:  # pragma: no cover - defensive
                raise SimulationError(f"{self.spec.name}: policy chose an empty way as victim")
            evicted = Eviction(victim.line, victim.dirty)
            del self._index[victim.line]
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        slot = ways[way_i]
        slot.line = line
        slot.dirty = dirty
        self._index[line] = (set_i, way_i)
        self.policy.on_insert(self._policy_state[set_i], way_i)
        return evicted

    def clean(self, line: int) -> bool:
        """Clear the dirty bit, keeping the line resident.

        Returns True if the line was present and dirty (i.e. a writeback
        is owed to the next level).  This is the cache-state effect of a
        *clean* pre-store (``clwb``): data stays cached.
        """
        loc = self._index.get(line)
        if loc is None:
            return False
        slot = self._sets[loc[0]][loc[1]]
        was_dirty = slot.dirty
        slot.dirty = False
        if was_dirty:
            self.stats.cleans += 1
        return was_dirty

    def invalidate(self, line: int) -> Tuple[bool, bool]:
        """Drop ``line``; returns ``(was_present, was_dirty)``."""
        loc = self._index.pop(line, None)
        if loc is None:
            return (False, False)
        slot = self._sets[loc[0]][loc[1]]
        was_dirty = slot.dirty
        slot.line = None
        slot.dirty = False
        self.stats.invalidations += 1
        return (True, was_dirty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheLevel {self.spec.name}: {self.spec.size_bytes}B, "
            f"{self.num_sets}x{self.spec.ways} ways, line={self.line_size}B>"
        )


@dataclass
class HierarchyAccessResult:
    """Outcome of one hierarchy access."""

    #: Name of the level that hit, or ``"memory"``.
    hit_level: str
    #: Load-to-use latency in cycles, excluding device queueing.
    latency: int
    #: Dirty lines pushed out to memory by fills along the way.
    writebacks: List[int] = field(default_factory=list)
    #: True when the request had to go to the memory device.
    memory_access: bool = False


class CacheHierarchy:
    """An inclusive multi-level cache hierarchy.

    ``levels`` are ordered innermost (L1) to outermost (LLC).  The memory
    device itself lives outside this class: the hierarchy reports which
    dirty lines fall out of the last level and the CPU forwards them to
    the device (where write-combining and amplification happen).
    """

    def __init__(self, levels: Sequence[CacheLevel], line_size: int) -> None:
        if not levels:
            raise ConfigurationError("hierarchy requires at least one cache level")
        sizes = [lvl.spec.size_bytes for lvl in levels]
        if sizes != sorted(sizes):
            raise ConfigurationError(
                "inclusive hierarchy requires monotonically growing level sizes; "
                f"got {sizes}"
            )
        for lvl in levels:
            if lvl.line_size != line_size:
                raise ConfigurationError("all levels must share the machine line size")
        self.levels = list(levels)
        self.line_size = line_size
        # Allocation-free fast path: innermost-level hits are by far the
        # most common outcome, need no fills or writebacks, and have a
        # constant latency — so they share one preallocated result.  The
        # shared result is read-only by convention (its writebacks
        # container is an empty tuple, so accidental mutation raises) and
        # only valid until the next access, which every caller satisfies.
        l1 = self.levels[0]
        self._l1_index = l1._index
        self._l1_hit = HierarchyAccessResult(l1.spec.name, l1.spec.hit_latency, (), False)  # type: ignore[arg-type]

    @property
    def last_level(self) -> CacheLevel:
        return self.levels[-1]

    def line_of(self, addr: int) -> int:
        return addr // self.line_size

    # -- the main access path ---------------------------------------------

    def access_line(self, line: int, is_write: bool) -> HierarchyAccessResult:
        """Access one line, filling and evicting as needed.

        Latency is the hit latency of the level that hit (memory latency
        is added by the CPU, which owns the device clock).
        """
        loc = self._l1_index.get(line)
        if loc is not None:
            # Innermost hit: bump stats/recency/dirtiness in place and
            # return the shared result — no Eviction, list, or result
            # allocation.  Equivalent to the generic path below: that
            # path nets hits+1 (access +1, bookkeeping re-access +1,
            # explicit -1) and touches the policy twice with the same
            # way, which idempotent policies collapse to one touch.
            l1 = self.levels[0]
            set_i, way_i = loc
            l1.stats.hits += 1
            l1.policy.on_access(l1._policy_state[set_i], way_i)
            if is_write:
                l1._sets[set_i][way_i].dirty = True
                if not l1._idempotent_policy:
                    l1.policy.on_access(l1._policy_state[set_i], way_i)
            return self._l1_hit
        return self._access_line_slow(line, is_write)

    def _access_line_slow(self, line: int, is_write: bool) -> HierarchyAccessResult:
        """The generic walk: inner miss, fills, evictions, writebacks."""
        latency = 0
        hit_at: Optional[int] = None
        for i, lvl in enumerate(self.levels):
            latency += lvl.spec.hit_latency
            if lvl.access(line, is_write):
                hit_at = i
                break
        writebacks: List[int] = []
        if hit_at is None:
            # Miss everywhere: fill every level, outermost first so that
            # inclusion holds even if an inner install evicts.
            for lvl in reversed(self.levels):
                evicted = lvl.install(line, dirty=False)
                if evicted is not None:
                    writebacks.extend(self._handle_eviction(lvl, evicted))
            if is_write:
                self._mark_dirty_innermost(line)
            return HierarchyAccessResult("memory", latency, writebacks, memory_access=True)
        # Fill the levels above the hit (inclusive fills).
        for lvl in reversed(self.levels[:hit_at]):
            evicted = lvl.install(line, dirty=False)
            if evicted is not None:
                writebacks.extend(self._handle_eviction(lvl, evicted))
        if is_write:
            self._mark_dirty_innermost(line)
        return HierarchyAccessResult(self.levels[hit_at].spec.name, latency, writebacks)

    def _mark_dirty_innermost(self, line: int) -> None:
        for lvl in self.levels:
            if lvl.contains(line):
                lvl.access(line, is_write=True)
                # Undo double-counted hit statistics: access() above was
                # bookkeeping, not a program access.
                lvl.stats.hits -= 1
                return
        raise SimulationError(f"line {line:#x} vanished during fill")  # pragma: no cover

    def _handle_eviction(self, from_level: CacheLevel, evicted: Eviction) -> List[int]:
        """Propagate an eviction; returns dirty lines that reach memory."""
        idx = self.levels.index(from_level)
        if idx == len(self.levels) - 1:
            # LLC eviction: back-invalidate inner levels (inclusion) and
            # collect their dirtiness.
            dirty = evicted.dirty
            for inner in self.levels[:idx]:
                __, inner_dirty = inner.invalidate(evicted.line)
                dirty = dirty or inner_dirty
            return [evicted.line] if dirty else []
        # Inner eviction: the line is still resident below (inclusion);
        # push the dirt one level out.
        below = self.levels[idx + 1]
        if not below.contains(evicted.line):
            # Inclusion was broken by a racing outer eviction during a
            # multi-level fill; treat as memory-bound writeback.
            return [evicted.line] if evicted.dirty else []
        if evicted.dirty:
            below.install(evicted.line, dirty=True)
        return []

    # -- pre-store support -------------------------------------------------

    def clean_line(self, line: int) -> bool:
        """Clean a line at every level; True if a writeback is owed.

        This is ``clwb``: modifications propagate to memory, the cached
        copies stay valid (Section 2: "cleaning the data propagates the
        modifications to memory but does not invalidate the cache").
        """
        owed = False
        for lvl in self.levels:
            owed = lvl.clean(line) or owed
        return owed

    def demote_line(self, line: int) -> bool:
        """Demote a line from the innermost level towards the last level.

        Moves dirtiness (and recency priority) down: the line is dropped
        from inner levels and installed dirty in the last level, mirroring
        ``cldemote``.  Returns True if the line was present anywhere.
        """
        present = False
        dirty = False
        for lvl in self.levels[:-1]:
            was_present, was_dirty = lvl.invalidate(line)
            present = present or was_present
            dirty = dirty or was_dirty
        last = self.last_level
        if last.contains(line):
            present = True
            if dirty:
                last.access(line, is_write=True)
                last.stats.hits -= 1
        elif present:
            last.install(line, dirty=dirty)
        return present

    def invalidate_line(self, line: int) -> bool:
        """Drop a line everywhere; True if any copy was dirty."""
        dirty = False
        for lvl in self.levels:
            __, was_dirty = lvl.invalidate(line)
            dirty = dirty or was_dirty
        return dirty

    def contains(self, line: int) -> bool:
        return any(lvl.contains(line) for lvl in self.levels)

    def is_dirty(self, line: int) -> bool:
        return any(lvl.is_dirty(line) for lvl in self.levels)

    def drain_dirty_lines(self) -> List[int]:
        """Flush: clean every level, returning dirty lines owed to memory.

        Used at end of run so devices see all outstanding writebacks (like
        powering down a machine with ``wbinvd``).  Lines come out in the
        last level's physical walk order — see
        :meth:`CacheLevel.walk_lines` for why sorted order would cheat.
        """
        owed: List[int] = []
        seen = set()
        for lvl in reversed(self.levels):
            for line in lvl.walk_lines():
                if lvl.clean(line) and line not in seen:
                    seen.add(line)
                    owed.append(line)
        # Dirty lines only present in inner levels (not in the walk above
        # because inclusion was momentarily broken) still owe a writeback.
        for lvl in self.levels[:-1]:
            for line in list(lvl.resident_lines()):
                if lvl.clean(line) and line not in seen:
                    seen.add(line)
                    owed.append(line)
        return owed
